"""Memory-trace generation for the course kernels.

A :class:`Trace` is the bridge between a kernel's *algorithm* and the cache
simulator: the exact sequence of (byte address, is-write) references its
inner loops issue.  Generators mirror the kernel variants in
:mod:`repro.kernels` — same loop orders, same tiling — so simulated miss
counts respond to the same optimizations the assignments study.

Traces are dense NumPy arrays; generators are vectorized over inner loops so
that assignment-scale problems (10^5-10^6 references) are generated in
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.spmv import COOMatrix, CSRMatrix

__all__ = [
    "Trace",
    "ArrayLayout",
    "matmul_trace",
    "matmul_tiled_trace",
    "stream_trace",
    "stencil_trace",
    "histogram_trace",
    "spmv_csr_trace",
    "random_access_trace",
    "strided_trace",
]

_F8 = 8  # float64 / int64 element size


@dataclass(frozen=True)
class Trace:
    """A memory reference stream.

    Attributes
    ----------
    addresses:
        Byte addresses, int64.
    writes:
        Boolean write flags, same length.
    label:
        Human-readable description for reports.
    """

    addresses: np.ndarray
    writes: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        if self.addresses.ndim != 1 or self.addresses.shape != self.writes.shape:
            raise ValueError("addresses/writes must be 1-D arrays of equal length")
        if self.addresses.size and self.addresses.min() < 0:
            raise ValueError("addresses must be non-negative")

    def __len__(self) -> int:
        return int(self.addresses.size)

    @property
    def n_reads(self) -> int:
        return int(np.count_nonzero(~self.writes))

    @property
    def n_writes(self) -> int:
        return int(np.count_nonzero(self.writes))

    def footprint_bytes(self, line_bytes: int = 64) -> int:
        """Unique lines touched × line size — the trace's working set."""
        if line_bytes <= 0:
            raise ValueError("line size must be positive")
        return int(np.unique(self.addresses // line_bytes).size) * line_bytes

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.writes, other.writes]),
            label=f"{self.label}+{other.label}",
        )


class ArrayLayout:
    """Assigns non-overlapping, page-aligned base addresses to named arrays.

    Mirrors a simple bump allocator so traces of multi-array kernels don't
    alias accidentally (unless a test deliberately wants aliasing).
    """

    def __init__(self, start: int = 0, alignment: int = 4096):
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        self._next = _align_up(start, alignment)
        self._alignment = alignment
        self._bases: dict[str, int] = {}

    def alloc(self, name: str, n_bytes: int) -> int:
        if name in self._bases:
            raise ValueError(f"array {name!r} already allocated")
        if n_bytes <= 0:
            raise ValueError("allocation must be positive")
        base = self._next
        self._bases[name] = base
        self._next = _align_up(base + n_bytes, self._alignment)
        return base

    def base(self, name: str) -> int:
        return self._bases[name]


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _interleave(columns: list[np.ndarray], writes: list[bool], label: str) -> Trace:
    """Build a trace from per-reference columns issued round-robin.

    ``columns[k][i]`` is the address of the k-th reference of iteration i.
    """
    n = columns[0].size
    k = len(columns)
    addr = np.empty(n * k, dtype=np.int64)
    for j, col in enumerate(columns):
        if col.size != n:
            raise ValueError("columns must be equally long")
        addr[j::k] = col
    wr = np.empty(n * k, dtype=bool)
    for j, w in enumerate(writes):
        wr[j::k] = w
    return Trace(addr, wr, label=label)


# ---------------------------------------------------------------------------
# matmul
# ---------------------------------------------------------------------------

def _matmul_indices(n: int, order: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened (i, j, k) index streams for the given loop order."""
    if sorted(order) != ["i", "j", "k"]:
        raise ValueError(f"order must be a permutation of 'ijk', got {order!r}")
    axes = {axis: pos for pos, axis in enumerate(order)}
    grids = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
    # grids[p] varies along axis p; map loop axes onto mesh axes by order
    out = {}
    for axis in "ijk":
        out[axis] = grids[axes[axis]].ravel()
    return out["i"], out["j"], out["k"]


def matmul_trace(n: int, order: str = "ijk", layout: ArrayLayout | None = None) -> Trace:
    """Reference stream of scalar ``C += A·B`` with the given loop order.

    Per inner iteration: load A[i,k], load B[k,j], load C[i,j], store
    C[i,j] — exactly what :func:`repro.kernels.matmul.matmul_loop` does.
    """
    if n < 1:
        raise ValueError("n must be positive")
    layout = layout or ArrayLayout()
    a0 = layout.alloc("A", n * n * _F8)
    b0 = layout.alloc("B", n * n * _F8)
    c0 = layout.alloc("C", n * n * _F8)
    i, j, k = _matmul_indices(n, order)
    a_addr = a0 + (i * n + k) * _F8
    b_addr = b0 + (k * n + j) * _F8
    c_addr = c0 + (i * n + j) * _F8
    return _interleave([a_addr, b_addr, c_addr, c_addr],
                       [False, False, False, True],
                       label=f"matmul-{order}-n{n}")


def matmul_tiled_trace(n: int, tile: int, layout: ArrayLayout | None = None) -> Trace:
    """Reference stream of the tiled matmul (ti,tk,tj / i,k,j order)."""
    if n < 1 or tile < 1:
        raise ValueError("n and tile must be positive")
    layout = layout or ArrayLayout()
    a0 = layout.alloc("A", n * n * _F8)
    b0 = layout.alloc("B", n * n * _F8)
    c0 = layout.alloc("C", n * n * _F8)
    i_parts, j_parts, k_parts = [], [], []
    for ti in range(0, n, tile):
        ni = min(tile, n - ti)
        for tk in range(0, n, tile):
            nk = min(tile, n - tk)
            for tj in range(0, n, tile):
                nj = min(tile, n - tj)
                ii, kk, jj = np.meshgrid(np.arange(ti, ti + ni),
                                         np.arange(tk, tk + nk),
                                         np.arange(tj, tj + nj), indexing="ij")
                i_parts.append(ii.ravel())
                k_parts.append(kk.ravel())
                j_parts.append(jj.ravel())
    i = np.concatenate(i_parts)
    j = np.concatenate(j_parts)
    k = np.concatenate(k_parts)
    a_addr = a0 + (i * n + k) * _F8
    b_addr = b0 + (k * n + j) * _F8
    c_addr = c0 + (i * n + j) * _F8
    return _interleave([a_addr, b_addr, c_addr, c_addr],
                       [False, False, False, True],
                       label=f"matmul-tiled{tile}-n{n}")


# ---------------------------------------------------------------------------
# STREAM
# ---------------------------------------------------------------------------

def stream_trace(n: int, kernel: str = "triad", layout: ArrayLayout | None = None) -> Trace:
    """Reference stream of one STREAM kernel over arrays of length ``n``."""
    if n < 1:
        raise ValueError("n must be positive")
    layout = layout or ArrayLayout()
    a0 = layout.alloc("a", n * _F8)
    b0 = layout.alloc("b", n * _F8)
    c0 = layout.alloc("c", n * _F8)
    idx = np.arange(n, dtype=np.int64) * _F8
    if kernel == "copy":        # c = a
        cols, wr = [a0 + idx, c0 + idx], [False, True]
    elif kernel == "scale":     # b = s*c
        cols, wr = [c0 + idx, b0 + idx], [False, True]
    elif kernel == "add":       # c = a+b
        cols, wr = [a0 + idx, b0 + idx, c0 + idx], [False, False, True]
    elif kernel == "triad":     # a = b+s*c
        cols, wr = [b0 + idx, c0 + idx, a0 + idx], [False, False, True]
    else:
        raise ValueError(f"unknown STREAM kernel {kernel!r}")
    return _interleave(cols, wr, label=f"stream-{kernel}-n{n}")


# ---------------------------------------------------------------------------
# stencil
# ---------------------------------------------------------------------------

def stencil_trace(n: int, m: int | None = None, tile: int | None = None,
                  layout: ArrayLayout | None = None) -> Trace:
    """Reference stream of one 5-point Jacobi sweep (row-major traversal).

    With ``tile`` the interior is traversed in square blocks, matching
    :func:`repro.kernels.stencil.jacobi_step_blocked`.
    """
    m = n if m is None else m
    if n < 3 or m < 3:
        raise ValueError("grid must be at least 3x3")
    layout = layout or ArrayLayout()
    src0 = layout.alloc("src", n * m * _F8)
    dst0 = layout.alloc("dst", n * m * _F8)

    def block(i_lo, i_hi, j_lo, j_hi):
        ii, jj = np.meshgrid(np.arange(i_lo, i_hi), np.arange(j_lo, j_hi),
                             indexing="ij")
        return ii.ravel(), jj.ravel()

    if tile is None:
        i, j = block(1, n - 1, 1, m - 1)
    else:
        if tile < 1:
            raise ValueError("tile must be positive")
        parts_i, parts_j = [], []
        for ti in range(1, n - 1, tile):
            for tj in range(1, m - 1, tile):
                bi, bj = block(ti, min(ti + tile, n - 1), tj, min(tj + tile, m - 1))
                parts_i.append(bi)
                parts_j.append(bj)
        i = np.concatenate(parts_i)
        j = np.concatenate(parts_j)
    north = src0 + ((i - 1) * m + j) * _F8
    south = src0 + ((i + 1) * m + j) * _F8
    west = src0 + (i * m + (j - 1)) * _F8
    east = src0 + (i * m + (j + 1)) * _F8
    out = dst0 + (i * m + j) * _F8
    suffix = f"-tile{tile}" if tile else ""
    return _interleave([north, west, east, south, out],
                       [False, False, False, False, True],
                       label=f"stencil-{n}x{m}{suffix}")


# ---------------------------------------------------------------------------
# histogram
# ---------------------------------------------------------------------------

def histogram_trace(keys: np.ndarray, bins: int, layout: ArrayLayout | None = None) -> Trace:
    """Reference stream of the scalar histogram loop over ``keys``.

    Per element: load keys[i], load counts[key], store counts[key].  The
    counts addresses are *data-dependent* — the property assignment 2 adds
    histogram to demonstrate.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if keys.ndim != 1 or keys.size == 0:
        raise ValueError("keys must be a non-empty 1-D array")
    if bins < 1 or keys.min() < 0 or keys.max() >= bins:
        raise ValueError("keys outside [0, bins)")
    layout = layout or ArrayLayout()
    k0 = layout.alloc("keys", keys.size * _F8)
    h0 = layout.alloc("counts", bins * _F8)
    idx = np.arange(keys.size, dtype=np.int64)
    key_addr = k0 + idx * _F8
    cnt_addr = h0 + keys * _F8
    return _interleave([key_addr, cnt_addr, cnt_addr],
                       [False, False, True],
                       label=f"histogram-n{keys.size}-b{bins}")


# ---------------------------------------------------------------------------
# SpMV
# ---------------------------------------------------------------------------

def spmv_csr_trace(matrix: CSRMatrix | COOMatrix,
                   layout: ArrayLayout | None = None) -> Trace:
    """Reference stream of scalar CSR SpMV.

    Per nonzero: load indices[p], load data[p], load x[col]; per row one
    store of y[i].  The x gathers are where matrix structure (bandwidth)
    shows up as locality.
    """
    csr = matrix.to_csr() if isinstance(matrix, COOMatrix) else matrix
    layout = layout or ArrayLayout()
    d0 = layout.alloc("data", max(1, csr.nnz) * _F8)
    i0 = layout.alloc("indices", max(1, csr.nnz) * _F8)
    x0 = layout.alloc("x", csr.shape[1] * _F8)
    y0 = layout.alloc("y", csr.shape[0] * _F8)
    p = np.arange(csr.nnz, dtype=np.int64)
    per_nnz = _interleave(
        [i0 + p * _F8, d0 + p * _F8, x0 + csr.indices.astype(np.int64) * _F8],
        [False, False, False],
        label="nnz",
    ) if csr.nnz else Trace(np.empty(0, np.int64), np.empty(0, bool), "nnz")
    # insert the y store after each row's nonzeros
    lengths = csr.row_lengths()
    n = csr.shape[0]
    addr_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    pos = 0
    for i in range(n):
        cnt = int(lengths[i]) * 3
        addr_parts.append(per_nnz.addresses[pos:pos + cnt])
        write_parts.append(per_nnz.writes[pos:pos + cnt])
        addr_parts.append(np.array([y0 + i * _F8], dtype=np.int64))
        write_parts.append(np.array([True]))
        pos += cnt
    return Trace(np.concatenate(addr_parts), np.concatenate(write_parts),
                 label=f"spmv-csr-{csr.shape[0]}x{csr.shape[1]}-nnz{csr.nnz}")


# ---------------------------------------------------------------------------
# synthetic access patterns (assignment 4's pattern kernels)
# ---------------------------------------------------------------------------

def strided_trace(n_accesses: int, stride_bytes: int, footprint_bytes: int,
                  write_fraction: float = 0.0, base: int = 0) -> Trace:
    """Wrap-around strided sweep — the "strided access" pattern generator."""
    if n_accesses < 1 or stride_bytes < 1 or footprint_bytes < stride_bytes:
        raise ValueError("invalid strided trace parameters")
    if not 0 <= write_fraction <= 1:
        raise ValueError("write_fraction must be in [0, 1]")
    idx = (np.arange(n_accesses, dtype=np.int64) * stride_bytes) % footprint_bytes
    writes = np.zeros(n_accesses, dtype=bool)
    if write_fraction > 0:
        writes[: int(round(write_fraction * n_accesses))] = True
        writes = np.random.default_rng(0).permutation(writes)
    return Trace(base + idx, writes,
                 label=f"strided-{stride_bytes}B-fp{footprint_bytes}")


def random_access_trace(n_accesses: int, footprint_bytes: int,
                        element_bytes: int = 8, seed: int = 0,
                        write_fraction: float = 0.0, base: int = 0) -> Trace:
    """Uniform random accesses over a footprint — the latency-bound pattern."""
    if n_accesses < 1 or footprint_bytes < element_bytes:
        raise ValueError("invalid random trace parameters")
    rng = np.random.default_rng(seed)
    n_elems = footprint_bytes // element_bytes
    idx = rng.integers(0, n_elems, size=n_accesses).astype(np.int64)
    writes = rng.random(n_accesses) < write_fraction
    return Trace(base + idx * element_bytes, writes,
                 label=f"random-fp{footprint_bytes}")
