"""Machine simulators: caches, memory traces, port scheduler, CPU timing.

This package substitutes for the hardware-measurement tools the course uses
on real machines (perf/PAPI/LIKWID counters, IACA/OSACA/LLVM-MCA schedulers)
— see DESIGN.md's substitution table.
"""

from .bodies import (
    daxpy_body,
    histogram_body,
    matmul_inner_body,
    matmul_inner_unrolled,
    pointer_chase_body,
    reduction_body,
    spmv_inner_body,
    stencil_body,
    triad_body,
)
from .cache import Cache, CacheStats, MultiLevelCache, amat, hierarchy_for
from .cpu import CPUModel, KernelSimulation, SimulatedCounters
from .ports import Instr, LoopBody, PortAnalysis, analyze_loop, schedule
from .trace import (
    ArrayLayout,
    Trace,
    histogram_trace,
    matmul_tiled_trace,
    matmul_trace,
    random_access_trace,
    spmv_csr_trace,
    stencil_trace,
    stream_trace,
    strided_trace,
)

__all__ = [
    "Cache",
    "CacheStats",
    "MultiLevelCache",
    "hierarchy_for",
    "amat",
    "Trace",
    "ArrayLayout",
    "matmul_trace",
    "matmul_tiled_trace",
    "stream_trace",
    "stencil_trace",
    "histogram_trace",
    "spmv_csr_trace",
    "random_access_trace",
    "strided_trace",
    "Instr",
    "LoopBody",
    "PortAnalysis",
    "analyze_loop",
    "schedule",
    "CPUModel",
    "KernelSimulation",
    "SimulatedCounters",
    "triad_body",
    "matmul_inner_body",
    "matmul_inner_unrolled",
    "spmv_inner_body",
    "histogram_body",
    "stencil_body",
    "daxpy_body",
    "reduction_body",
    "pointer_chase_body",
]
