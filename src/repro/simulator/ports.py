"""Port-model instruction scheduler (IACA / OSACA / LLVM-MCA substitute).

Assignment 2 points students at "instruction scheduler simulators like IACA,
OSACA, or LLVM-MCA" to model loop kernels at instruction granularity.  This
module provides the same analysis over our virtual ISA:

* **throughput bound** — the busiest-port occupancy of one loop iteration,
  assuming perfect overlap (what IACA calls block throughput);
* **latency bound** — the loop-carried dependency critical path;
* **scheduled cycles** — a greedy cycle-accurate schedule of N iterations
  on the port model, which lands between the two bounds and exposes how
  far a real schedule sits from either.

A loop body is a sequence of :class:`Instr`; dependencies reference earlier
body positions, with an iteration ``distance`` (0 = same iteration,
1 = previous iteration, ...) so reductions and pointer-chases are
expressible.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..machine.instruction_tables import InstructionTable

__all__ = ["Instr", "LoopBody", "PortAnalysis", "analyze_loop", "schedule"]


@dataclass(frozen=True)
class Instr:
    """One static instruction in a loop body.

    Attributes
    ----------
    opcode:
        Virtual-ISA opcode (must exist in the instruction table used).
    deps:
        ``(position, distance)`` pairs: this instruction consumes the result
        of the instruction at ``position`` in the body, ``distance``
        iterations ago.  ``distance`` 0 requires ``position`` earlier in the
        body (program order).
    """

    opcode: str
    deps: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class LoopBody:
    """A loop body: static instructions executed once per iteration."""

    instrs: tuple[Instr, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.instrs:
            raise ValueError("loop body cannot be empty")
        for pos, ins in enumerate(self.instrs):
            for dep_pos, dist in ins.deps:
                if not 0 <= dep_pos < len(self.instrs):
                    raise ValueError(f"instr {pos}: dep position {dep_pos} out of range")
                if dist < 0:
                    raise ValueError(f"instr {pos}: negative dependency distance")
                if dist == 0 and dep_pos >= pos:
                    raise ValueError(
                        f"instr {pos}: same-iteration dep must point backwards"
                    )

    def __len__(self) -> int:
        return len(self.instrs)

    def opcode_mix(self) -> dict[str, int]:
        mix: dict[str, int] = defaultdict(int)
        for ins in self.instrs:
            mix[ins.opcode] += 1
        return dict(mix)


@dataclass(frozen=True)
class PortAnalysis:
    """Result of :func:`analyze_loop`.

    ``cycles_per_iteration`` is the scheduled steady-state estimate;
    ``bound`` names which analytic bound dominates (``"throughput"`` or
    ``"latency"``), mirroring how OSACA reports the loop bottleneck.
    """

    label: str
    throughput_cycles: float
    latency_cycles: float
    cycles_per_iteration: float
    port_pressure: dict[str, float]
    bottleneck_port: str

    @property
    def bound(self) -> str:
        return "latency" if self.latency_cycles > self.throughput_cycles else "throughput"


def _latency_bound(body: LoopBody, table: InstructionTable, horizon: int = 64) -> float:
    """Loop-carried critical path per iteration.

    Computed by dataflow DP over ``horizon`` iterations with unlimited
    ports: the asymptotic slope of the completion front is the recurrence
    bound (exact for horizons past the longest dependency distance).
    """
    n = len(body)
    finish = [[0.0] * n for _ in range(horizon)]
    for it in range(horizon):
        for pos, ins in enumerate(body.instrs):
            ready = 0.0
            for dep_pos, dist in ins.deps:
                src = it - dist
                if src >= 0:
                    ready = max(ready, finish[src][dep_pos])
            finish[it][pos] = ready + table.latency(ins.opcode)
    # slope over the second half to skip the warmup transient
    half = horizon // 2
    top_a = max(finish[half - 1])
    top_b = max(finish[horizon - 1])
    return max(0.0, (top_b - top_a) / (horizon - half))


def schedule(body: LoopBody, table: InstructionTable, iterations: int = 32,
             issue_width: int | None = None) -> float:
    """Greedy cycle-accurate schedule; returns total cycles for N iterations.

    Each uop occupies one allowed port for one cycle (fully pipelined
    units).  Instructions issue as soon as operands are ready and a port
    slot is free; an optional ``issue_width`` caps uops/cycle overall
    (models the front-end).
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if issue_width is not None and issue_width < 1:
        raise ValueError("issue width must be positive")
    port_busy: dict[int, set[str]] = defaultdict(set)
    issued_at: dict[int, int] = defaultdict(int)  # cycle -> uops issued
    finish: dict[tuple[int, int], float] = {}
    last_cycle = 0
    for it in range(iterations):
        for pos, ins in enumerate(body.instrs):
            spec = table[ins.opcode]
            ready = 0
            for dep_pos, dist in ins.deps:
                src = it - dist
                if src >= 0:
                    ready = max(ready, int(finish[(src, dep_pos)]))
            t = ready
            remaining = spec.uops
            last_issue = ready
            while remaining:
                width_ok = issue_width is None or issued_at[t] < issue_width
                free = None
                if width_ok:
                    for p in spec.ports:
                        if p not in port_busy[t]:
                            free = p
                            break
                if free is not None:
                    port_busy[t].add(free)
                    issued_at[t] += 1
                    remaining -= 1
                    last_issue = t
                t += 1
            done = last_issue + max(1.0, spec.latency_cycles)
            finish[(it, pos)] = done
            last_cycle = max(last_cycle, int(done))
    return float(last_cycle)


def analyze_loop(body: LoopBody, table: InstructionTable,
                 iterations: int = 64) -> PortAnalysis:
    """Full OSACA-style analysis of a loop body on one microarchitecture."""
    if iterations < 8:
        raise ValueError("need >= 8 iterations for a steady-state estimate")
    # throughput bound: optimal fractional port assignment
    pressure = {p: 0.0 for p in table.ports}
    for ins in body.instrs:
        spec = table[ins.opcode]
        share = spec.uops / len(spec.ports)
        for p in spec.ports:
            pressure[p] += share
    bottleneck = max(pressure, key=lambda p: pressure[p])
    throughput = pressure[bottleneck]
    latency = _latency_bound(body, table)
    # steady-state slope of the greedy schedule
    half = iterations // 2
    total_full = schedule(body, table, iterations)
    total_half = schedule(body, table, half)
    per_iter = (total_full - total_half) / (iterations - half)
    per_iter = max(per_iter, throughput)  # scheduler can't beat port pressure
    return PortAnalysis(
        label=body.label,
        throughput_cycles=throughput,
        latency_cycles=latency,
        cycles_per_iteration=per_iter,
        port_pressure=pressure,
        bottleneck_port=bottleneck,
    )
