"""Set-associative cache simulator.

The course's "Simulation and simulators" lecture (Table 1) covers cache and
architecture simulators as a stage-2/stage-6 tool; in this reproduction the
simulator also *stands in for hardware counters* (see DESIGN.md): real
machines report cache misses through PAPI/LIKWID/perf, while we replay a
kernel's memory trace through this model and read the same events off it,
deterministically.

The model: per-level set-associative caches with write-back/write-allocate
semantics and selectable replacement (LRU, FIFO, random), composed into a
multi-level hierarchy, optionally fronted by a *tagged next-line prefetcher*
(Smith, 1982).  The prefetcher matters pedagogically: the gap between
stride-1 and strided/random access on real machines comes as much from
prefetching as from line reuse, and assignment 1's loop-order comparisons
reproduce only when it is modelled.

The hierarchy reports per-level hit/miss statistics, prefetch and writeback
traffic, and average memory access time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..machine.specs import CacheLevel, CPUSpec

__all__ = [
    "CacheStats",
    "Cache",
    "MultiLevelCache",
    "hierarchy_for",
    "amat",
]

_POLICIES = ("lru", "fifo", "random")

# cache-entry slots: [stamp, dirty, prefetch-tag]
_STAMP, _DIRTY, _TAG = 0, 1, 2


@dataclass
class CacheStats:
    """Access statistics of one cache level.

    ``prefetches`` counts lines *installed* into this level by the
    prefetcher; prefetch installs do not count as accesses/hits/misses
    (they are asynchronous with respect to the core).
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    prefetches: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            self.accesses + other.accesses,
            self.hits + other.hits,
            self.misses + other.misses,
            self.evictions + other.evictions,
            self.writebacks + other.writebacks,
            self.prefetches + other.prefetches,
        )


class Cache:
    """One set-associative, write-back/write-allocate cache level.

    ``access`` returns ``True`` on a hit.  Dirty lines evicted from the
    cache increment ``stats.writebacks``; the hierarchy turns last-level
    spills into DRAM traffic.
    """

    def __init__(self, level: CacheLevel, policy: str = "lru", seed: int = 0):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {_POLICIES}")
        self.level = level
        self.policy = policy
        self._rng = random.Random(seed)
        self._offset_bits = level.line_bytes.bit_length() - 1
        self._n_sets = level.n_sets
        # per set: dict tag -> [stamp, dirty, prefetch-tag]
        self._sets: list[dict[int, list]] = [dict() for _ in range(self._n_sets)]
        self._clock = 0
        self.stats = CacheStats()

    # -- address helpers ---------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._offset_bits
        return line % self._n_sets, line // self._n_sets

    # -- core operations ---------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        On a miss the line is allocated (write-allocate), evicting per the
        replacement policy when the set is full.
        """
        if address < 0:
            raise ValueError("addresses must be non-negative")
        set_idx, tag = self._locate(address)
        entries = self._sets[set_idx]
        self._clock += 1
        self.stats.accesses += 1
        entry = entries.get(tag)
        if entry is not None:
            self.stats.hits += 1
            if self.policy == "lru":
                entry[_STAMP] = self._clock
            if is_write:
                entry[_DIRTY] = True
            return True
        self.stats.misses += 1
        self.install(address, is_write)
        return False

    def install(self, address: int, dirty: bool = False, tagged: int = 0) -> None:
        """Insert the line holding ``address``, evicting if necessary.

        Used by the hierarchy both for demand fills (via :meth:`access`)
        and prefetch installs (directly; the caller counts those).
        """
        set_idx, tag = self._locate(address)
        entries = self._sets[set_idx]
        if tag in entries:
            return
        if len(entries) >= self.level.associativity:
            self._evict(entries)
        self._clock += 1
        entries[tag] = [self._clock, dirty, tagged]

    def _evict(self, entries: dict[int, list]) -> None:
        if self.policy == "random":
            victim = self._rng.choice(list(entries))
        else:  # lru and fifo both evict the smallest stamp
            victim = min(entries, key=lambda t: entries[t][_STAMP])
        dirty = entries.pop(victim)[_DIRTY]
        self.stats.evictions += 1
        if dirty:
            self.stats.writebacks += 1

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident (no side effects)."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def entry(self, address: int) -> list | None:
        """Internal entry for ``address`` or None (no stats side effects)."""
        set_idx, tag = self._locate(address)
        return self._sets[set_idx].get(tag)

    def reset(self) -> None:
        """Flush contents and zero statistics."""
        for s in self._sets:
            s.clear()
        self._clock = 0
        self.stats = CacheStats()

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)


class MultiLevelCache:
    """A cache hierarchy plus main memory, with optional prefetching.

    Accesses probe L1 first; each miss is forwarded to the next level.  A
    miss at the last level counts as a DRAM access.

    With ``prefetch=True`` a tagged *stride* prefetcher runs at L1
    (Smith-style tagging generalized to constant strides, as in the
    streamer prefetchers of real cores): demand misses are tracked per
    4 KiB region; two misses in a region with the same line delta d
    (|d| <= 16 lines) detect a stream, triggering a prefetch of L+d.  A
    demand hit on a prefetched line re-arms the prefetcher for the next
    line of its stream — so a detected stream sustains a couple of demand
    misses at its head and prefetch hits thereafter, exactly the behaviour
    that separates stride-1 loop orders from irregular access on real
    hardware.  Prefetch fills are charged to DRAM traffic but not to
    demand misses.
    """

    #: region granularity for stream detection (log2 bytes): 4 KiB pages
    _REGION_BITS = 12
    #: maximum detected stride, in L1 lines
    _MAX_STRIDE = 16

    def __init__(self, levels: Sequence[CacheLevel], policy: str = "lru",
                 seed: int = 0, prefetch: bool = False):
        if not levels:
            raise ValueError("need at least one cache level")
        caps = [lv.capacity_bytes for lv in levels]
        if caps != sorted(caps):
            raise ValueError("levels must be ordered smallest to largest")
        self.caches = [Cache(lv, policy=policy, seed=seed + i)
                       for i, lv in enumerate(levels)]
        self.prefetch = prefetch
        # stream table: region -> [last_miss_line, last_delta]
        self._streams: dict[int, list] = {}
        self.memory_accesses = 0
        self.memory_writebacks = 0
        self.memory_prefetches = 0

    # -- single-access path --------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> int:
        """Access an address; returns the level index that hit.

        0 = L1 hit, 1 = L2 hit, ..., ``len(caches)`` = served by memory.
        """
        l1 = self.caches[0]
        line_bytes = l1.level.line_bytes
        hit_level = len(self.caches)
        for i, cache in enumerate(self.caches):
            before_wb = cache.stats.writebacks
            hit = cache.access(address, is_write)
            self._count_spill(i, cache.stats.writebacks - before_wb)
            if hit:
                hit_level = i
                break
        if hit_level == len(self.caches):
            self.memory_accesses += 1

        if self.prefetch:
            self._maybe_prefetch(address, hit_level, line_bytes)
        return hit_level

    def _maybe_prefetch(self, address: int, hit_level: int, line_bytes: int) -> None:
        l1 = self.caches[0]
        line = address >> l1._offset_bits
        delta = 0
        if hit_level == 0:
            entry = l1.entry(address)
            if entry is not None and entry[_TAG]:
                delta = entry[_TAG]
                entry[_TAG] = 0
        else:
            # demand miss: update the per-region stream detector
            region = address >> self._REGION_BITS
            stream = self._streams.get(region)
            if stream is None:
                self._streams[region] = [line, 0]
            else:
                d = line - stream[0]
                if d != 0 and abs(d) <= self._MAX_STRIDE and d == stream[1]:
                    delta = d
                stream[0], stream[1] = line, (d if d != 0 else stream[1])
        if delta:
            target = (line + delta) << l1._offset_bits
            if target >= 0:
                self._issue_prefetch(target, delta)

    def _issue_prefetch(self, address: int, delta: int) -> None:
        """Fetch a line into every level above its current residence."""
        resident_at = len(self.caches)
        for i, cache in enumerate(self.caches):
            if cache.contains(address):
                resident_at = i
                break
        if resident_at == 0:
            # already in L1: just (re)arm its tag so streams keep running
            entry = self.caches[0].entry(address)
            if entry is not None:
                entry[_TAG] = delta
            return
        if resident_at == len(self.caches):
            self.memory_prefetches += 1
        for i in range(resident_at):
            cache = self.caches[i]
            before_wb = cache.stats.writebacks
            cache.install(address, dirty=False, tagged=(delta if i == 0 else 0))
            cache.stats.prefetches += 1
            self._count_spill(i, cache.stats.writebacks - before_wb)

    def _count_spill(self, level_idx: int, n: int) -> None:
        """Charge ``n`` dirty evictions from the last level to DRAM.

        Writebacks absorbed by a lower cache level are modelled as free
        (they ride existing bus transactions); only DRAM spills are
        counted, which is what STREAM-style traffic accounting observes.
        """
        if n > 0 and level_idx + 1 >= len(self.caches):
            self.memory_writebacks += n

    # -- bulk path -------------------------------------------------------------

    def access_trace(self, addresses: Iterable[int] | np.ndarray,
                     writes: Iterable[bool] | np.ndarray | None = None) -> "MultiLevelCache":
        """Replay a whole trace; returns self for chaining.

        This is a performance-critical fast path (assignment-scale traces
        run to millions of references): per-level line/set indices are
        precomputed with NumPy and the per-access loop manipulates the
        cache structures directly.  Semantics are identical to calling
        :meth:`access` in a loop — a property the test suite checks.
        """
        addr_arr = np.asarray(addresses, dtype=np.int64)
        if addr_arr.ndim != 1:
            raise ValueError("trace addresses must be 1-D")
        if addr_arr.size == 0:
            return self
        if addr_arr.min() < 0:
            raise ValueError("addresses must be non-negative")
        if writes is None:
            write_arr = np.zeros(addr_arr.shape, dtype=bool)
        else:
            write_arr = np.asarray(writes, dtype=bool)
            if write_arr.shape != addr_arr.shape:
                raise ValueError("writes must match addresses in shape")

        n_levels = len(self.caches)
        set_streams: list[list[int]] = []
        tag_streams: list[list[int]] = []
        for cache in self.caches:
            lines = addr_arr >> cache._offset_bits
            set_streams.append((lines % cache._n_sets).tolist())
            tag_streams.append((lines // cache._n_sets).tolist())
        writes_list = write_arr.tolist()
        l1 = self.caches[0]
        l1_offset = l1._offset_bits
        l1_lines = (addr_arr >> l1_offset).tolist() if self.prefetch else None
        regions = (addr_arr >> self._REGION_BITS).tolist() if self.prefetch else None

        sets_by_level = [c._sets for c in self.caches]
        assoc = [c.level.associativity for c in self.caches]
        policies = [c.policy for c in self.caches]
        rngs = [c._rng for c in self.caches]
        clocks = [c._clock for c in self.caches]
        acc_cnt = [0] * n_levels
        hit_cnt = [0] * n_levels
        evict_cnt = [0] * n_levels
        wb_cnt = [0] * n_levels
        mem_acc = 0
        last = n_levels - 1
        prefetch = self.prefetch
        do_prefetch: list[int] = []

        for i in range(addr_arr.size):
            w = writes_list[i]
            hit_level = n_levels
            l1_entry = None
            for k in range(n_levels):
                entries = sets_by_level[k][set_streams[k][i]]
                tag = tag_streams[k][i]
                clocks[k] += 1
                acc_cnt[k] += 1
                entry = entries.get(tag)
                if entry is not None:
                    hit_cnt[k] += 1
                    if policies[k] == "lru":
                        entry[_STAMP] = clocks[k]
                    if w:
                        entry[_DIRTY] = True
                    hit_level = k
                    if k == 0:
                        l1_entry = entry
                    break
                if len(entries) >= assoc[k]:
                    if policies[k] == "random":
                        victim = rngs[k].choice(list(entries))
                    else:
                        victim = min(entries, key=lambda t, e=entries: e[t][_STAMP])
                    victim_entry = entries.pop(victim)
                    evict_cnt[k] += 1
                    if victim_entry[_DIRTY]:
                        wb_cnt[k] += 1
                        if k == last:
                            self.memory_writebacks += 1
                entries[tag] = [clocks[k], w, 0]
            else:
                mem_acc += 1

            if prefetch:
                line = l1_lines[i]
                delta = 0
                if hit_level == 0:
                    if l1_entry is not None and l1_entry[_TAG]:
                        delta = l1_entry[_TAG]
                        l1_entry[_TAG] = 0
                else:
                    region = regions[i]
                    stream = self._streams.get(region)
                    if stream is None:
                        self._streams[region] = [line, 0]
                    else:
                        d = line - stream[0]
                        if d != 0 and -16 <= d <= 16 and d == stream[1]:
                            delta = d
                        stream[0] = line
                        if d != 0:
                            stream[1] = d
                if delta and line + delta >= 0:
                    # flush counter deltas the slow helper reads/updates
                    self._flush_fast_stats(acc_cnt, hit_cnt, evict_cnt, wb_cnt, clocks)
                    acc_cnt = [0] * n_levels
                    hit_cnt = [0] * n_levels
                    evict_cnt = [0] * n_levels
                    wb_cnt = [0] * n_levels
                    self._issue_prefetch((line + delta) << l1_offset, delta)
                    clocks = [c._clock for c in self.caches]

        self._flush_fast_stats(acc_cnt, hit_cnt, evict_cnt, wb_cnt, clocks)
        self.memory_accesses += mem_acc
        return self

    def _flush_fast_stats(self, acc, hit, evict, wb, clocks) -> None:
        for k, cache in enumerate(self.caches):
            cache._clock = clocks[k]
            st = cache.stats
            st.accesses += acc[k]
            st.hits += hit[k]
            st.misses += acc[k] - hit[k]
            st.evictions += evict[k]
            st.writebacks += wb[k]

    def reset(self) -> None:
        for cache in self.caches:
            cache.reset()
        self.memory_accesses = 0
        self.memory_writebacks = 0
        self.memory_prefetches = 0

    # -- reporting ----------------------------------------------------------

    def stats_by_level(self) -> dict[str, CacheStats]:
        return {c.level.name: c.stats for c in self.caches}

    def miss_counts(self) -> dict[str, int]:
        out = {c.level.name: c.stats.misses for c in self.caches}
        out["DRAM"] = self.memory_accesses
        return out

    def dram_traffic_bytes(self) -> int:
        """Bytes moved to/from DRAM: fills, prefetches, and writebacks."""
        line = self.caches[-1].level.line_bytes
        return (self.memory_accesses + self.memory_prefetches
                + self.memory_writebacks) * line

    @property
    def total_accesses(self) -> int:
        return self.caches[0].stats.accesses


def hierarchy_for(cpu: CPUSpec, policy: str = "lru", seed: int = 0,
                  prefetch: bool = False) -> MultiLevelCache:
    """Build the hierarchy described by a :class:`CPUSpec`."""
    if not cpu.caches:
        raise ValueError(f"{cpu.name} declares no cache levels")
    return MultiLevelCache(cpu.caches, policy=policy, seed=seed, prefetch=prefetch)


def amat(hierarchy: MultiLevelCache, memory_latency_cycles: float) -> float:
    """Average memory access time (cycles/access) from simulated stats.

    AMAT = Σ_level (hits_level · latency_level) + DRAM_accesses · mem_latency,
    normalized by L1 accesses.
    """
    if memory_latency_cycles < 0:
        raise ValueError("memory latency cannot be negative")
    total = hierarchy.total_accesses
    if total == 0:
        raise ValueError("no accesses recorded")
    cycles = 0.0
    for cache in hierarchy.caches:
        cycles += cache.stats.hits * cache.level.latency_cycles
    cycles += hierarchy.memory_accesses * memory_latency_cycles
    return cycles / total
