"""In-order CPU timing model combining the port and cache simulators.

This is the "simulator" of the course's *Simulation and simulators* lecture:
given a kernel's loop body (instruction schedule) and its memory trace
(cache behaviour), it produces cycle counts and a full set of simulated
hardware events.  :mod:`repro.counters` wraps the result in a PAPI-like
counting API for assignment 4.

The timing model brackets reality between two classical bounds:

* ``optimistic`` — perfect overlap of compute and memory:
  ``max(compute_cycles, dram_bandwidth_cycles)`` (a Roofline in cycle
  space);
* ``pessimistic`` — no overlap: compute plus every cache-miss stall
  serialized (an in-order, blocking-cache machine).

Real out-of-order cores land in between; the reported ``counters.cycles``
uses the ECM-style composition ``max(compute, latency_stalls + bandwidth)``
— compute overlaps with memory, while demand-miss stalls serialize with
data transfer — which tracks modern cores well enough for the counter and
pattern exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.instruction_tables import InstructionTable
from ..machine.specs import CPUSpec
from .cache import MultiLevelCache, hierarchy_for
from .ports import LoopBody, PortAnalysis, analyze_loop
from .trace import Trace

__all__ = ["SimulatedCounters", "KernelSimulation", "CPUModel"]

_FLOP_OPS = {"add": 1, "mul": 1, "fmadd": 2, "div": 1}
_VECTOR_FLOP_OPS = {"vadd": 1, "vmul": 1, "vfmadd": 2}
_LOAD_OPS = {"load", "vload", "gather"}
_STORE_OPS = {"store", "vstore"}


@dataclass(frozen=True)
class SimulatedCounters:
    """Hardware-event values produced by one simulated kernel execution.

    Field names deliberately mirror PAPI preset events (PAPI_TOT_CYC,
    PAPI_TOT_INS, PAPI_L1_DCM, ...) so assignment 4's exercises read like
    the real thing.
    """

    cycles: float
    instructions: float
    flops: float
    loads: int
    stores: int
    level_hits: dict[str, int]
    level_misses: dict[str, int]
    dram_accesses: int
    dram_bytes: int
    branches: float
    branch_mispredicts: float

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def miss_ratio(self, level: str) -> float:
        hits = self.level_hits.get(level, 0)
        misses = self.level_misses.get(level, 0)
        total = hits + misses
        return misses / total if total else 0.0

    def flops_per_cycle(self) -> float:
        return self.flops / self.cycles if self.cycles else 0.0

    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bytes / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat event dictionary (counter name -> value)."""
        out: dict[str, float] = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "flops": self.flops,
            "loads": float(self.loads),
            "stores": float(self.stores),
            "dram_accesses": float(self.dram_accesses),
            "dram_bytes": float(self.dram_bytes),
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
        }
        for name, hits in self.level_hits.items():
            out[f"{name.lower()}_hits"] = float(hits)
        for name, misses in self.level_misses.items():
            out[f"{name.lower()}_misses"] = float(misses)
        return out


@dataclass(frozen=True)
class KernelSimulation:
    """Full result of simulating one kernel: counters plus timing brackets."""

    label: str
    counters: SimulatedCounters
    port_analysis: PortAnalysis
    optimistic_cycles: float
    pessimistic_cycles: float
    frequency_hz: float

    @property
    def optimistic_seconds(self) -> float:
        return self.optimistic_cycles / self.frequency_hz

    @property
    def pessimistic_seconds(self) -> float:
        return self.pessimistic_cycles / self.frequency_hz

    @property
    def seconds(self) -> float:
        return self.counters.cycles / self.frequency_hz


class CPUModel:
    """Single-core timing model over a :class:`CPUSpec`.

    Parameters
    ----------
    cpu:
        Machine description (caches + memory feed the cache model).
    table:
        Instruction timing table for the port model.
    policy:
        Cache replacement policy for every level.
    branch_mispredict_rate:
        Fraction of branches mispredicted (default: a well-predicted loop).
        Synthetic "bad speculation" kernels override this.
    mispredict_penalty_cycles:
        Pipeline refill cost per mispredict.
    memory_parallelism:
        Outstanding-miss parallelism (MLP): how many cache misses overlap
        in flight.  1 models a blocking cache (pointer chase); modern
        cores sustain 8-12 for streaming patterns thanks to miss buffers
        and prefetchers.  Miss *latency* stalls are divided by this.
    """

    def __init__(self, cpu: CPUSpec, table: InstructionTable,
                 policy: str = "lru", branch_mispredict_rate: float = 0.005,
                 mispredict_penalty_cycles: float = 15.0,
                 memory_parallelism: float = 4.0, prefetch: bool = True,
                 seed: int = 0):
        if memory_parallelism < 1:
            raise ValueError("memory parallelism must be >= 1")
        if not 0 <= branch_mispredict_rate <= 1:
            raise ValueError("mispredict rate must be in [0, 1]")
        if mispredict_penalty_cycles < 0:
            raise ValueError("mispredict penalty cannot be negative")
        self.cpu = cpu
        self.table = table
        self.policy = policy
        self.branch_mispredict_rate = branch_mispredict_rate
        self.mispredict_penalty_cycles = mispredict_penalty_cycles
        self.memory_parallelism = memory_parallelism
        self.prefetch = prefetch
        self._seed = seed

    def new_hierarchy(self) -> MultiLevelCache:
        return hierarchy_for(self.cpu, policy=self.policy, seed=self._seed,
                             prefetch=self.prefetch)

    # -- main entry ---------------------------------------------------------

    def run(self, trace: Trace, body: LoopBody, iterations: int,
            label: str | None = None,
            branch_mispredict_rate: float | None = None) -> KernelSimulation:
        """Simulate ``iterations`` executions of ``body`` issuing ``trace``.

        The trace is replayed through a fresh cache hierarchy; the body is
        scheduled on the port model.  ``iterations`` is the dynamic trip
        count of the modelled loop (e.g. n³ for scalar matmul).
        """
        if iterations < 1:
            raise ValueError("iterations must be positive")
        mispredict_rate = (self.branch_mispredict_rate
                           if branch_mispredict_rate is None else branch_mispredict_rate)
        if not 0 <= mispredict_rate <= 1:
            raise ValueError("mispredict rate must be in [0, 1]")

        hierarchy = self.new_hierarchy()
        hierarchy.access_trace(trace.addresses, trace.writes)
        analysis = analyze_loop(body, self.table)

        compute_cycles = analysis.cycles_per_iteration * iterations

        # memory-side cycle accounting
        freq = self.cpu.frequency_hz
        mem_latency_cycles = self.cpu.memory.latency_s * freq
        l1_latency = self.cpu.caches[0].latency_cycles
        extra_latency = 0.0
        for level_idx, cache in enumerate(hierarchy.caches):
            if level_idx == 0:
                continue  # L1 hit latency is inside the port model's load latency
            extra_latency += cache.stats.hits * (cache.level.latency_cycles - l1_latency)
        extra_latency += hierarchy.memory_accesses * (mem_latency_cycles - l1_latency)
        extra_latency /= self.memory_parallelism

        dram_bytes = hierarchy.dram_traffic_bytes()
        bytes_per_cycle = self.cpu.memory.bandwidth_bytes_per_s / freq
        bandwidth_cycles = dram_bytes / bytes_per_cycle

        mix = body.opcode_mix()
        branches = float(mix.get("branch", 0)) * iterations
        mispredicts = branches * mispredict_rate
        penalty = mispredicts * self.mispredict_penalty_cycles

        optimistic = max(compute_cycles, bandwidth_cycles) + penalty
        realistic = max(compute_cycles, extra_latency + bandwidth_cycles) + penalty
        pessimistic = compute_cycles + max(extra_latency, bandwidth_cycles) + penalty

        # event totals
        instructions = float(sum(mix.values())) * iterations
        flops = 0.0
        vec_lanes = self.cpu.vector.lanes(8)
        for op, count in mix.items():
            if op in _FLOP_OPS:
                flops += _FLOP_OPS[op] * count * iterations
            elif op in _VECTOR_FLOP_OPS:
                flops += _VECTOR_FLOP_OPS[op] * count * iterations * vec_lanes

        level_hits = {c.level.name: c.stats.hits for c in hierarchy.caches}
        level_misses = {c.level.name: c.stats.misses for c in hierarchy.caches}

        counters = SimulatedCounters(
            cycles=realistic,
            instructions=instructions,
            flops=flops,
            loads=trace.n_reads,
            stores=trace.n_writes,
            level_hits=level_hits,
            level_misses=level_misses,
            dram_accesses=hierarchy.memory_accesses,
            dram_bytes=dram_bytes,
            branches=branches,
            branch_mispredicts=mispredicts,
        )
        return KernelSimulation(
            label=label or trace.label or body.label,
            counters=counters,
            port_analysis=analysis,
            optimistic_cycles=optimistic,
            pessimistic_cycles=pessimistic,
            frequency_hz=freq,
        )
