"""Machine descriptions used throughout the toolbox.

The course (Section 2.1 of the paper) targets heterogeneous systems built
from multi-core CPUs and many-core GPUs, potentially scaled out over several
nodes.  Every model in this library (Roofline, ECM, analytical, simulator,
distributed) consumes one of the specification dataclasses defined here, so a
single machine description drives every stage of the performance-engineering
process.

All quantities use base SI units: bytes, seconds, hertz, FLOP.  Derived
quantities (peak FLOP/s, stream bandwidth, machine balance) are exposed as
properties so that specs remain plain data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = [
    "CacheLevel",
    "MemorySpec",
    "VectorUnit",
    "CPUSpec",
    "GPUSpec",
    "NodeSpec",
    "ClusterSpec",
]


@dataclass(frozen=True)
class CacheLevel:
    """One level of a cache hierarchy.

    Parameters mirror what ``likwid-topology`` or ``getconf`` would report on
    a real machine and what the cache simulator (:mod:`repro.simulator.cache`)
    needs to be instantiated.

    Attributes
    ----------
    name:
        Human-readable level name, e.g. ``"L1"``.
    capacity_bytes:
        Total capacity of the cache in bytes.
    line_bytes:
        Cache line (block) size in bytes.
    associativity:
        Number of ways.  ``associativity == capacity_bytes // line_bytes``
        makes the cache fully associative.
    latency_cycles:
        Load-to-use latency of a hit in core clock cycles.
    bandwidth_bytes_per_cycle:
        Sustained bandwidth between this level and the core (or the next
        level up), in bytes per cycle.  Used by the ECM model.
    shared:
        Whether the level is shared between all cores of the CPU (e.g. an
        L3) or private per core (L1/L2 on most designs).
    """

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    latency_cycles: float = 4.0
    bandwidth_bytes_per_cycle: float = 64.0
    shared: bool = False

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line size must be a positive power of two")
        if self.capacity_bytes % self.line_bytes:
            raise ValueError(f"{self.name}: capacity must be a multiple of the line size")
        n_lines = self.capacity_bytes // self.line_bytes
        if not 1 <= self.associativity <= n_lines:
            raise ValueError(
                f"{self.name}: associativity {self.associativity} outside [1, {n_lines}]"
            )
        if n_lines % self.associativity:
            raise ValueError(f"{self.name}: #lines must be a multiple of associativity")

    @property
    def n_lines(self) -> int:
        """Total number of cache lines."""
        return self.capacity_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets (lines / ways)."""
        return self.n_lines // self.associativity

    @property
    def is_fully_associative(self) -> bool:
        return self.associativity == self.n_lines


@dataclass(frozen=True)
class MemorySpec:
    """Main-memory subsystem of one node/socket.

    Attributes
    ----------
    capacity_bytes:
        DRAM capacity.
    bandwidth_bytes_per_s:
        Sustainable (STREAM-like) bandwidth, *not* the theoretical pin
        bandwidth; this is what the Roofline memory ceiling uses.
    latency_s:
        Idle random-access latency in seconds.
    """

    capacity_bytes: int = 64 * 2**30
    bandwidth_bytes_per_s: float = 50e9
    latency_s: float = 90e-9

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("memory latency must be non-negative")


@dataclass(frozen=True)
class VectorUnit:
    """SIMD capability of one core.

    Attributes
    ----------
    width_bits:
        Vector register width (128 = SSE/NEON, 256 = AVX2, 512 = AVX-512).
    fma:
        Whether fused multiply-add is supported (doubles peak FLOP/cycle).
    pipelines:
        Number of vector FP pipelines (execution ports) per core.
    """

    width_bits: int = 256
    fma: bool = True
    pipelines: int = 2

    def __post_init__(self) -> None:
        if self.width_bits not in (64, 128, 256, 512, 1024):
            raise ValueError(f"unsupported vector width: {self.width_bits}")
        if self.pipelines < 1:
            raise ValueError("need at least one pipeline")

    def lanes(self, dtype_bytes: int = 8) -> int:
        """Number of SIMD lanes for elements of ``dtype_bytes`` bytes."""
        if dtype_bytes <= 0 or self.width_bits % (8 * dtype_bytes):
            raise ValueError(f"dtype of {dtype_bytes} bytes does not tile the vector")
        return self.width_bits // (8 * dtype_bytes)

    def flops_per_cycle(self, dtype_bytes: int = 8) -> float:
        """Peak FLOP/cycle of one core using this unit."""
        per_pipe = self.lanes(dtype_bytes) * (2 if self.fma else 1)
        return float(per_pipe * self.pipelines)


@dataclass(frozen=True)
class CPUSpec:
    """A multi-core CPU (one socket).

    The spec carries everything the Roofline model, ECM model and the cache
    simulator need.  Cache levels must be ordered from closest to the core
    (L1) to farthest (LLC).
    """

    name: str
    cores: int
    frequency_hz: float
    vector: VectorUnit = field(default_factory=VectorUnit)
    caches: tuple[CacheLevel, ...] = ()
    memory: MemorySpec = field(default_factory=MemorySpec)
    smt: int = 1

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a CPU needs at least one core")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.smt < 1:
            raise ValueError("SMT factor must be >= 1")
        caps = [c.capacity_bytes for c in self.caches]
        if caps != sorted(caps):
            raise ValueError("cache levels must be ordered smallest (L1) to largest (LLC)")

    # -- derived peaks ----------------------------------------------------

    def peak_flops(self, dtype_bytes: int = 8, cores: int | None = None) -> float:
        """Peak FLOP/s of ``cores`` cores (default: all) at base frequency."""
        n = self.cores if cores is None else cores
        if not 1 <= n <= self.cores:
            raise ValueError(f"cores must be in [1, {self.cores}]")
        return n * self.frequency_hz * self.vector.flops_per_cycle(dtype_bytes)

    def peak_scalar_flops(self, cores: int | None = None) -> float:
        """Peak FLOP/s without SIMD (1 FLOP/pipe/cycle, FMA still counted)."""
        n = self.cores if cores is None else cores
        per_core = self.vector.pipelines * (2 if self.vector.fma else 1)
        return n * self.frequency_hz * per_core

    @property
    def stream_bandwidth(self) -> float:
        """Sustained memory bandwidth in bytes/s (socket-level)."""
        return self.memory.bandwidth_bytes_per_s

    def machine_balance(self, dtype_bytes: int = 8) -> float:
        """Machine balance in bytes/FLOP (McCalpin 1995).

        Low balance means the machine starves memory-intensive codes; the
        reciprocal is the Roofline ridge point in FLOP/byte.
        """
        return self.stream_bandwidth / self.peak_flops(dtype_bytes)

    def ridge_point(self, dtype_bytes: int = 8) -> float:
        """Arithmetic intensity (FLOP/byte) where the Roofline changes regime."""
        return self.peak_flops(dtype_bytes) / self.stream_bandwidth

    def cache(self, name: str) -> CacheLevel:
        """Look up a cache level by name (case-insensitive)."""
        for level in self.caches:
            if level.name.lower() == name.lower():
                return level
        raise KeyError(f"{self.name} has no cache level {name!r}")

    def with_cores(self, cores: int) -> "CPUSpec":
        """A copy of this spec restricted to ``cores`` cores."""
        if not 1 <= cores <= self.cores:
            raise ValueError(f"cores must be in [1, {self.cores}]")
        return replace(self, cores=cores)


@dataclass(frozen=True)
class GPUSpec:
    """A many-core GPU accelerator.

    The course used NVIDIA GPUs of compute capability 3.0-7.2 (paper §A.3);
    the presets module instantiates representatives of that range.  The model
    is deliberately architecture-generic: SMs execute warps of ``warp_size``
    threads, each SM owns register/shared-memory budgets that bound
    occupancy.
    """

    name: str
    sms: int
    cuda_cores_per_sm: int
    frequency_hz: float
    memory_bandwidth_bytes_per_s: float
    memory_bytes: int
    compute_capability: tuple[int, int] = (7, 0)
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_warps_per_sm: int = 64
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    shared_mem_per_sm_bytes: int = 96 * 1024
    fma: bool = True
    kernel_launch_latency_s: float = 5e-6
    pcie_bandwidth_bytes_per_s: float = 12e9

    def __post_init__(self) -> None:
        if self.sms < 1 or self.cuda_cores_per_sm < 1:
            raise ValueError("GPU must have at least one SM with one core")
        if self.frequency_hz <= 0 or self.memory_bandwidth_bytes_per_s <= 0:
            raise ValueError("frequency and bandwidth must be positive")
        if self.max_threads_per_sm % self.warp_size:
            raise ValueError("max threads/SM must be a multiple of the warp size")

    def peak_flops(self, dtype_bytes: int = 4) -> float:
        """Peak FLOP/s.  GPUs are rated for FP32; FP64 runs at a 1/2..1/32
        ratio — we use the conservative 1/8 typical of consumer parts."""
        base = self.sms * self.cuda_cores_per_sm * self.frequency_hz
        base *= 2 if self.fma else 1
        if dtype_bytes == 4:
            return base
        if dtype_bytes == 8:
            return base / 8.0
        raise ValueError("GPU peak defined for 4- or 8-byte floats only")

    def ridge_point(self, dtype_bytes: int = 4) -> float:
        return self.peak_flops(dtype_bytes) / self.memory_bandwidth_bytes_per_s

    def machine_balance(self, dtype_bytes: int = 4) -> float:
        return self.memory_bandwidth_bytes_per_s / self.peak_flops(dtype_bytes)


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node: CPUs plus optional accelerators."""

    name: str
    cpu: CPUSpec
    sockets: int = 1
    gpus: tuple[GPUSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("need at least one socket")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cpu.cores

    def peak_flops(self, dtype_bytes: int = 8, include_gpus: bool = True) -> float:
        total = self.sockets * self.cpu.peak_flops(dtype_bytes)
        if include_gpus:
            total += sum(g.peak_flops(dtype_bytes) for g in self.gpus)
        return total

    @property
    def stream_bandwidth(self) -> float:
        return self.sockets * self.cpu.stream_bandwidth


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of nodes connected by a network.

    ``link_latency_s``/``link_bandwidth_bytes_per_s`` parameterize the
    alpha-beta network model in :mod:`repro.distributed.network`.
    """

    name: str
    node: NodeSpec
    n_nodes: int
    link_latency_s: float = 1.5e-6
    link_bandwidth_bytes_per_s: float = 6e9

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.link_latency_s < 0 or self.link_bandwidth_bytes_per_s <= 0:
            raise ValueError("invalid network parameters")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.total_cores

    def peak_flops(self, dtype_bytes: int = 8, include_gpus: bool = True) -> float:
        return self.n_nodes * self.node.peak_flops(dtype_bytes, include_gpus)

    def bisection_bandwidth(self) -> float:
        """Bandwidth across a bisection assuming a full-bisection fabric."""
        return (self.n_nodes / 2) * self.link_bandwidth_bytes_per_s


def _validate_positive(value: float, what: str) -> float:
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{what} must be positive and finite, got {value}")
    return value
