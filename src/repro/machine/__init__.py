"""Machine descriptions: CPUs, GPUs, nodes, clusters, instruction tables."""

from .instruction_tables import (
    VIRTUAL_ISA,
    InstructionSpec,
    InstructionTable,
    generic_server_table,
    narrow_mobile_table,
)
from .presets import (
    ALL_GPUS,
    das5_cluster,
    das5_node,
    epyc_like_cpu,
    generic_server_cpu,
    gpu_cc30,
    gpu_cc60,
    gpu_cc72,
    student_laptop_cpu,
)
from .specs import (
    CacheLevel,
    ClusterSpec,
    CPUSpec,
    GPUSpec,
    MemorySpec,
    NodeSpec,
    VectorUnit,
)

__all__ = [
    "CacheLevel",
    "MemorySpec",
    "VectorUnit",
    "CPUSpec",
    "GPUSpec",
    "NodeSpec",
    "ClusterSpec",
    "InstructionSpec",
    "InstructionTable",
    "VIRTUAL_ISA",
    "generic_server_table",
    "narrow_mobile_table",
    "generic_server_cpu",
    "epyc_like_cpu",
    "student_laptop_cpu",
    "das5_node",
    "das5_cluster",
    "gpu_cc30",
    "gpu_cc60",
    "gpu_cc72",
    "ALL_GPUS",
]
