"""Preset machine descriptions.

The course ran on students' laptops and on the DAS-5 research cluster
(Bal et al., 2016), with NVIDIA GPUs of compute capability 3.0-7.2
(paper §A.3).  These presets are *representative*, not vendor datasheets:
the assignments care about realistic ratios (ridge points, cache sizes,
core counts), which these reproduce.
"""

from __future__ import annotations

from .specs import (
    CacheLevel,
    ClusterSpec,
    CPUSpec,
    GPUSpec,
    MemorySpec,
    NodeSpec,
    VectorUnit,
)

__all__ = [
    "generic_server_cpu",
    "epyc_like_cpu",
    "student_laptop_cpu",
    "das5_node",
    "das5_cluster",
    "gpu_cc30",
    "gpu_cc60",
    "gpu_cc72",
    "ALL_GPUS",
]


def generic_server_cpu() -> CPUSpec:
    """A 16-core AVX2 server CPU, the default teaching machine.

    Ridge point ≈ 14 FLOP/byte for FP64 — comfortably above STREAM triad's
    intensity and below a large tiled matmul's, so the Roofline assignment
    sees both regimes.
    """
    return CPUSpec(
        name="generic-server",
        cores=16,
        frequency_hz=2.6e9,
        vector=VectorUnit(width_bits=256, fma=True, pipelines=2),
        caches=(
            CacheLevel("L1", 32 * 1024, 64, 8, latency_cycles=4, bandwidth_bytes_per_cycle=128),
            CacheLevel("L2", 1024 * 1024, 64, 16, latency_cycles=12, bandwidth_bytes_per_cycle=64),
            CacheLevel("L3", 22 * 1024 * 1024, 64, 11, latency_cycles=38,
                       bandwidth_bytes_per_cycle=32, shared=True),
        ),
        memory=MemorySpec(capacity_bytes=192 * 2**30, bandwidth_bytes_per_s=95e9,
                          latency_s=85e-9),
        smt=2,
    )


def epyc_like_cpu() -> CPUSpec:
    """A 32-core AMD-EPYC-like server CPU — the "other vendor" machine.

    Supporting various vendors' hardware is the paper's future-work topic
    (1); the course's recommended tools are Intel-specific (§A.3).  The
    EPYC-like preset differs where it matters for the models: more cores
    at a lower clock, bigger (victim-style) L3 per fewer shared ways, and
    higher aggregate memory bandwidth — so cross-machine predictions
    genuinely change.
    """
    return CPUSpec(
        name="epyc-like",
        cores=32,
        frequency_hz=2.2e9,
        vector=VectorUnit(width_bits=256, fma=True, pipelines=2),
        caches=(
            CacheLevel("L1", 32 * 1024, 64, 8, latency_cycles=4, bandwidth_bytes_per_cycle=128),
            CacheLevel("L2", 512 * 1024, 64, 8, latency_cycles=12, bandwidth_bytes_per_cycle=64),
            CacheLevel("L3", 32 * 1024 * 1024, 64, 16, latency_cycles=46,
                       bandwidth_bytes_per_cycle=32, shared=True),
        ),
        memory=MemorySpec(capacity_bytes=256 * 2**30, bandwidth_bytes_per_s=150e9,
                          latency_s=95e-9),
        smt=2,
    )


def student_laptop_cpu() -> CPUSpec:
    """A 4-core laptop CPU — what students run assignment prototypes on."""
    return CPUSpec(
        name="student-laptop",
        cores=4,
        frequency_hz=2.0e9,
        vector=VectorUnit(width_bits=256, fma=True, pipelines=1),
        caches=(
            CacheLevel("L1", 32 * 1024, 64, 8, latency_cycles=4, bandwidth_bytes_per_cycle=64),
            CacheLevel("L2", 256 * 1024, 64, 8, latency_cycles=12, bandwidth_bytes_per_cycle=32),
            CacheLevel("L3", 6 * 1024 * 1024, 64, 12, latency_cycles=34,
                       bandwidth_bytes_per_cycle=16, shared=True),
        ),
        memory=MemorySpec(capacity_bytes=16 * 2**30, bandwidth_bytes_per_s=20e9,
                          latency_s=100e-9),
        smt=2,
    )


def gpu_cc30() -> GPUSpec:
    """Kepler-class GPU (compute capability 3.0), the oldest the course used."""
    return GPUSpec(
        name="kepler-cc30",
        sms=8,
        cuda_cores_per_sm=192,
        frequency_hz=1.0e9,
        memory_bandwidth_bytes_per_s=192e9,
        memory_bytes=4 * 2**30,
        compute_capability=(3, 0),
        max_threads_per_sm=2048,
        max_warps_per_sm=64,
        registers_per_sm=65536,
        shared_mem_per_sm_bytes=48 * 1024,
        pcie_bandwidth_bytes_per_s=8e9,
    )


def gpu_cc60() -> GPUSpec:
    """Pascal-class GPU (compute capability 6.0)."""
    return GPUSpec(
        name="pascal-cc60",
        sms=56,
        cuda_cores_per_sm=64,
        frequency_hz=1.3e9,
        memory_bandwidth_bytes_per_s=720e9,
        memory_bytes=16 * 2**30,
        compute_capability=(6, 0),
        max_threads_per_sm=2048,
        max_warps_per_sm=64,
        registers_per_sm=65536,
        shared_mem_per_sm_bytes=64 * 1024,
        pcie_bandwidth_bytes_per_s=12e9,
    )


def gpu_cc72() -> GPUSpec:
    """Volta/Xavier-class GPU (compute capability 7.2), the newest used."""
    return GPUSpec(
        name="volta-cc72",
        sms=80,
        cuda_cores_per_sm=64,
        frequency_hz=1.5e9,
        memory_bandwidth_bytes_per_s=900e9,
        memory_bytes=32 * 2**30,
        compute_capability=(7, 2),
        max_threads_per_sm=2048,
        max_warps_per_sm=64,
        registers_per_sm=65536,
        shared_mem_per_sm_bytes=96 * 1024,
        pcie_bandwidth_bytes_per_s=14e9,
    )


def ALL_GPUS() -> tuple[GPUSpec, ...]:
    """All GPU presets spanning the paper's cc 3.0-7.2 range."""
    return (gpu_cc30(), gpu_cc60(), gpu_cc72())


def das5_node() -> NodeSpec:
    """A DAS-5-like node: dual-socket CPU plus one accelerator."""
    return NodeSpec(name="das5-node", cpu=generic_server_cpu(), sockets=2,
                    gpus=(gpu_cc60(),))


def das5_cluster(n_nodes: int = 32) -> ClusterSpec:
    """A DAS-5-like cluster partition with FDR-InfiniBand-class links."""
    return ClusterSpec(
        name="das5",
        node=das5_node(),
        n_nodes=n_nodes,
        link_latency_s=1.7e-6,
        link_bandwidth_bytes_per_s=6.8e9,
    )
