"""Agner-Fog-style instruction latency/throughput tables.

Assignment 2 of the course points students at "tabulated performance data for
different processors" (Fog's instruction tables) to calibrate fine-grained
analytical models, and assignment tooling such as IACA/OSACA/LLVM-MCA builds
throughput predictions from exactly this kind of table.

We define a small virtual ISA sufficient to express the course kernels
(matmul, histogram, SpMV, stencil, STREAM) and per-microarchitecture tables
mapping each opcode to latency, reciprocal throughput, and the set of
execution ports it can issue to.  The port-model scheduler in
:mod:`repro.simulator.ports` consumes these tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "InstructionSpec",
    "InstructionTable",
    "VIRTUAL_ISA",
    "generic_server_table",
    "narrow_mobile_table",
]


@dataclass(frozen=True)
class InstructionSpec:
    """Timing of one opcode on one microarchitecture.

    Attributes
    ----------
    opcode:
        Mnemonic, e.g. ``"fmadd"``.
    latency_cycles:
        Result latency: cycles from issue until a dependent instruction can
        issue.
    ports:
        Execution ports the instruction may issue to (one micro-op is
        assumed).  Reciprocal throughput emerges from port contention; an
        instruction that can go to 2 ports has rthroughput 0.5 in isolation.
    uops:
        Number of micro-ops (each occupies one port slot for one cycle).
    """

    opcode: str
    latency_cycles: float
    ports: tuple[str, ...]
    uops: int = 1

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ValueError(f"{self.opcode}: negative latency")
        if not self.ports:
            raise ValueError(f"{self.opcode}: needs at least one port")
        if self.uops < 1:
            raise ValueError(f"{self.opcode}: needs at least one uop")

    @property
    def reciprocal_throughput(self) -> float:
        """Best-case cycles/instruction in an infinite independent stream."""
        return self.uops / len(self.ports)


#: The virtual ISA used by kernel instruction mixes in this library.  Each
#: entry documents the intended semantics; timing lives in per-arch tables.
VIRTUAL_ISA: tuple[str, ...] = (
    "load",     # memory read (hit timing added by the cache model)
    "store",    # memory write
    "add",      # FP add/sub
    "mul",      # FP multiply
    "fmadd",    # fused multiply-add (2 FLOP)
    "div",      # FP divide
    "iadd",     # integer ALU (address arithmetic, loop counters)
    "imul",     # integer multiply
    "cmp",      # compare / test
    "branch",   # conditional branch
    "vload",    # SIMD load of one full vector register
    "vstore",   # SIMD store
    "vadd",     # SIMD FP add
    "vmul",     # SIMD FP multiply
    "vfmadd",   # SIMD fused multiply-add
    "gather",   # SIMD gather (indexed loads, SpMV's x[col[j]])
    "nop",      # scheduling filler
)


class InstructionTable:
    """A per-microarchitecture table of :class:`InstructionSpec`.

    The table validates that every opcode belongs to :data:`VIRTUAL_ISA` and
    exposes convenient lookups for the analytical models and the port
    scheduler.
    """

    def __init__(self, name: str, specs: Iterable[InstructionSpec], ports: tuple[str, ...]):
        self.name = name
        self.ports = tuple(ports)
        if len(set(self.ports)) != len(self.ports):
            raise ValueError("duplicate port names")
        self._specs: dict[str, InstructionSpec] = {}
        for spec in specs:
            if spec.opcode not in VIRTUAL_ISA:
                raise ValueError(f"unknown opcode {spec.opcode!r} (not in VIRTUAL_ISA)")
            if spec.opcode in self._specs:
                raise ValueError(f"duplicate opcode {spec.opcode!r}")
            for port in spec.ports:
                if port not in self.ports:
                    raise ValueError(f"{spec.opcode}: unknown port {port!r}")
            self._specs[spec.opcode] = spec

    def __contains__(self, opcode: str) -> bool:
        return opcode in self._specs

    def __getitem__(self, opcode: str) -> InstructionSpec:
        try:
            return self._specs[opcode]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no timing for opcode {opcode!r}") from None

    def latency(self, opcode: str) -> float:
        return self[opcode].latency_cycles

    def reciprocal_throughput(self, opcode: str) -> float:
        return self[opcode].reciprocal_throughput

    def opcodes(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def as_dict(self) -> Mapping[str, InstructionSpec]:
        return dict(self._specs)

    # -- aggregate helpers used by coarse analytical models ---------------

    def mix_cycles_throughput_bound(self, mix: Mapping[str, float]) -> float:
        """Cycles to retire an instruction *mix* assuming perfect overlap.

        ``mix`` maps opcode -> count.  The bound is the busiest port's
        occupancy, i.e. what IACA calls the "block throughput" under an
        optimal (fractional) port assignment.  We distribute each opcode's
        uops evenly over its allowed ports, which is optimal for
        single-uop instructions and a tight lower bound in general.
        """
        pressure = {p: 0.0 for p in self.ports}
        for opcode, count in mix.items():
            if count < 0:
                raise ValueError(f"negative count for {opcode}")
            spec = self[opcode]
            share = count * spec.uops / len(spec.ports)
            for port in spec.ports:
                pressure[port] += share
        return max(pressure.values(), default=0.0)

    def mix_cycles_latency_bound(self, chain: Iterable[str]) -> float:
        """Cycles for a serial dependency *chain* of opcodes."""
        return sum(self.latency(op) for op in chain)


def generic_server_table() -> InstructionTable:
    """Timing table for a generic wide out-of-order server core.

    Latencies/throughputs follow the ballpark of Fog's tables for a
    Skylake-SP-class core: 4-wide issue over ports p0/p1 (FP/vector),
    p2/p3 (loads), p4 (store), p5/p6 (integer/branch).
    """
    ports = ("p0", "p1", "p2", "p3", "p4", "p5", "p6")
    specs = [
        InstructionSpec("load", 4, ("p2", "p3")),
        InstructionSpec("store", 1, ("p4",)),
        InstructionSpec("add", 4, ("p0", "p1")),
        InstructionSpec("mul", 4, ("p0", "p1")),
        InstructionSpec("fmadd", 4, ("p0", "p1")),
        InstructionSpec("div", 14, ("p0",), uops=3),
        InstructionSpec("iadd", 1, ("p0", "p1", "p5", "p6")),
        InstructionSpec("imul", 3, ("p1",)),
        InstructionSpec("cmp", 1, ("p0", "p1", "p5", "p6")),
        InstructionSpec("branch", 1, ("p6",)),
        InstructionSpec("vload", 5, ("p2", "p3")),
        InstructionSpec("vstore", 1, ("p4",)),
        InstructionSpec("vadd", 4, ("p0", "p1")),
        InstructionSpec("vmul", 4, ("p0", "p1")),
        InstructionSpec("vfmadd", 4, ("p0", "p1")),
        InstructionSpec("gather", 12, ("p2", "p3"), uops=4),
        InstructionSpec("nop", 0, ("p0", "p1", "p5", "p6")),
    ]
    return InstructionTable("generic-server", specs, ports)


def narrow_mobile_table() -> InstructionTable:
    """Timing table for a narrow 2-wide in-order-ish mobile core.

    Used in ablations to show how model predictions shift between
    microarchitectures — the point of assignment 2's calibration exercise.
    """
    ports = ("p0", "p1", "ls")
    specs = [
        InstructionSpec("load", 5, ("ls",)),
        InstructionSpec("store", 2, ("ls",)),
        InstructionSpec("add", 5, ("p0",)),
        InstructionSpec("mul", 6, ("p0",)),
        InstructionSpec("fmadd", 8, ("p0",)),
        InstructionSpec("div", 22, ("p0",), uops=6),
        InstructionSpec("iadd", 1, ("p0", "p1")),
        InstructionSpec("imul", 4, ("p1",)),
        InstructionSpec("cmp", 1, ("p0", "p1")),
        InstructionSpec("branch", 1, ("p1",)),
        InstructionSpec("vload", 6, ("ls",), uops=2),
        InstructionSpec("vstore", 3, ("ls",), uops=2),
        InstructionSpec("vadd", 5, ("p0",)),
        InstructionSpec("vmul", 6, ("p0",)),
        InstructionSpec("vfmadd", 8, ("p0",)),
        InstructionSpec("gather", 20, ("ls",), uops=8),
        InstructionSpec("nop", 0, ("p0", "p1")),
    ]
    return InstructionTable("narrow-mobile", specs, ports)
