"""Feature importance — which workload properties drive performance?

Assignment 3's reflection question: after a statistical model fits, *what
did it learn*?  Permutation importance answers it model-agnostically: break
one feature's relationship to the target by shuffling it, and measure how
much held-out accuracy degrades.  Works identically for the interpretable
and the black-box regressors, which is exactly why the comparison exercise
needs it.
"""

from __future__ import annotations

import numpy as np

from .validation import Regressor, mape

__all__ = ["permutation_importance", "rank_features", "importance_report"]


def permutation_importance(model: Regressor, X: np.ndarray, y: np.ndarray,
                           n_repeats: int = 5, seed: int = 0) -> np.ndarray:
    """Per-feature MAPE increase when that feature is shuffled.

    Returns an array of shape (n_features,): mean degradation over
    ``n_repeats`` shuffles.  Near-zero (or negative, from noise) means the
    model ignores the feature.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError("X/y shape mismatch")
    if n_repeats < 1:
        raise ValueError("need at least one repeat")
    rng = np.random.default_rng(seed)
    base = mape(y, np.asarray(model.predict(X), dtype=float))
    importances = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        degradations = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, j] = rng.permutation(shuffled[:, j])
            degradations.append(
                mape(y, np.asarray(model.predict(shuffled), dtype=float)) - base)
        importances[j] = float(np.mean(degradations))
    return importances


def rank_features(importances: np.ndarray, names: list[str]) -> list[tuple[str, float]]:
    """(name, importance) pairs sorted most-important first."""
    importances = np.asarray(importances, dtype=float)
    if importances.ndim != 1 or len(names) != importances.size:
        raise ValueError("names/importances length mismatch")
    order = np.argsort(-importances)
    return [(names[i], float(importances[i])) for i in order]


def importance_report(model: Regressor, X: np.ndarray, y: np.ndarray,
                      names: list[str], n_repeats: int = 5,
                      seed: int = 0) -> str:
    """Readable ranking; the paragraph students paste into their report."""
    ranked = rank_features(
        permutation_importance(model, X, y, n_repeats, seed), names)
    lines = [f"  {'feature':20s} {'MAPE increase when shuffled':>28s}"]
    for name, imp in ranked:
        lines.append(f"  {name:20s} {imp:>+28.1%}")
    return "\n".join(lines)
