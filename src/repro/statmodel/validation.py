"""Validation of statistical performance models.

Assignment 3 requires students to "evaluate the prediction accuracy of the
proposed model" — which means held-out data, cross-validation, and the right
error metrics (performance data spans orders of magnitude, so percentage
errors, not absolute ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "Regressor",
    "train_test_split",
    "mape",
    "rmse",
    "r_squared",
    "CVResult",
    "cross_validate",
    "learning_curve",
]


class Regressor(Protocol):
    """Fit/predict protocol every estimator in this package implements."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


def train_test_split(X: np.ndarray, y: np.ndarray, test_fraction: float = 0.25,
                     seed: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError("X/y shape mismatch")
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    n = X.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("not enough samples to split")
    perm = np.random.default_rng(seed).permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("shape mismatch or empty input")
    if np.any(y_true == 0):
        raise ValueError("MAPE undefined when a true value is zero")
    return float(np.mean(np.abs((y_pred - y_true) / y_true)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root-mean-square error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("shape mismatch or empty input")
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def r_squared(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape or y_true.size == 0:
        raise ValueError("shape mismatch or empty input")
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


@dataclass(frozen=True)
class CVResult:
    """Per-fold and aggregate cross-validation errors."""

    fold_mape: tuple[float, ...]
    fold_rmse: tuple[float, ...]

    @property
    def mean_mape(self) -> float:
        return float(np.mean(self.fold_mape))

    @property
    def mean_rmse(self) -> float:
        return float(np.mean(self.fold_rmse))

    @property
    def std_mape(self) -> float:
        return float(np.std(self.fold_mape))


def cross_validate(model_factory, X: np.ndarray, y: np.ndarray,
                   folds: int = 5, seed: int = 0) -> CVResult:
    """k-fold cross-validation; ``model_factory()`` builds a fresh model."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X/y shape mismatch")
    n = X.shape[0]
    if folds < 2 or folds > n:
        raise ValueError("folds must be in [2, n_samples]")
    perm = np.random.default_rng(seed).permutation(n)
    fold_idx = np.array_split(perm, folds)
    mapes, rmses = [], []
    for k in range(folds):
        test = fold_idx[k]
        train = np.concatenate([fold_idx[j] for j in range(folds) if j != k])
        model = model_factory()
        model.fit(X[train], y[train])
        pred = model.predict(X[test])
        mapes.append(mape(y[test], pred))
        rmses.append(rmse(y[test], pred))
    return CVResult(tuple(mapes), tuple(rmses))


def learning_curve(model_factory, X: np.ndarray, y: np.ndarray,
                   train_sizes: list[int], test_fraction: float = 0.25,
                   seed: int = 0) -> dict[int, float]:
    """Held-out MAPE vs training-set size.

    Shows whether more measurements would help — "the challenges of defining
    and collecting training data" the assignment highlights.
    """
    X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction, seed)
    out: dict[int, float] = {}
    for size in train_sizes:
        if not 1 <= size <= X_train.shape[0]:
            raise ValueError(f"train size {size} outside [1, {X_train.shape[0]}]")
        model = model_factory()
        model.fit(X_train[:size], y_train[:size])
        out[size] = mape(y_test, model.predict(X_test))
    return out
