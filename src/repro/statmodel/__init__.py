"""Statistical performance modeling (Assignment 3)."""

from .comparison import ComparisonResult, ModelEntry, compare_models
from .features import (
    FeaturePipeline,
    dataset_from_dicts,
    matmul_feature_pipeline,
    spmv_feature_pipeline,
)
from .importance import (
    importance_report,
    permutation_importance,
    rank_features,
)
from .regression import (
    DecisionTreeRegressor,
    KNNRegressor,
    LinearRegressor,
    PolynomialRegressor,
    RandomForestRegressor,
)
from .validation import (
    CVResult,
    Regressor,
    cross_validate,
    learning_curve,
    mape,
    r_squared,
    rmse,
    train_test_split,
)

__all__ = [
    "LinearRegressor",
    "PolynomialRegressor",
    "KNNRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "FeaturePipeline",
    "spmv_feature_pipeline",
    "matmul_feature_pipeline",
    "dataset_from_dicts",
    "Regressor",
    "train_test_split",
    "mape",
    "rmse",
    "r_squared",
    "CVResult",
    "cross_validate",
    "learning_curve",
    "ModelEntry",
    "ComparisonResult",
    "compare_models",
    "permutation_importance",
    "rank_features",
    "importance_report",
]
