"""Analytical-vs-statistical model comparison — assignment 3's capstone.

The assignment "showcase[s] the interpretability of the models by
comparison, by exposing students to two extremes: the highly-explainable
analytical model vs. the black-box statistical models".  This module runs
both kinds of model on the same held-out data and produces the comparison
report the students write by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from .validation import mape, r_squared, rmse

__all__ = ["ModelEntry", "ComparisonResult", "compare_models"]


@dataclass(frozen=True)
class ModelEntry:
    """One contender: a predict function plus its interpretability class.

    ``kind`` is ``"analytical"`` or ``"statistical"``; ``explanation``
    carries whatever human-readable account the model can give of itself
    (closed-form formula, coefficient listing, or "none — black box").
    """

    name: str
    predict: Callable[[np.ndarray], np.ndarray]
    kind: str
    explanation: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("analytical", "statistical"):
            raise ValueError("kind must be 'analytical' or 'statistical'")


@dataclass(frozen=True)
class ComparisonResult:
    """Per-model accuracy on shared held-out data."""

    names: tuple[str, ...]
    kinds: tuple[str, ...]
    mapes: tuple[float, ...]
    rmses: tuple[float, ...]
    r2s: tuple[float, ...]
    explanations: tuple[str, ...]

    def best(self, metric: str = "mape") -> str:
        """Name of the most accurate model under ``metric``."""
        if metric == "mape":
            return self.names[int(np.argmin(self.mapes))]
        if metric == "rmse":
            return self.names[int(np.argmin(self.rmses))]
        if metric == "r2":
            return self.names[int(np.argmax(self.r2s))]
        raise ValueError(f"unknown metric {metric!r}")

    def by_name(self, name: str) -> dict[str, float]:
        if name not in self.names:
            raise KeyError(name)
        i = self.names.index(name)
        return {"mape": self.mapes[i], "rmse": self.rmses[i], "r2": self.r2s[i]}

    def report(self) -> str:
        lines = [f"  {'model':28s} {'kind':>12s} {'MAPE':>8s} {'RMSE':>11s} {'R^2':>7s}"]
        for n, k, m, r, r2 in zip(self.names, self.kinds, self.mapes,
                                  self.rmses, self.r2s):
            lines.append(f"  {n:28s} {k:>12s} {m:8.1%} {r:11.4e} {r2:7.3f}")
        lines.append(f"  best by MAPE: {self.best('mape')}")
        for n, e in zip(self.names, self.explanations):
            if e:
                lines.append(f"  [{n}] {e}")
        return "\n".join(lines)


def compare_models(entries: Sequence[ModelEntry], X_test: np.ndarray,
                   y_test: np.ndarray) -> ComparisonResult:
    """Evaluate every entry on the same held-out (X, y)."""
    if not entries:
        raise ValueError("need at least one model")
    X_test = np.asarray(X_test, dtype=float)
    y_test = np.asarray(y_test, dtype=float)
    names, kinds, mapes, rmses, r2s, explanations = [], [], [], [], [], []
    for entry in entries:
        pred = np.asarray(entry.predict(X_test), dtype=float)
        if pred.shape != y_test.shape:
            raise ValueError(f"{entry.name}: prediction shape mismatch")
        names.append(entry.name)
        kinds.append(entry.kind)
        mapes.append(mape(y_test, pred))
        rmses.append(rmse(y_test, pred))
        r2s.append(r_squared(y_test, pred))
        explanations.append(entry.explanation)
    return ComparisonResult(tuple(names), tuple(kinds), tuple(mapes),
                            tuple(rmses), tuple(r2s), tuple(explanations))
