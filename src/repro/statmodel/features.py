"""Feature engineering for performance modeling.

Assignment 3's stated goal includes "the challenges of … feature
engineering": raw workload descriptors rarely predict runtime linearly, so
students add derived features (products like n³, logs, ratios).  This module
provides a declarative feature pipeline over dict-shaped descriptors, plus
builders for the SpMV and matmul datasets the assignment uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = ["FeaturePipeline", "spmv_feature_pipeline", "matmul_feature_pipeline",
           "dataset_from_dicts"]


@dataclass(frozen=True)
class _Feature:
    name: str
    fn: Callable[[Mapping[str, float]], float]


class FeaturePipeline:
    """Named derived features computed from raw descriptor dicts.

    >>> pipe = FeaturePipeline().add("n", lambda d: d["n"]) \\
    ...                         .add("n3", lambda d: d["n"] ** 3)
    >>> pipe.transform([{"n": 2.0}])
    array([[2., 8.]])
    """

    def __init__(self) -> None:
        self._features: list[_Feature] = []

    def add(self, name: str, fn: Callable[[Mapping[str, float]], float]
            ) -> "FeaturePipeline":
        if any(f.name == name for f in self._features):
            raise ValueError(f"duplicate feature {name!r}")
        self._features.append(_Feature(name, fn))
        return self

    @property
    def names(self) -> list[str]:
        return [f.name for f in self._features]

    def transform(self, descriptors: Sequence[Mapping[str, float]]) -> np.ndarray:
        if not self._features:
            raise ValueError("pipeline has no features")
        if not descriptors:
            raise ValueError("no descriptors given")
        rows = []
        for desc in descriptors:
            row = []
            for feature in self._features:
                value = float(feature.fn(desc))
                if not np.isfinite(value):
                    raise ValueError(f"feature {feature.name!r} non-finite for {desc}")
                row.append(value)
            rows.append(row)
        return np.asarray(rows, dtype=float)


def spmv_feature_pipeline() -> FeaturePipeline:
    """Features for SpMV runtime prediction from matrix descriptors.

    Consumes the dicts produced by
    :func:`repro.kernels.spmv.matrix_features`; the derived features encode
    the known performance drivers: work (nnz), irregularity (row_std/max),
    and input-vector locality (bandwidth relative to n).
    """
    return (
        FeaturePipeline()
        .add("nnz", lambda d: d["nnz"])
        .add("n_rows", lambda d: d["n_rows"])
        .add("density", lambda d: d["density"])
        .add("row_mean", lambda d: d["row_mean"])
        .add("row_imbalance", lambda d: d["row_max"] / max(d["row_mean"], 1e-12))
        .add("row_cv", lambda d: d["row_std"] / max(d["row_mean"], 1e-12))
        .add("rel_bandwidth", lambda d: d["mean_bandwidth"] / max(d["n_cols"], 1.0))
        .add("log_nnz", lambda d: np.log1p(d["nnz"]))
    )


def matmul_feature_pipeline() -> FeaturePipeline:
    """Features for dense matmul runtime prediction.

    Expects descriptors with ``n`` (matrix size) and optionally ``tile``;
    n³ is *the* feature, and having students realize a single monomial term
    beats a deep model is part of the exercise.
    """
    return (
        FeaturePipeline()
        .add("n", lambda d: d["n"])
        .add("n2", lambda d: d["n"] ** 2)
        .add("n3", lambda d: d["n"] ** 3)
        .add("tile", lambda d: d.get("tile", 0.0))
    )


def dataset_from_dicts(descriptors: Sequence[Mapping[str, float]],
                       times: Sequence[float],
                       pipeline: FeaturePipeline) -> tuple[np.ndarray, np.ndarray]:
    """(X, y) arrays from descriptor dicts + measured times."""
    if len(descriptors) != len(times):
        raise ValueError("descriptors/times length mismatch")
    y = np.asarray(times, dtype=float)
    if np.any(y <= 0):
        raise ValueError("measured times must be positive")
    return pipeline.transform(descriptors), y
