"""Statistical performance models — regressors built from scratch.

Assignment 3 asks students to "work around the limitations of analytical
modeling by using machine-learning models", collecting performance data and
modelling expected performance statistically.  The course environment has no
scikit-learn dependency, and neither do we: every estimator here is
implemented from first principles on NumPy —

* :class:`LinearRegressor` — ordinary least squares with optional ridge
  regularization and feature standardization; fully interpretable
  (coefficients in input units).
* :class:`PolynomialRegressor` — OLS on a degree-d monomial expansion.
* :class:`KNNRegressor` — k-nearest-neighbour averaging; non-parametric.
* :class:`DecisionTreeRegressor` — CART with variance-reduction splits.
* :class:`RandomForestRegressor` — bagged trees with feature subsampling;
  the course's stand-in "black-box" model for the interpretability
  discussion.

All estimators share the fit/predict protocol and validate their inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LinearRegressor",
    "PolynomialRegressor",
    "KNNRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
]


def _check_xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D (samples x features)")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError("y must be 1-D and match X's sample count")
    if X.shape[0] == 0:
        raise ValueError("need at least one sample")
    if not (np.all(np.isfinite(X)) and np.all(np.isfinite(y))):
        raise ValueError("X/y contain non-finite values")
    return X, y


def _check_fitted(model, attr: str) -> None:
    if getattr(model, attr, None) is None:
        raise RuntimeError(f"{type(model).__name__} is not fitted")


class LinearRegressor:
    """Ordinary least squares, optionally ridge-regularized.

    Features are standardized internally (zero mean, unit variance) so the
    ridge penalty is scale-free and coefficients are comparable; reported
    ``coefficients`` are transformed back to input units.
    """

    def __init__(self, ridge: float = 0.0):
        if ridge < 0:
            raise ValueError("ridge penalty cannot be negative")
        self.ridge = ridge
        self.coefficients: np.ndarray | None = None
        self.intercept: float | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegressor":
        X, y = _check_xy(X, y)
        mu = X.mean(axis=0)
        sigma = X.std(axis=0)
        sigma[sigma == 0] = 1.0
        Xs = (X - mu) / sigma
        n, d = Xs.shape
        A = Xs.T @ Xs + self.ridge * np.eye(d)
        b = Xs.T @ (y - y.mean())
        beta_s = np.linalg.solve(A, b) if self.ridge > 0 else np.linalg.lstsq(A, b, rcond=None)[0]
        beta = beta_s / sigma
        self.coefficients = beta
        self.intercept = float(y.mean() - mu @ beta)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        _check_fitted(self, "coefficients")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.coefficients.shape[0]:
            raise ValueError("X has wrong shape for this model")
        return X @ self.coefficients + self.intercept

    def explain(self, feature_names: list[str] | None = None) -> str:
        """Human-readable coefficient listing — the interpretability story."""
        _check_fitted(self, "coefficients")
        names = feature_names or [f"x{i}" for i in range(self.coefficients.size)]
        if len(names) != self.coefficients.size:
            raise ValueError("feature_names length mismatch")
        parts = [f"{self.intercept:+.4g}"]
        for name, c in zip(names, self.coefficients):
            parts.append(f"{c:+.4g}*{name}")
        return "y = " + " ".join(parts)


class PolynomialRegressor:
    """OLS on a polynomial feature expansion (pure interaction monomials).

    Degree-2 on (a, b) expands to (a, b, a², ab, b²).  Ridge is passed to
    the underlying linear solve; expansions are standardized there.
    """

    def __init__(self, degree: int = 2, ridge: float = 1e-8):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self._linear = LinearRegressor(ridge=ridge)
        self._n_features: int | None = None

    def _expand(self, X: np.ndarray) -> np.ndarray:
        from itertools import combinations_with_replacement

        cols = [X]
        for d in range(2, self.degree + 1):
            for combo in combinations_with_replacement(range(X.shape[1]), d):
                cols.append(np.prod(X[:, combo], axis=1, keepdims=True))
        return np.hstack(cols)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PolynomialRegressor":
        X, y = _check_xy(X, y)
        self._n_features = X.shape[1]
        self._linear.fit(self._expand(X), y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        _check_fitted(self, "_n_features")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError("X has wrong shape for this model")
        return self._linear.predict(self._expand(X))


class KNNRegressor:
    """k-nearest-neighbour regression with z-scored distances."""

    def __init__(self, k: int = 5):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNRegressor":
        X, y = _check_xy(X, y)
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        self._X = (X - self._mu) / self._sigma
        self._y = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        _check_fitted(self, "_X")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._X.shape[1]:
            raise ValueError("X has wrong shape for this model")
        Xs = (X - self._mu) / self._sigma
        k = min(self.k, self._X.shape[0])
        out = np.empty(Xs.shape[0])
        for i, row in enumerate(Xs):
            d2 = np.sum((self._X - row) ** 2, axis=1)
            nearest = np.argpartition(d2, k - 1)[:k]
            out[i] = float(self._y[nearest].mean())
        return out


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splits."""

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 2,
                 max_features: int | None = None, seed: int = 0):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self._root: _TreeNode | None = None
        self._n_features: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = _check_xy(X, y)
        self._n_features = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf or np.ptp(y) == 0:
            return node
        n_feat = X.shape[1]
        if self.max_features is not None and self.max_features < n_feat:
            candidates = self._rng.choice(n_feat, size=self.max_features, replace=False)
        else:
            candidates = np.arange(n_feat)
        best = (np.inf, -1, 0.0)  # (weighted sse, feature, threshold)
        for f in candidates:
            order = np.argsort(X[:, f], kind="stable")
            xs, ys = X[order, f], y[order]
            # candidate splits between distinct consecutive values
            distinct = np.nonzero(np.diff(xs))[0]
            for idx in distinct:
                n_left = idx + 1
                if n_left < self.min_samples_leaf or y.size - n_left < self.min_samples_leaf:
                    continue
                left, right = ys[:n_left], ys[n_left:]
                sse = (np.sum((left - left.mean()) ** 2)
                       + np.sum((right - right.mean()) ** 2))
                if sse < best[0]:
                    best = (sse, int(f), float((xs[idx] + xs[idx + 1]) / 2))
        if best[1] < 0:
            return node
        _, f, thr = best
        mask = X[:, f] <= thr
        node.feature, node.threshold = f, thr
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        _check_fitted(self, "_root")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError("X has wrong shape for this model")
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        _check_fitted(self, "_root")

        def walk(node: _TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)


class RandomForestRegressor:
    """Bagged CART trees with feature subsampling.

    The "black-box" end of assignment 3's interpretability spectrum:
    typically the most accurate on data-dependent kernels like SpMV, but
    its reasoning is opaque — exactly the trade-off students must discuss.
    """

    def __init__(self, n_trees: int = 30, max_depth: int = 10,
                 min_samples_leaf: int = 2, max_features: int | None = None,
                 seed: int = 0):
        if n_trees < 1:
            raise ValueError("need at least one tree")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X, y = _check_xy(X, y)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, X.shape[1] // 3 + 1)
        self._trees = []
        for t in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed + 1 + t,
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        _check_fitted(self, "_trees")
        preds = np.stack([tree.predict(X) for tree in self._trees])
        return preds.mean(axis=0)
