"""Batch-job scheduling — the DAS-5/SLURM substrate, simulated.

The course runs assignments on DAS-5 "featuring job isolation and dedicated
hardware resources via a SLURM-based scheduler"; queueing theory is on the
syllabus because shared clusters *are* queueing systems.  This module
simulates the cluster scheduler itself: rigid parallel jobs over a fixed
node pool, FCFS with and without EASY backfilling, and the standard batch
metrics (wait, bounded slowdown, utilization).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["Job", "ScheduledJob", "BatchResult", "simulate_batch",
           "random_workload"]


@dataclass(frozen=True)
class Job:
    """One rigid batch job.

    ``walltime`` is the user's (over-)estimate used by backfilling;
    ``runtime`` is what the job actually takes (runtime <= walltime).
    """

    job_id: int
    submit: float
    nodes: int
    runtime: float
    walltime: float

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("jobs need at least one node")
        if self.submit < 0 or self.runtime <= 0:
            raise ValueError("invalid job times")
        if self.walltime < self.runtime:
            raise ValueError("walltime must cover the actual runtime")


@dataclass(frozen=True)
class ScheduledJob:
    """A job with its scheduling outcome."""

    job: Job
    start: float

    @property
    def end(self) -> float:
        return self.start + self.job.runtime

    @property
    def wait(self) -> float:
        return self.start - self.job.submit

    def bounded_slowdown(self, tau: float = 10.0) -> float:
        """(wait + runtime) / max(runtime, tau): the standard metric."""
        return (self.wait + self.job.runtime) / max(self.job.runtime, tau)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one scheduling simulation."""

    policy: str
    total_nodes: int
    jobs: tuple[ScheduledJob, ...]

    @property
    def makespan(self) -> float:
        return max(j.end for j in self.jobs)

    @property
    def mean_wait(self) -> float:
        return float(np.mean([j.wait for j in self.jobs]))

    @property
    def mean_bounded_slowdown(self) -> float:
        return float(np.mean([j.bounded_slowdown() for j in self.jobs]))

    @property
    def utilization(self) -> float:
        """Node-seconds of work over node-seconds of makespan."""
        busy = sum(j.job.nodes * j.job.runtime for j in self.jobs)
        return busy / (self.total_nodes * self.makespan)

    def report(self) -> str:
        return (f"{self.policy}: makespan={self.makespan:.0f}s "
                f"wait={self.mean_wait:.0f}s "
                f"slowdown={self.mean_bounded_slowdown:.2f} "
                f"util={self.utilization:.1%}")


def simulate_batch(jobs: list[Job], total_nodes: int,
                   policy: str = "fcfs") -> BatchResult:
    """Simulate a rigid-job schedule.

    Policies:

    * ``fcfs`` — strict submission order; the head-of-line job blocks
      everything behind it until enough nodes free up.
    * ``easy-backfill`` — FCFS plus EASY backfilling: a later job may jump
      ahead iff (using its *walltime*) it cannot delay the reserved start
      of the head job.
    """
    if total_nodes < 1:
        raise ValueError("cluster needs at least one node")
    if not jobs:
        raise ValueError("no jobs to schedule")
    for job in jobs:
        if job.nodes > total_nodes:
            raise ValueError(f"job {job.job_id} needs more nodes than exist")
    if policy not in ("fcfs", "easy-backfill"):
        raise ValueError(f"unknown policy {policy!r}")

    queue = sorted(jobs, key=lambda j: (j.submit, j.job_id))
    # running jobs as (end_time, nodes) heap; walltime-based shadow heap
    # for backfill reservations
    running: list[tuple[float, float, int]] = []  # (end, walltime_end, nodes)
    free = total_nodes
    clock = 0.0
    scheduled: list[ScheduledJob] = []
    pending: list[Job] = []
    i = 0

    def release_until(t: float) -> None:
        nonlocal free
        while running and running[0][0] <= t:
            _, _, n = heapq.heappop(running)
            free += n

    def start_job(job: Job, t: float) -> None:
        nonlocal free
        free -= job.nodes
        heapq.heappush(running, (t + job.runtime, t + job.walltime, job.nodes))
        scheduled.append(ScheduledJob(job, t))

    while i < len(queue) or pending:
        # admit all submissions up to the clock
        while i < len(queue) and queue[i].submit <= clock:
            pending.append(queue[i])
            i += 1
        release_until(clock)

        progressed = False
        if pending:
            head = pending[0]
            if head.nodes <= free:
                start_job(head, max(clock, head.submit))
                pending.pop(0)
                progressed = True
            elif policy == "easy-backfill" and len(pending) > 1:
                # reserve the head job's start: earliest time enough nodes
                # free up assuming running jobs end at their *walltime*
                ends = sorted(running, key=lambda r: r[1])
                avail = free
                shadow_start = clock
                for _end, wall_end, n in ends:
                    if avail >= head.nodes:
                        break
                    avail += n
                    shadow_start = wall_end
                shadow_free_after = avail - head.nodes
                for k, job in enumerate(pending[1:], start=1):
                    fits_now = job.nodes <= free
                    # cannot delay the reservation: either finishes (by
                    # walltime) before the shadow start, or fits in the
                    # nodes left over at the shadow start
                    harmless = (clock + job.walltime <= shadow_start
                                or job.nodes <= min(free, shadow_free_after))
                    if fits_now and harmless:
                        start_job(job, clock)
                        pending.pop(k)
                        progressed = True
                        break
        if progressed:
            continue
        # advance time: next job end or next submission
        times = []
        if running:
            times.append(running[0][0])
        if i < len(queue):
            times.append(queue[i].submit)
        if not times:
            break
        clock = max(clock, min(times))

    scheduled.sort(key=lambda s: s.job.job_id)
    return BatchResult(policy=policy, total_nodes=total_nodes,
                       jobs=tuple(scheduled))


def random_workload(n_jobs: int, total_nodes: int, load: float = 0.7,
                    seed: int = 0, overestimate: float = 2.0) -> list[Job]:
    """A synthetic Feitelson-flavoured workload.

    Power-of-two-biased node counts, lognormal runtimes, Poisson arrivals
    tuned so offered load ≈ ``load`` of the cluster, walltimes a constant
    factor above runtimes (users overestimate).
    """
    if n_jobs < 1:
        raise ValueError("need at least one job")
    if not 0 < load < 1.5:
        raise ValueError("load must be in (0, 1.5)")
    if overestimate < 1.0:
        raise ValueError("walltime factor must be >= 1")
    rng = np.random.default_rng(seed)
    sizes = 2 ** rng.integers(0, max(1, int(np.log2(total_nodes))), n_jobs)
    sizes = np.minimum(sizes, total_nodes)
    runtimes = rng.lognormal(mean=5.0, sigma=1.0, size=n_jobs)  # ~minutes
    mean_work = float(np.mean(sizes * runtimes))
    interarrival = mean_work / (load * total_nodes)
    submits = np.cumsum(rng.exponential(interarrival, n_jobs))
    return [
        Job(job_id=i, submit=float(submits[i]), nodes=int(sizes[i]),
            runtime=float(runtimes[i]),
            walltime=float(runtimes[i]) * overestimate)
        for i in range(n_jobs)
    ]
