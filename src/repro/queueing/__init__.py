"""Queueing theory: analytical models, DES, and batch scheduling."""

from .batch import (
    BatchResult,
    Job,
    ScheduledJob,
    random_workload,
    simulate_batch,
)
from .des import (
    QueueSimResult,
    deterministic,
    exponential,
    hyperexponential,
    simulate_queue,
)
from .models import (
    QueueMetrics,
    capacity_for,
    erlang_c,
    littles_law_check,
    mg1,
    mm1,
    mmc,
)

__all__ = [
    "QueueMetrics",
    "mm1",
    "mmc",
    "mg1",
    "erlang_c",
    "capacity_for",
    "littles_law_check",
    "QueueSimResult",
    "simulate_queue",
    "exponential",
    "deterministic",
    "hyperexponential",
    "Job",
    "ScheduledJob",
    "BatchResult",
    "simulate_batch",
    "random_workload",
]
