"""Analytical queueing models: M/M/1, M/M/c, M/G/1.

"Queuing theory" is a lecture topic (Table 1, mapped to the modeling
objectives): servers, interconnects, and I/O systems under load are
queueing systems, and students should predict waiting times from arrival
and service rates.  Formulas are the classical steady-state results;
:mod:`repro.queueing.des` cross-validates every one of them by simulation.

Notation: arrival rate λ (lambda_), service rate μ (mu) per server,
utilization ρ = λ/(c·μ); L/W are counts/times in system, Lq/Wq in queue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["QueueMetrics", "mm1", "mmc", "mg1", "erlang_c", "littles_law_check"]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state metrics of a queueing system."""

    utilization: float
    mean_in_system: float      # L
    mean_in_queue: float       # Lq
    mean_time_in_system: float  # W
    mean_wait: float           # Wq
    prob_wait: float           # P(arrival must queue)

    def report(self) -> str:
        return (f"rho={self.utilization:.3f} L={self.mean_in_system:.3f} "
                f"Lq={self.mean_in_queue:.3f} W={self.mean_time_in_system:.4g}s "
                f"Wq={self.mean_wait:.4g}s P(wait)={self.prob_wait:.3f}")


def _check_rates(lambda_: float, mu: float, servers: int = 1) -> float:
    if lambda_ <= 0 or mu <= 0:
        raise ValueError("rates must be positive")
    if servers < 1:
        raise ValueError("need at least one server")
    rho = lambda_ / (servers * mu)
    if rho >= 1:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho


def mm1(lambda_: float, mu: float) -> QueueMetrics:
    """M/M/1: Poisson arrivals, exponential service, one server."""
    rho = _check_rates(lambda_, mu)
    L = rho / (1 - rho)
    Lq = rho * rho / (1 - rho)
    W = 1.0 / (mu - lambda_)
    Wq = rho / (mu - lambda_)
    return QueueMetrics(rho, L, Lq, W, Wq, prob_wait=rho)


def erlang_c(lambda_: float, mu: float, servers: int) -> float:
    """Erlang-C: probability an arrival waits in an M/M/c queue."""
    rho = _check_rates(lambda_, mu, servers)
    a = lambda_ / mu  # offered load
    # numerically stable iterative Erlang-B, then convert to C
    b = 1.0
    for k in range(1, servers + 1):
        b = a * b / (k + a * b)
    return b / (1 - rho * (1 - b))


def mmc(lambda_: float, mu: float, servers: int) -> QueueMetrics:
    """M/M/c: Poisson arrivals, exponential service, c servers."""
    rho = _check_rates(lambda_, mu, servers)
    pw = erlang_c(lambda_, mu, servers)
    Lq = pw * rho / (1 - rho)
    Wq = Lq / lambda_
    W = Wq + 1.0 / mu
    L = lambda_ * W
    return QueueMetrics(rho, L, Lq, W, Wq, prob_wait=pw)


def mg1(lambda_: float, mu: float, service_cv2: float) -> QueueMetrics:
    """M/G/1 via Pollaczek–Khinchine.

    ``service_cv2`` is the squared coefficient of variation of service
    time: 1 reduces to M/M/1, 0 is deterministic service (M/D/1, half the
    M/M/1 queue), >1 models heavy-tailed service — the lecture's
    "variability costs you" punchline.
    """
    if service_cv2 < 0:
        raise ValueError("squared CV cannot be negative")
    rho = _check_rates(lambda_, mu)
    Lq = rho * rho * (1 + service_cv2) / (2 * (1 - rho))
    Wq = Lq / lambda_
    W = Wq + 1.0 / mu
    L = lambda_ * W
    return QueueMetrics(rho, L, Lq, W, Wq, prob_wait=rho)


def littles_law_check(arrival_rate: float, mean_in_system: float,
                      mean_time_in_system: float, tolerance: float = 0.05) -> bool:
    """Does L = λ·W hold within tolerance?

    The consistency check every queueing measurement must pass before
    being trusted — applied to both the formulas and the simulator.
    """
    if arrival_rate <= 0 or mean_time_in_system <= 0:
        raise ValueError("rate and time must be positive")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    expected = arrival_rate * mean_time_in_system
    if expected == 0:
        return mean_in_system == 0
    return abs(mean_in_system - expected) / expected <= tolerance
