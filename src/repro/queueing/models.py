"""Analytical queueing models: M/M/1, M/M/c, M/G/1.

"Queuing theory" is a lecture topic (Table 1, mapped to the modeling
objectives): servers, interconnects, and I/O systems under load are
queueing systems, and students should predict waiting times from arrival
and service rates.  Formulas are the classical steady-state results;
:mod:`repro.queueing.des` cross-validates every one of them by simulation.

Notation: arrival rate λ (lambda_), service rate μ (mu) per server,
utilization ρ = λ/(c·μ); L/W are counts/times in system, Lq/Wq in queue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["QueueMetrics", "mm1", "mmc", "mg1", "erlang_c", "littles_law_check",
           "capacity_for"]


@dataclass(frozen=True)
class QueueMetrics:
    """Steady-state metrics of a queueing system.

    ``stable`` is ``False`` for an overloaded system (ρ ≥ 1) evaluated
    with ``allow_unstable=True``: there is no steady state, so every
    queue length and waiting time is infinite — exactly the answer an
    admission controller needs ("without shedding, the queue diverges"),
    reported as data instead of an exception.
    """

    utilization: float
    mean_in_system: float      # L
    mean_in_queue: float       # Lq
    mean_time_in_system: float  # W
    mean_wait: float           # Wq
    prob_wait: float           # P(arrival must queue)
    stable: bool = True

    def report(self) -> str:
        tag = "" if self.stable else " UNSTABLE"
        return (f"rho={self.utilization:.3f} L={self.mean_in_system:.3f} "
                f"Lq={self.mean_in_queue:.3f} W={self.mean_time_in_system:.4g}s "
                f"Wq={self.mean_wait:.4g}s P(wait)={self.prob_wait:.3f}{tag}")


def _overloaded(rho: float) -> QueueMetrics:
    inf = math.inf
    return QueueMetrics(rho, inf, inf, inf, inf, prob_wait=1.0, stable=False)


def _check_rates(lambda_: float, mu: float, servers: int = 1,
                 allow_unstable: bool = False) -> float:
    if lambda_ <= 0 or mu <= 0:
        raise ValueError("rates must be positive")
    if servers < 1:
        raise ValueError("need at least one server")
    rho = lambda_ / (servers * mu)
    if rho >= 1 and not allow_unstable:
        raise ValueError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho


def mm1(lambda_: float, mu: float, allow_unstable: bool = False) -> QueueMetrics:
    """M/M/1: Poisson arrivals, exponential service, one server."""
    rho = _check_rates(lambda_, mu, allow_unstable=allow_unstable)
    if rho >= 1:
        return _overloaded(rho)
    L = rho / (1 - rho)
    Lq = rho * rho / (1 - rho)
    W = 1.0 / (mu - lambda_)
    Wq = rho / (mu - lambda_)
    return QueueMetrics(rho, L, Lq, W, Wq, prob_wait=rho)


def erlang_c(lambda_: float, mu: float, servers: int,
             allow_unstable: bool = False) -> float:
    """Erlang-C: probability an arrival waits in an M/M/c queue."""
    rho = _check_rates(lambda_, mu, servers, allow_unstable=allow_unstable)
    if rho >= 1:
        return 1.0  # every arrival of a diverging queue waits
    a = lambda_ / mu  # offered load
    # numerically stable iterative Erlang-B, then convert to C
    b = 1.0
    for k in range(1, servers + 1):
        b = a * b / (k + a * b)
    return b / (1 - rho * (1 - b))


def mmc(lambda_: float, mu: float, servers: int,
        allow_unstable: bool = False) -> QueueMetrics:
    """M/M/c: Poisson arrivals, exponential service, c servers."""
    rho = _check_rates(lambda_, mu, servers, allow_unstable=allow_unstable)
    if rho >= 1:
        return _overloaded(rho)
    pw = erlang_c(lambda_, mu, servers)
    Lq = pw * rho / (1 - rho)
    Wq = Lq / lambda_
    W = Wq + 1.0 / mu
    L = lambda_ * W
    return QueueMetrics(rho, L, Lq, W, Wq, prob_wait=pw)


def capacity_for(lambda_: float, mu: float, target_wait: float | None = None,
                 max_utilization: float = 0.95, max_servers: int = 4096) -> int:
    """Fewest M/M/c servers keeping the queue stable and responsive.

    The planning question an admission controller actually asks: given
    offered load λ and per-server rate μ, how many workers until the
    system is stable (ρ ≤ ``max_utilization`` < 1) *and* the mean queueing
    delay Wq is at most ``target_wait`` (when given)?  Capacity planning
    as a function call instead of catching ``ValueError`` from :func:`mmc`
    in a loop.
    """
    if target_wait is not None and target_wait <= 0:
        raise ValueError("target_wait must be positive")
    if not 0 < max_utilization < 1:
        raise ValueError("max_utilization must be in (0, 1)")
    _check_rates(lambda_, mu, allow_unstable=True)  # validate rates only
    for servers in range(1, max_servers + 1):
        rho = lambda_ / (servers * mu)
        if rho > max_utilization:
            continue
        if target_wait is None or mmc(lambda_, mu, servers).mean_wait <= target_wait:
            return servers
    raise ValueError(
        f"no server count up to {max_servers} meets the target "
        f"(lambda={lambda_}, mu={mu}, target_wait={target_wait})")


def mg1(lambda_: float, mu: float, service_cv2: float) -> QueueMetrics:
    """M/G/1 via Pollaczek–Khinchine.

    ``service_cv2`` is the squared coefficient of variation of service
    time: 1 reduces to M/M/1, 0 is deterministic service (M/D/1, half the
    M/M/1 queue), >1 models heavy-tailed service — the lecture's
    "variability costs you" punchline.
    """
    if service_cv2 < 0:
        raise ValueError("squared CV cannot be negative")
    rho = _check_rates(lambda_, mu)
    Lq = rho * rho * (1 + service_cv2) / (2 * (1 - rho))
    Wq = Lq / lambda_
    W = Wq + 1.0 / mu
    L = lambda_ * W
    return QueueMetrics(rho, L, Lq, W, Wq, prob_wait=rho)


def littles_law_check(arrival_rate: float, mean_in_system: float,
                      mean_time_in_system: float, tolerance: float = 0.05) -> bool:
    """Does L = λ·W hold within tolerance?

    The consistency check every queueing measurement must pass before
    being trusted — applied to both the formulas and the simulator.
    """
    if arrival_rate <= 0 or mean_time_in_system <= 0:
        raise ValueError("rate and time must be positive")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    expected = arrival_rate * mean_time_in_system
    if expected == 0:
        return mean_in_system == 0
    return abs(mean_in_system - expected) / expected <= tolerance
