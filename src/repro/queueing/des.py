"""Discrete-event simulation of G/G/c queues.

The simulation half of the queueing lecture: generate arrivals and service
demands from configurable distributions, run a c-server FCFS station, and
compare the measured L/W/Lq/Wq against the analytical models — including
the cases (G/G/c) where no closed form exists.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["QueueSimResult", "simulate_queue", "exponential", "deterministic",
           "hyperexponential"]


def exponential(rate: float, seed: int = 0) -> Callable[[], float]:
    """Exponential inter-event times with the given rate."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    return lambda: float(rng.exponential(1.0 / rate))


def deterministic(rate: float) -> Callable[[], float]:
    """Constant inter-event times (CV = 0)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    value = 1.0 / rate
    return lambda: value


def hyperexponential(rate: float, cv2: float = 4.0, seed: int = 0) -> Callable[[], float]:
    """Two-phase hyperexponential with mean 1/rate and squared CV ``cv2``.

    Balanced-means H2 fit: models bursty service (cv2 > 1).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if cv2 <= 1:
        raise ValueError("hyperexponential needs cv2 > 1")
    rng = np.random.default_rng(seed)
    p = 0.5 * (1 + np.sqrt((cv2 - 1) / (cv2 + 1)))
    mean = 1.0 / rate
    mu1 = 2 * p / mean
    mu2 = 2 * (1 - p) / mean

    def draw() -> float:
        if rng.random() < p:
            return float(rng.exponential(1.0 / mu1))
        return float(rng.exponential(1.0 / mu2))

    return draw


@dataclass(frozen=True)
class QueueSimResult:
    """Measured steady-state estimates from one simulation run."""

    customers: int
    utilization: float
    mean_in_system: float
    mean_in_queue: float
    mean_time_in_system: float
    mean_wait: float
    prob_wait: float

    def report(self) -> str:
        return (f"n={self.customers} rho={self.utilization:.3f} "
                f"L={self.mean_in_system:.3f} Lq={self.mean_in_queue:.3f} "
                f"W={self.mean_time_in_system:.4g}s Wq={self.mean_wait:.4g}s")


def simulate_queue(interarrival: Callable[[], float],
                   service: Callable[[], float],
                   servers: int = 1,
                   customers: int = 50_000,
                   warmup: int = 1_000) -> QueueSimResult:
    """FCFS c-server station; returns measured steady-state metrics.

    ``warmup`` initial customers are simulated but excluded from the
    statistics (transient removal, as the lecture prescribes).
    """
    if servers < 1:
        raise ValueError("need at least one server")
    if customers <= warmup:
        raise ValueError("need more customers than warmup")
    if warmup < 0:
        raise ValueError("warmup cannot be negative")

    # server availability times as a min-heap
    free_at = [0.0] * servers
    heapq.heapify(free_at)

    arrivals = np.empty(customers)
    starts = np.empty(customers)
    finishes = np.empty(customers)
    t = 0.0
    for i in range(customers):
        t += interarrival()
        arrivals[i] = t
        available = heapq.heappop(free_at)
        start = max(t, available)
        dur = service()
        if dur < 0:
            raise ValueError("service draw was negative")
        end = start + dur
        heapq.heappush(free_at, end)
        starts[i] = start
        finishes[i] = end

    a = arrivals[warmup:]
    s = starts[warmup:]
    f = finishes[warmup:]
    horizon = f.max() - a.min()
    if horizon <= 0:
        raise ValueError("degenerate simulation horizon")
    waits = s - a
    sojourns = f - a
    busy = float(np.sum(f - s))
    lam = a.size / (a[-1] - a[0]) if a[-1] > a[0] else 0.0
    return QueueSimResult(
        customers=int(a.size),
        utilization=busy / (servers * horizon),
        mean_in_system=lam * float(sojourns.mean()),   # Little's law estimator
        mean_in_queue=lam * float(waits.mean()),
        mean_time_in_system=float(sojourns.mean()),
        mean_wait=float(waits.mean()),
        prob_wait=float(np.mean(waits > 1e-12)),
    )
