"""Figure 2: the artifact dependency graph.

The appendix's Figure 2 shows how the paper's artifacts depend on each
other: DATA-1 → SW-2 → Figure 1 → paper; DATA-2 → SW-3 → Table 2 → paper;
SW-1/DOC-1/DOC-2 feed the paper directly.  We model the graph with
networkx, preserving the figure's availability classes (solid = provided
as-is, dashed = deterministically reproducible, dotted = on request) and
provide the queries a reproducibility auditor needs: topological build
order, reachability of every figure from provided inputs, and validation.
"""

from __future__ import annotations

import networkx as nx

__all__ = [
    "AVAILABILITY",
    "artifact_graph",
    "reproduction_order",
    "inputs_for",
    "validate_graph",
    "figure2_text",
]

#: node -> availability class (Figure 2's border styles).
AVAILABILITY = {
    "DATA-1": "as-is",
    "DATA-2": "as-is",
    "SW-1": "as-is",
    "SW-2": "as-is",
    "SW-3": "as-is",
    "DOC-1": "as-is",
    "DOC-2": "as-is",
    "Figure 1": "reproducible",
    "Table 2": "reproducible",
    "LaTeX Paper": "on-request",
}

#: what this repository implements for each artifact node.
IMPLEMENTATION = {
    "DATA-1": "repro.course.data.STUDENTS / students_csv",
    "DATA-2": "repro.course.data.METRICS_2A/2B / metrics_csv",
    "SW-1": "repro.kernels (assignment framework kernels)",
    "SW-2": "repro.course.figures.figure1_series/figure1_text",
    "SW-3": "repro.course.figures.table2a_rows/table2b_rows/table2_text",
    "DOC-1": "lecture topics: repro.course.curriculum.TOPICS",
    "DOC-2": "assignment pipelines: examples/assignment*.py",
    "Figure 1": "benchmarks/test_bench_figure1.py",
    "Table 2": "benchmarks/test_bench_table2.py",
    "LaTeX Paper": "EXPERIMENTS.md (paper-vs-measured record)",
}


def artifact_graph() -> nx.DiGraph:
    """Figure 2 as a directed graph (edge = 'is input to')."""
    g = nx.DiGraph()
    for node, avail in AVAILABILITY.items():
        g.add_node(node, availability=avail,
                   implementation=IMPLEMENTATION[node])
    g.add_edge("DATA-1", "SW-2")
    g.add_edge("DATA-2", "SW-3")
    g.add_edge("SW-2", "Figure 1")
    g.add_edge("SW-3", "Table 2")
    g.add_edge("Figure 1", "LaTeX Paper")
    g.add_edge("Table 2", "LaTeX Paper")
    g.add_edge("SW-1", "DOC-2")
    g.add_edge("DOC-1", "LaTeX Paper")
    g.add_edge("DOC-2", "LaTeX Paper")
    return g


def reproduction_order() -> list[str]:
    """A topological order in which the artifacts can be rebuilt."""
    return list(nx.topological_sort(artifact_graph()))


def inputs_for(artifact: str) -> set[str]:
    """All transitive inputs needed to rebuild one artifact."""
    g = artifact_graph()
    if artifact not in g:
        raise KeyError(f"unknown artifact {artifact!r}")
    return set(nx.ancestors(g, artifact))


def validate_graph() -> list[str]:
    """Reproducibility audit; returns a list of violations (empty = sound).

    Checks: the graph is a DAG; every 'reproducible' artifact depends only
    on provided ('as-is') or reproducible inputs; the two data-driven
    artifacts depend on exactly the inputs Figure 2 shows.
    """
    g = artifact_graph()
    problems = []
    if not nx.is_directed_acyclic_graph(g):
        problems.append("artifact graph contains a cycle")
    for node, data in g.nodes(data=True):
        if data["availability"] == "reproducible":
            for anc in nx.ancestors(g, node):
                if g.nodes[anc]["availability"] == "on-request":
                    problems.append(
                        f"{node} is claimed reproducible but needs {anc} (on request)")
    if inputs_for("Figure 1") != {"DATA-1", "SW-2"}:
        problems.append("Figure 1 inputs do not match the paper's Figure 2")
    if inputs_for("Table 2") != {"DATA-2", "SW-3"}:
        problems.append("Table 2 inputs do not match the paper's Figure 2")
    return problems


def figure2_text() -> str:
    """Text rendering of Figure 2 with availability classes."""
    g = artifact_graph()
    marks = {"as-is": "[solid]", "reproducible": "[dashed]", "on-request": "[dotted]"}
    lines = ["Figure 2: artifact dependency graph (edge: input -> output)"]
    for node in reproduction_order():
        avail = marks[g.nodes[node]["availability"]]
        outputs = sorted(g.successors(node))
        arrow = " -> " + ", ".join(outputs) if outputs else ""
        lines.append(f"  {node:12s} {avail:10s}{arrow}")
    return "\n".join(lines)
