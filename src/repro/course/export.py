"""Write the paper's artifact tree to disk.

The artifact appendix describes a repository layout (``data/students.csv``,
``data/metrics.csv``, script outputs).  :func:`export_artifacts` materializes
our reproduction of that layout so it can be diffed, archived, or handed to
an artifact-evaluation committee.

Also runnable as a module::

    python -m repro.course.export /tmp/artifacts
"""

from __future__ import annotations

import sys
from pathlib import Path

from .artifacts import figure2_text, reproduction_order, validate_graph
from .data import metrics_csv, students_csv
from .figures import figure1_text, table1_text, table2_text

__all__ = ["export_artifacts"]


def export_artifacts(root: str | Path) -> dict[str, Path]:
    """Write every regenerable artifact under ``root``; returns the paths.

    Layout mirrors the paper's appendix:

    - ``data/students.csv``    DATA-1
    - ``data/metrics.csv``     DATA-2
    - ``figures/figure1.txt``  SW-2's output
    - ``figures/figure2.txt``  the dependency graph
    - ``tables/table1.txt``    the topic coverage matrix
    - ``tables/table2.txt``    SW-3's output
    - ``MANIFEST.txt``         reproduction order + audit result
    """
    root = Path(root)
    if root.exists() and not root.is_dir():
        raise NotADirectoryError(f"{root} exists and is not a directory")
    (root / "data").mkdir(parents=True, exist_ok=True)
    (root / "figures").mkdir(exist_ok=True)
    (root / "tables").mkdir(exist_ok=True)

    written: dict[str, Path] = {}

    def write(rel: str, text: str) -> None:
        path = root / rel
        path.write_text(text if text.endswith("\n") else text + "\n",
                        encoding="utf-8")
        written[rel] = path

    write("data/students.csv", students_csv())
    write("data/metrics.csv", metrics_csv())
    write("figures/figure1.txt", figure1_text())
    write("figures/figure2.txt", figure2_text())
    write("tables/table1.txt", table1_text())
    write("tables/table2.txt", table2_text())

    problems = validate_graph()
    manifest = ["artifact reproduction manifest",
                f"graph audit: {'sound' if not problems else problems}",
                "reproduction order:"]
    manifest += [f"  {i + 1}. {node}" for i, node in enumerate(reproduction_order())]
    manifest.append("files:")
    manifest += [f"  {rel}" for rel in sorted(written)]
    write("MANIFEST.txt", "\n".join(manifest))
    return written


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    target = args[0] if args else "artifacts"
    written = export_artifacts(target)
    print(f"wrote {len(written)} artifacts under {Path(target).resolve()}")
    for rel in sorted(written):
        print(f"  {rel}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    raise SystemExit(main())
