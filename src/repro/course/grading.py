"""The course grading scheme — Equations 1-3 of the paper, verbatim.

Dutch 1-10 grades, 5.5 passes.  Equation 1 composes the final grade from
project, assignments, and exam (+ quiz bonus); Equation 2 composes the
project grade; Equation 3 converts assignment points to a grade with a
team-size-dependent divisor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PASSING_GRADE",
    "ASSIGNMENT_POINTS",
    "final_grade",
    "project_grade",
    "assignments_grade",
    "team_divisor",
    "is_passing",
    "StudentOutcome",
    "simulate_cohort",
]

#: Minimum passing grade in the Dutch system (§4.4).
PASSING_GRADE = 5.5

#: Maximum points per assignment: 10, 9, 11, 12 for assignments 1-4 (§4.4).
ASSIGNMENT_POINTS = (10, 9, 11, 12)


def _check_grade(g: float, what: str) -> None:
    if not 1.0 <= g <= 10.0:
        raise ValueError(f"{what} must be a Dutch grade in [1, 10], got {g}")


def team_divisor(team_size: int) -> int:
    """Equation 3's divisor N: 32 / 36 / 40 for 1 / 2 / 3-4 students."""
    if team_size == 1:
        return 32
    if team_size == 2:
        return 36
    if team_size in (3, 4):
        return 40
    raise ValueError("teams have 1-4 students")


def assignments_grade(points: tuple[float, float, float, float],
                      team_size: int) -> float:
    """Equation 3: G_A = 10 · Σ q_i / N.

    ``points`` are the points earned on assignments 1-4 (capped at 10, 9,
    11, 12 respectively).  Note the deliberate slack: a full score of 42
    points against N=40 (teams of 3-4) exceeds a 10 before clamping —
    that is the paper's design, the clamp happens in Equation 1.
    """
    if len(points) != 4:
        raise ValueError("need exactly four assignment scores")
    for earned, maximum in zip(points, ASSIGNMENT_POINTS):
        if not 0 <= earned <= maximum:
            raise ValueError(f"assignment points {earned} outside [0, {maximum}]")
    return 10.0 * sum(points) / team_divisor(team_size)


def project_grade(project: float, report: float, presentations: float) -> float:
    """Equation 2: G_P = 0.4·G_P^p + 0.3·G_P^r + 0.3·G_P^t."""
    _check_grade(project, "project grade")
    _check_grade(report, "report grade")
    _check_grade(presentations, "presentation grade")
    return 0.4 * project + 0.3 * report + 0.3 * presentations


def final_grade(project: float, assignments: float, exam: float,
                quiz_points: float = 0.0) -> float:
    """Equation 1: G = max(1, min(10, 0.5·G_P + 0.3·G_A + 0.3·(G_E + S_Q/70))).

    The quiz score S_Q acts as a bonus folded into the exam term; the
    0.5+0.3+0.3 > 1 weighting is intentional slack (§4.4) — students can
    compensate between theory and practice, clamped at 10.
    """
    _check_grade(project, "project grade")
    # Equation 3 can exceed 10: a solo student with full marks scores
    # 10*42/32 = 13.125 before Equation 1 clamps the total.
    if not 0.0 <= assignments <= 10.0 * sum(ASSIGNMENT_POINTS) / team_divisor(1):
        raise ValueError(f"assignments grade out of range: {assignments}")
    _check_grade(exam, "exam grade")
    if quiz_points < 0:
        raise ValueError("quiz points cannot be negative")
    raw = 0.5 * project + 0.3 * assignments + 0.3 * (exam + quiz_points / 70.0)
    return max(1.0, min(10.0, raw))


def is_passing(grade: float) -> bool:
    """A grade of 5.5 or higher passes (§4.4)."""
    _check_grade(grade, "grade")
    return grade >= PASSING_GRADE


@dataclass(frozen=True)
class StudentOutcome:
    """One simulated student's component and final grades."""

    project: float
    assignments: float
    exam: float
    quiz_points: float
    final: float

    @property
    def passed(self) -> bool:
        return self.final >= PASSING_GRADE


def simulate_cohort(n_students: int, seed: int = 0,
                    project_mean: float = 8.0, assignments_mean: float = 8.0,
                    exam_mean: float = 7.5, spread: float = 1.0,
                    team_size: int = 2) -> list[StudentOutcome]:
    """Draw a synthetic cohort matching §5.1's reported averages.

    Component grades are truncated normals around the paper's means
    (projects 8, assignments ~8, exam ~7.5); assignment points are drawn
    per assignment so Equation 3's team divisor applies as in reality.
    Used by the §5.1 benchmark to show the grading scheme reproduces the
    "passing students average 8" narrative.
    """
    if n_students < 1:
        raise ValueError("need at least one student")
    if spread <= 0:
        raise ValueError("spread must be positive")
    rng = np.random.default_rng(seed)

    def draw(mean: float, lo: float = 1.0, hi: float = 10.0) -> float:
        return float(np.clip(rng.normal(mean, spread), lo, hi))

    divisor = team_divisor(team_size)
    total_max = sum(ASSIGNMENT_POINTS)
    out = []
    for _ in range(n_students):
        g_proj = project_grade(draw(project_mean), draw(project_mean - 0.5),
                               draw(project_mean))
        # draw the target assignments *grade*, then back out the points via
        # Equation 3 so the simulated grade distribution matches the paper's
        target_grade = float(np.clip(rng.normal(assignments_mean, spread),
                                     1.0, 10.0))
        total_points = min(target_grade * divisor / 10.0, float(total_max))
        share = total_points / total_max
        pts = tuple(float(np.clip(rng.normal(share * p, 0.05 * p), 0, p))
                    for p in ASSIGNMENT_POINTS)
        g_asg = assignments_grade(pts, team_size)
        g_exam = draw(exam_mean)
        quiz = float(np.clip(rng.normal(40, 15), 0, 70))
        final = final_grade(g_proj, g_asg, g_exam, quiz)
        out.append(StudentOutcome(g_proj, g_asg, g_exam, quiz, final))
    return out
