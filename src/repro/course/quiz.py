"""In-class quizzes — the S_Q term of Equation 1, generated from the models.

§4.4/§5.1: in-class quizzes award up to 70 points that enter the final
grade as a bonus (Eq. 1's ``S_Q/70`` term), and "clearly help with good
performance in the exam".  The paper also admits they "take a long time to
create and grade" — which this module automates: every question is
generated from the library's own models (machine specs, Amdahl, queueing,
Roofline), so the correct answer is computed, not transcribed, and grading
is mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytical.laws import amdahl_speedup
from ..machine.presets import generic_server_cpu
from ..machine.specs import CPUSpec
from ..queueing.models import mm1

__all__ = ["QuizQuestion", "Quiz", "generate_quiz", "MAX_QUIZ_POINTS"]

#: Equation 1 scales S_Q by 70 — the maximum quiz score of a course run.
MAX_QUIZ_POINTS = 70.0


@dataclass(frozen=True)
class QuizQuestion:
    """One numeric quiz question with its model-computed answer."""

    topic: str
    prompt: str
    answer: float
    unit: str
    points: float
    tolerance: float = 0.05  # relative

    def __post_init__(self) -> None:
        if self.points <= 0:
            raise ValueError("questions must be worth points")
        if not 0 < self.tolerance < 1:
            raise ValueError("tolerance must be a fraction in (0, 1)")

    def grade(self, response: float) -> float:
        """Points awarded: full marks within tolerance, zero outside."""
        if self.answer == 0:
            return self.points if abs(response) < 1e-12 else 0.0
        rel = abs(response - self.answer) / abs(self.answer)
        return self.points if rel <= self.tolerance else 0.0


@dataclass(frozen=True)
class Quiz:
    """A generated quiz: questions summing to ``total_points``."""

    questions: tuple[QuizQuestion, ...]

    @property
    def total_points(self) -> float:
        return sum(q.points for q in self.questions)

    def grade(self, responses: list[float]) -> float:
        """Total points for a response vector (one number per question)."""
        if len(responses) != len(self.questions):
            raise ValueError(
                f"expected {len(self.questions)} responses, got {len(responses)}")
        return sum(q.grade(r) for q, r in zip(self.questions, responses))

    def answer_key(self) -> list[float]:
        return [q.answer for q in self.questions]

    def render(self) -> str:
        lines = [f"quiz ({self.total_points:.0f} points):"]
        for i, q in enumerate(self.questions, 1):
            lines.append(f"  {i}. [{q.topic}, {q.points:.0f}p] {q.prompt} "
                         f"[{q.unit}]")
        return "\n".join(lines)


def _q_ridge(cpu: CPUSpec, rng: np.random.Generator) -> QuizQuestion:
    return QuizQuestion(
        topic="roofline",
        prompt=(f"A machine peaks at {cpu.peak_flops() / 1e9:.0f} GFLOP/s with "
                f"{cpu.stream_bandwidth / 1e9:.0f} GB/s sustainable bandwidth. "
                f"What is its ridge point?"),
        answer=cpu.ridge_point(),
        unit="FLOP/byte",
        points=10.0,
    )


def _q_attainable(cpu: CPUSpec, rng: np.random.Generator) -> QuizQuestion:
    intensity = float(rng.choice([0.125, 0.25, 0.5, 1.0]))
    attainable = min(cpu.peak_flops(), cpu.stream_bandwidth * intensity)
    return QuizQuestion(
        topic="roofline",
        prompt=(f"On the same machine, what performance can a kernel with "
                f"arithmetic intensity {intensity} FLOP/byte attain "
                f"(in GFLOP/s)?"),
        answer=attainable / 1e9,
        unit="GFLOP/s",
        points=10.0,
    )


def _q_amdahl(cpu: CPUSpec, rng: np.random.Generator) -> QuizQuestion:
    serial = float(rng.choice([0.05, 0.1, 0.2]))
    p = int(rng.choice([8, 16, 32]))
    return QuizQuestion(
        topic="scaling-laws",
        prompt=(f"A code is {serial:.0%} serial. What speedup does Amdahl's "
                f"law predict on {p} cores?"),
        answer=amdahl_speedup(serial, p),
        unit="x",
        points=10.0,
    )


def _q_amat(cpu: CPUSpec, rng: np.random.Generator) -> QuizQuestion:
    l1 = cpu.caches[0]
    miss_ratio = float(rng.choice([0.02, 0.05, 0.1]))
    mem_cycles = cpu.memory.latency_s * cpu.frequency_hz
    amat = l1.latency_cycles + miss_ratio * mem_cycles
    return QuizQuestion(
        topic="memory-hierarchy",
        prompt=(f"L1 hits take {l1.latency_cycles:.0f} cycles, misses go to "
                f"memory ({mem_cycles:.0f} cycles). With a {miss_ratio:.0%} "
                f"miss ratio, what is the AMAT in cycles?"),
        answer=amat,
        unit="cycles",
        points=10.0,
    )


def _q_mm1(cpu: CPUSpec, rng: np.random.Generator) -> QuizQuestion:
    rho = float(rng.choice([0.5, 0.8, 0.9]))
    mu = 100.0
    metrics = mm1(rho * mu, mu)
    return QuizQuestion(
        topic="queueing",
        prompt=(f"An M/M/1 server handles {mu:.0f} req/s and receives "
                f"{rho * mu:.0f} req/s. What is the mean number of requests "
                f"in the system?"),
        answer=metrics.mean_in_system,
        unit="requests",
        points=10.0,
    )


def _q_traffic(cpu: CPUSpec, rng: np.random.Generator) -> QuizQuestion:
    n = int(rng.choice([1, 2, 4])) * 10 ** 6
    # triad over n doubles: 24 bytes/element at STREAM accounting
    seconds = 24.0 * n / cpu.stream_bandwidth
    return QuizQuestion(
        topic="bandwidth",
        prompt=(f"STREAM triad over {n:,} float64 elements moves 24 B/element. "
                f"At {cpu.stream_bandwidth / 1e9:.0f} GB/s, how many "
                f"milliseconds does one sweep take?"),
        answer=seconds * 1e3,
        unit="ms",
        points=10.0,
    )


def _q_speedup_measured(cpu: CPUSpec, rng: np.random.Generator) -> QuizQuestion:
    base = float(rng.choice([8.0, 12.0, 20.0]))
    factor = float(rng.choice([2.5, 4.0, 5.0]))
    return QuizQuestion(
        topic="metrics",
        prompt=(f"A kernel drops from {base:.0f} s to {base / factor:.1f} s "
                f"after tiling. What speedup is that?"),
        answer=factor,
        unit="x",
        points=10.0,
    )


_GENERATORS = (_q_ridge, _q_attainable, _q_amdahl, _q_amat, _q_mm1,
               _q_traffic, _q_speedup_measured)


def generate_quiz(cpu: CPUSpec | None = None, seed: int = 0) -> Quiz:
    """Generate the 70-point quiz for a machine (default teaching machine).

    Deterministic given (cpu, seed); seven questions of ten points each,
    matching Equation 1's S_Q/70 scaling exactly.
    """
    cpu = cpu or generic_server_cpu()
    rng = np.random.default_rng(seed)
    questions = tuple(gen(cpu, rng) for gen in _GENERATORS)
    quiz = Quiz(questions)
    assert quiz.total_points == MAX_QUIZ_POINTS
    return quiz
