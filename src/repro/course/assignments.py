"""The four practical assignments as structured specifications (§4.2).

Everything the paper states about each assignment — its points (which feed
Equation 3), release/deadline weeks, the kernels it provides, the tools it
introduces (mapped to our substitutes), and the objectives it serves — as a
queryable registry, cross-checked against the grading module and the
curriculum in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .grading import ASSIGNMENT_POINTS

__all__ = ["AssignmentSpec", "ASSIGNMENTS", "assignment", "release_schedule"]


@dataclass(frozen=True)
class AssignmentSpec:
    """One practical assignment of the course."""

    number: int
    title: str
    points: int
    release_week: int
    deadline_week: int
    kernels: tuple[str, ...]
    paper_tools: tuple[str, ...]       # what the course uses on real HW
    our_modules: tuple[str, ...]       # what this repository substitutes
    objectives: frozenset[int]
    example: str

    def __post_init__(self) -> None:
        if not 1 <= self.number <= 4:
            raise ValueError("assignments are numbered 1-4")
        if self.points <= 0:
            raise ValueError("assignments must carry points")
        if not 1 <= self.release_week <= self.deadline_week <= 8:
            raise ValueError("weeks must fit the 8-week block in order")

    @property
    def duration_weeks(self) -> int:
        return self.deadline_week - self.release_week


#: The four assignments, §4.2 + §4.2.1's timeline (sequential releases:
#: A1 weeks 1-3, A2 weeks 3-5 overlapping A1's tail, A3+A4 released
#: together with the course-end deadline).
ASSIGNMENTS: tuple[AssignmentSpec, ...] = (
    AssignmentSpec(
        number=1,
        title="The Roofline Model",
        points=10,
        release_week=1,
        deadline_week=3,
        kernels=("matmul",),
        paper_tools=("roofline plotting tools", "loop reordering", "loop tiling"),
        our_modules=("repro.roofline", "repro.kernels.matmul",
                     "repro.simulator"),
        objectives=frozenset({1, 2, 4}),
        example="examples/assignment1_roofline.py",
    ),
    AssignmentSpec(
        number=2,
        title="Analytical Modeling and Microbenchmarking",
        points=9,
        release_week=3,
        deadline_week=5,
        kernels=("matmul", "histogram"),
        paper_tools=("Fog instruction tables", "STREAM", "uops", "perf",
                     "nvprof/nsight", "IACA", "OSACA", "LLVM-MCA"),
        our_modules=("repro.analytical", "repro.microbench",
                     "repro.machine.instruction_tables",
                     "repro.simulator.ports"),
        objectives=frozenset({2, 3, 5, 8}),
        example="examples/assignment2_analytical.py",
    ),
    AssignmentSpec(
        number=3,
        title="Statistical Modeling",
        points=11,
        release_week=5,
        deadline_week=8,
        kernels=("matmul", "spmv"),
        paper_tools=("CSR/CSC/COO storage", "regression tooling",
                     "performance counter collectors"),
        our_modules=("repro.statmodel", "repro.kernels.spmv",
                     "repro.kernels.matrixmarket"),
        objectives=frozenset({3, 4, 5}),
        example="examples/assignment3_statistical.py",
    ),
    AssignmentSpec(
        number=4,
        title="Performance Counters and Performance Patterns",
        points=12,
        release_week=5,
        deadline_week=8,
        kernels=("spmv", "synthetic-patterns"),
        paper_tools=("Linux PERF", "PAPI", "LIKWID", "Intel VTune",
                     "NVIDIA Nsight Systems", "NVIDIA Nsight Compute"),
        our_modules=("repro.counters", "repro.simulator"),
        objectives=frozenset({1, 4, 8}),
        example="examples/assignment4_counters.py",
    ),
)


def assignment(number: int) -> AssignmentSpec:
    """Look up one assignment by its number."""
    for spec in ASSIGNMENTS:
        if spec.number == number:
            return spec
    raise KeyError(f"no assignment {number}; the course has 1-4")


def release_schedule() -> dict[int, list[int]]:
    """Week -> assignment numbers released that week (§4.2.1's staging)."""
    schedule: dict[int, list[int]] = {}
    for spec in ASSIGNMENTS:
        schedule.setdefault(spec.release_week, []).append(spec.number)
    return dict(sorted(schedule.items()))


# consistency with Equation 3, checked at import time: the registry and the
# grading module must never drift apart
assert tuple(a.points for a in ASSIGNMENTS) == ASSIGNMENT_POINTS
