"""Curriculum registry: Table 1, learning objectives, process stages,
prerequisites, milestones, and the 8-week timeline.

Table 1 maps each of the course's eleven topics to the performance-
engineering stages (§2.3) and learning objectives (§3.1) that motivate it.
The printed checkmark grid does not survive the paper's OCR unambiguously,
so the mapping below is reconstructed from the prose of Sections 2-4 (each
topic's stage/objective role is described there); EXPERIMENTS.md records
this as a documented reconstruction.  Counts and structure (11 topics,
7 stages, 8 objectives) are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "STAGES",
    "OBJECTIVES",
    "PREREQUISITES",
    "MILESTONES",
    "Topic",
    "TOPICS",
    "TIMELINE",
    "topic_by_name",
    "topics_for_stage",
    "topics_for_objective",
    "coverage_matrix",
]

#: The seven-stage performance engineering process (§2.3).
STAGES: tuple[str, ...] = (
    "Collect and analyse (user) performance requirements",
    "Understand current performance",
    "Assess feasibility of the requirements",
    "Assess suitable approaches to meet the requirements",
    "Apply tuning and optimization",
    "Assess progress and iterate back to steps 3-5",
    "Analyse and document the process and the final result",
)

#: The eight learning objectives (§3.1).
OBJECTIVES: tuple[str, ...] = (
    "Quantify the performance of an application using the appropriate metric",
    "Demonstrate and compare several performance modeling methods",
    "Classify and use several performance prediction methods",
    "Design an empirical performance analysis process and interpret results",
    "Design and use a suitable model for accurate performance prediction",
    "Apply and assess different optimization techniques",
    "Design and develop a complete performance engineering process",
    "Use different performance engineering tools",
)

#: The five prerequisites (§3.2).
PREREQUISITES: tuple[str, ...] = (
    "Computer organization and architecture basics",
    "Computer systems fundamentals",
    "Parallel algorithms design and C/C++ skills",
    "Parallel and distributed programming basics (OpenMP, CUDA, OpenCL, MPI)",
    "Basic statistics and data analysis methods",
)

#: The four project milestones (§3.3).
MILESTONES: tuple[str, ...] = (
    "Define an application of interest and formulate a performance problem",
    "Formulate a plan to deploy performance engineering methods",
    "Document the performance engineering process",
    "Present intermediate and final results to an audience of peers",
)


@dataclass(frozen=True)
class Topic:
    """One Table 1 row: a lecture topic with its stage/objective coverage."""

    name: str
    stages: frozenset[int]      # subset of 1..7
    objectives: frozenset[int]  # subset of 1..8
    module: str                 # where this repository implements the topic

    def __post_init__(self) -> None:
        if not self.stages or not self.stages <= set(range(1, 8)):
            raise ValueError(f"{self.name}: stages must be a non-empty subset of 1..7")
        if not self.objectives or not self.objectives <= set(range(1, 9)):
            raise ValueError(f"{self.name}: objectives must be a non-empty subset of 1..8")


#: Table 1, with each topic mapped to the repro module implementing it.
TOPICS: tuple[Topic, ...] = (
    Topic("Basics of performance", frozenset({2}), frozenset({1}),
          "repro.timing"),
    Topic("Code tuning and optimization", frozenset({5}), frozenset({6, 7}),
          "repro.kernels"),
    Topic("Roofline model and extensions", frozenset({2, 3}), frozenset({2, 4, 5}),
          "repro.roofline"),
    Topic("Analytical modeling", frozenset({3, 4}), frozenset({2, 3, 5}),
          "repro.analytical"),
    Topic("(Micro)benchmarking", frozenset({2, 6}), frozenset({1, 4, 8}),
          "repro.microbench"),
    Topic("Data-driven and stat. modeling", frozenset({3, 4}), frozenset({3, 5}),
          "repro.statmodel"),
    Topic("Simulation and simulators", frozenset({4}), frozenset({3, 5, 8}),
          "repro.simulator"),
    Topic("Perf. counters and patterns", frozenset({2, 6}), frozenset({1, 4, 8}),
          "repro.counters"),
    Topic("Scale-out to distributed systems", frozenset({4, 5}), frozenset({6, 7}),
          "repro.distributed"),
    Topic("Queuing theory", frozenset({3}), frozenset({2, 3}),
          "repro.queueing"),
    Topic("Polyhedral model", frozenset({5}), frozenset({6}),
          "repro.polyhedral"),
)

#: The 8-week course timeline (§4.3): week -> project activity.
TIMELINE: dict[int, str] = {
    1: "Project kick-off: goals and high-level examples (dedicated seminar)",
    2: "Prototype of the sequential/reference version",
    3: "Evaluation strategy and experimental setup (dedicated seminar)",
    4: "First performance model; first optimizations and prototypes",
    5: "Report skeleton; 5-minute midterm talk",
    6: "More prototypes; full performance engineering process",
    7: "More prototypes; full performance engineering process",
    8: "Final report, final presentation, reflection; exam week",
}


def topic_by_name(name: str) -> Topic:
    for t in TOPICS:
        if t.name == name:
            return t
    raise KeyError(f"no topic {name!r}")


def topics_for_stage(stage: int) -> list[Topic]:
    """Topics exercising one process stage (column slice of Table 1)."""
    if not 1 <= stage <= 7:
        raise ValueError("stages are numbered 1..7")
    return [t for t in TOPICS if stage in t.stages]


def topics_for_objective(objective: int) -> list[Topic]:
    """Topics serving one learning objective (column slice of Table 1)."""
    if not 1 <= objective <= 8:
        raise ValueError("objectives are numbered 1..8")
    return [t for t in TOPICS if objective in t.objectives]


def coverage_matrix() -> dict[str, dict[str, bool]]:
    """Table 1 as a nested dict: topic -> {'S1'..'S7', 'O1'..'O8'} -> bool."""
    out: dict[str, dict[str, bool]] = {}
    for t in TOPICS:
        row = {}
        for s in range(1, 8):
            row[f"S{s}"] = s in t.stages
        for o in range(1, 9):
            row[f"O{o}"] = o in t.objectives
        out[t.name] = row
    return out
