"""SW-2 and SW-3: generate Figure 1 and Tables 1/2 from the data artifacts.

The paper's appendix lists two scripts: ``scripts/make_plots.py`` (SW-2,
Figure 1 from DATA-1) and ``scripts/make_tables.py`` (SW-3, Table 2 from
DATA-2).  These functions are those scripts: they return the figure's data
series and the tables' formatted rows, plus text renderings.
"""

from __future__ import annotations

from .curriculum import TOPICS, coverage_matrix
from .data import (
    LIKERT_SCALE_2A,
    LIKERT_SCALE_2B,
    METRICS_2A,
    METRICS_2B,
    STUDENTS,
    EvaluationRow,
    YearRecord,
)

__all__ = [
    "figure1_series",
    "figure1_text",
    "table2a_rows",
    "table2b_rows",
    "table2_text",
    "table1_text",
]


def figure1_series(records: tuple[YearRecord, ...] = STUDENTS
                   ) -> dict[str, list]:
    """Figure 1's three series over years (SW-2's core computation)."""
    if not records:
        raise ValueError("no records")
    return {
        "year": [r.year for r in records],
        "total_enrolled": [r.enrolled for r in records],
        "passing_grades": [r.passed for r in records],
        "evaluation_respondents": [r.respondents for r in records],
    }


def figure1_text(records: tuple[YearRecord, ...] = STUDENTS,
                 width: int = 50) -> str:
    """ASCII rendering of Figure 1: students per year, three series."""
    series = figure1_series(records)
    top = max(series["total_enrolled"])
    lines = ["Figure 1: students per course edition",
             f"{'year':>6s} {'enrolled':>9s} {'passed':>7s} {'respond.':>9s}  chart (#=enrolled, +=passed, o=respondents)"]
    for i, year in enumerate(series["year"]):
        e = series["total_enrolled"][i]
        p = series["passing_grades"][i]
        r = series["evaluation_respondents"][i]
        bar = [" "] * width
        for x in range(round(e / top * (width - 1)) + 1):
            bar[x] = "#"
        for x in range(round(p / top * (width - 1)) + 1):
            bar[x] = "+"
        if r is not None:
            for x in range(round(r / top * (width - 1)) + 1):
                bar[x] = "o"
        r_s = "n/a" if r is None else str(r)
        lines.append(f"{year:>6d} {e:>9d} {p:>7d} {r_s:>9s}  |{''.join(bar)}|")
    return "\n".join(lines)


def _rows(data: tuple[EvaluationRow, ...]) -> list[dict]:
    out = []
    for row in data:
        out.append({
            "group": row.group,
            "statement": row.statement,
            "counts": row.counts,
            "n": row.n_responses,
            "mean": round(row.mean, 1),
            "paper_mean": row.paper_mean,
        })
    return out


def table2a_rows() -> list[dict]:
    """Table 2a rows with recomputed means (SW-3's core computation)."""
    return _rows(METRICS_2A)


def table2b_rows() -> list[dict]:
    """Table 2b rows with recomputed means."""
    return _rows(METRICS_2B)


def table2_text() -> str:
    """Text rendering of both Table 2 halves, paper layout."""
    lines = ["Table 2a: evaluation responses (1=Firmly Disagree .. 5=Firmly Agree)"]
    header = f"  {'statement':32s} " + " ".join(f"{c[:6]:>6s}" for c in LIKERT_SCALE_2A)
    lines.append(header + f" {'M':>5s}")
    group = None
    for row in table2a_rows():
        if row["group"] != group:
            group = row["group"]
            lines.append(f'  "{group}"')
        counts = " ".join(f"{c:6d}" for c in row["counts"])
        lines.append(f"    {row['statement']:30s} {counts} {row['mean']:5.1f}")
    lines.append("")
    lines.append("Table 2b: responses (1=Very Low .. 5=Very High; 3-4 optimal)")
    lines.append(f"  {'statement':32s} " + " ".join(f"{c[:6]:>6s}" for c in LIKERT_SCALE_2B)
                 + f" {'M':>5s}")
    for row in table2b_rows():
        counts = " ".join(f"{c:6d}" for c in row["counts"])
        lines.append(f"    {row['statement']:30s} {counts} {row['mean']:5.1f}")
    return "\n".join(lines)


def table1_text() -> str:
    """Text rendering of Table 1: topics vs stages and objectives."""
    matrix = coverage_matrix()
    stage_cols = [f"S{s}" for s in range(1, 8)]
    obj_cols = [f"O{o}" for o in range(1, 9)]
    lines = ["Table 1: topics vs PE stages (1-7) and learning objectives (1-8)"]
    lines.append(f"  {'topic':34s} " + " ".join(f"{c:>2s}" for c in stage_cols)
                 + "  " + " ".join(f"{c:>2s}" for c in obj_cols))
    for topic in TOPICS:
        row = matrix[topic.name]
        stages = " ".join(" v" if row[c] else "  " for c in stage_cols)
        objs = " ".join(" v" if row[c] else "  " for c in obj_cols)
        lines.append(f"  {topic.name:34s} {stages}  {objs}")
    return "\n".join(lines)
