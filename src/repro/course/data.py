"""The paper's data artifacts: DATA-1 (students.csv) and DATA-2 (metrics.csv).

The artifact appendix describes two anonymized CSVs:

* **DATA-1** — per-year enrollment, passing grades, and evaluation
  respondents (drives Figure 1 via SW-2);
* **DATA-2** — per-statement Likert response counts from the course
  evaluations (drives Table 2 via SW-3).

DATA-2 is printed *verbatim* in Table 2, so our copy is exact.  DATA-1 is
only shown as a low-resolution line chart, but the paper pins it down
tightly: 146 total enrolled, 93 total passed (§5.1), 41 evaluation
respondents (§1), evaluations missing for 2019 and 2022 (Figure 1 caption),
dropout between 15 and 50% per year (§5.1), and the visual shape of
Figure 1 (rising enrollment, ~10 to ~35-40).  The reconstruction below
satisfies every one of those constraints; EXPERIMENTS.md records it as a
documented substitution.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

__all__ = [
    "YearRecord",
    "STUDENTS",
    "LIKERT_SCALE_2A",
    "LIKERT_SCALE_2B",
    "EvaluationRow",
    "METRICS_2A",
    "METRICS_2B",
    "students_csv",
    "metrics_csv",
    "load_students_csv",
    "totals",
]


@dataclass(frozen=True)
class YearRecord:
    """One course edition (DATA-1 row)."""

    year: int
    enrolled: int
    passed: int
    respondents: int | None  # None: evaluation unavailable (2019, 2022)

    def __post_init__(self) -> None:
        if self.enrolled < 0 or self.passed < 0:
            raise ValueError("counts cannot be negative")
        if self.passed > self.enrolled:
            raise ValueError("cannot pass more students than enrolled")
        if self.respondents is not None and self.respondents < 0:
            raise ValueError("respondents cannot be negative")

    @property
    def dropout_rate(self) -> float:
        return 1.0 - self.passed / self.enrolled if self.enrolled else 0.0


#: DATA-1 reconstruction.  Constraints (all from the paper): Σ enrolled =
#: 146, Σ passed = 93, Σ respondents = 41, respondents missing in 2019 and
#: 2022, per-year dropout within 15-50%, enrollment rising toward ~35.
STUDENTS: tuple[YearRecord, ...] = (
    YearRecord(2017, 12, 9, 8),
    YearRecord(2018, 15, 11, 8),
    YearRecord(2019, 18, 10, None),
    YearRecord(2020, 22, 15, 8),
    YearRecord(2021, 25, 17, 8),
    YearRecord(2022, 24, 12, None),
    YearRecord(2023, 30, 19, 9),
)

#: Response categories of Table 2a (values 1..5, higher is better).
LIKERT_SCALE_2A = ("Firmly Disagree", "Disagree", "Neutral", "Agree", "Firmly Agree")
#: Response categories of Table 2b (values 1..5, 3-4 considered optimal).
LIKERT_SCALE_2B = ("Very Low", "Low", "Medium", "High", "Very High")


@dataclass(frozen=True)
class EvaluationRow:
    """One evaluation statement with its response counts (DATA-2 row)."""

    group: str
    statement: str
    counts: tuple[int, int, int, int, int]
    paper_mean: float

    def __post_init__(self) -> None:
        if any(c < 0 for c in self.counts):
            raise ValueError("counts cannot be negative")
        if sum(self.counts) == 0:
            raise ValueError("statement has no responses")

    @property
    def n_responses(self) -> int:
        return sum(self.counts)

    @property
    def mean(self) -> float:
        """Mean over the 1..5 numeric scale."""
        return sum((i + 1) * c for i, c in enumerate(self.counts)) / self.n_responses


#: Table 2a counts, verbatim from the paper (one row per statement).
METRICS_2A: tuple[EvaluationRow, ...] = (
    EvaluationRow("The course ...", "Taught me a lot", (0, 0, 1, 17, 18), 4.5),
    EvaluationRow("The course ...", "Was clearly structured", (0, 2, 3, 19, 13), 4.2),
    EvaluationRow("The course ...", "Was intellectually challenging", (0, 0, 2, 9, 25), 4.6),
    EvaluationRow("I acquired, learned, or developed ...", "Factual knowledge",
                  (0, 0, 1, 13, 13), 4.4),
    EvaluationRow("I acquired, learned, or developed ...", "Fundamental principles",
                  (0, 1, 2, 16, 11), 4.2),
    EvaluationRow("I acquired, learned, or developed ...", "Current scientific theories",
                  (0, 3, 5, 13, 9), 3.9),
    EvaluationRow("I acquired, learned, or developed ...", "To apply subject matter",
                  (0, 0, 0, 7, 22), 4.8),
    EvaluationRow("I acquired, learned, or developed ...", "Professional skills",
                  (0, 0, 3, 13, 15), 4.4),
    EvaluationRow("I acquired, learned, or developed ...", "Technical skills",
                  (0, 0, 6, 14, 9), 4.1),
    EvaluationRow("... helped me understand the subject", "Assignment 1",
                  (0, 1, 1, 12, 16), 4.4),
    EvaluationRow("... helped me understand the subject", "Assignment 2",
                  (0, 0, 1, 11, 16), 4.5),
    EvaluationRow("... helped me understand the subject", "Assignment 3",
                  (1, 1, 1, 17, 10), 4.1),
    EvaluationRow("... helped me understand the subject", "Assignment 4",
                  (0, 1, 1, 12, 13), 4.4),
)

#: Table 2b counts, verbatim from the paper.
METRICS_2B: tuple[EvaluationRow, ...] = (
    EvaluationRow("The ... of the course was", "Workload", (0, 0, 11, 14, 11), 4.0),
    EvaluationRow("The ... of the course was", "Level", (0, 1, 16, 13, 6), 3.7),
)


def students_csv() -> str:
    """DATA-1 as CSV text (the artifact's ``data/students.csv``)."""
    buf = io.StringIO()
    buf.write("year,enrolled,passed,respondents\n")
    for rec in STUDENTS:
        resp = "" if rec.respondents is None else str(rec.respondents)
        buf.write(f"{rec.year},{rec.enrolled},{rec.passed},{resp}\n")
    return buf.getvalue()


def metrics_csv() -> str:
    """DATA-2 as CSV text (the artifact's ``data/metrics.csv``)."""
    buf = io.StringIO()
    buf.write("table,group,statement," + ",".join(
        c.lower().replace(" ", "_") for c in LIKERT_SCALE_2A) + ",paper_mean\n")
    for table, rows in (("2a", METRICS_2A), ("2b", METRICS_2B)):
        for row in rows:
            counts = ",".join(str(c) for c in row.counts)
            buf.write(f'{table},"{row.group}","{row.statement}",{counts},'
                      f"{row.paper_mean}\n")
    return buf.getvalue()


def load_students_csv(text: str) -> tuple[YearRecord, ...]:
    """Parse DATA-1 CSV text back into records (round-trip of SW-2's input)."""
    lines = [ln for ln in text.strip().splitlines() if ln]
    if not lines or lines[0] != "year,enrolled,passed,respondents":
        raise ValueError("not a students.csv payload")
    records = []
    for ln in lines[1:]:
        parts = ln.split(",")
        if len(parts) != 4:
            raise ValueError(f"malformed row: {ln!r}")
        year, enrolled, passed, resp = parts
        records.append(YearRecord(int(year), int(enrolled), int(passed),
                                  int(resp) if resp else None))
    return tuple(records)


def totals() -> dict[str, int]:
    """The paper's headline totals, computed from DATA-1.

    §1: 41 evaluation respondents; §5.1: 146 enrolled, 93 passed.
    """
    return {
        "enrolled": sum(r.enrolled for r in STUDENTS),
        "passed": sum(r.passed for r in STUDENTS),
        "respondents": sum(r.respondents or 0 for r in STUDENTS),
        "editions": len(STUDENTS),
    }
