"""The performance-engineering process (the paper's core contribution)."""

from .process import Attempt, EngineeringProcess, ProcessError, Stage
from .requirements import Feasibility, Metric, Requirement, assess_feasibility
from .toolbox import Toolbox

__all__ = [
    "Stage",
    "Attempt",
    "ProcessError",
    "EngineeringProcess",
    "Metric",
    "Requirement",
    "Feasibility",
    "assess_feasibility",
    "Toolbox",
]
