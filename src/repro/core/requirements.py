"""Performance requirements (stage 1) and feasibility verdicts (stage 3).

SPE (§2.3 of the paper) is requirement-driven: "performance requirements"
are explicit, quantitative targets against which every later stage is
assessed.  A requirement pairs a metric with a target and a direction;
feasibility compares the target against a *bound* from a model (Roofline
attainable, Amdahl limit, ECM prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Metric", "Requirement", "Feasibility", "assess_feasibility"]


class Metric(str, Enum):
    """Requirement metric kinds with their improvement direction."""

    LATENCY_SECONDS = "latency_seconds"          # lower is better
    THROUGHPUT_PER_SECOND = "throughput_per_s"   # higher is better
    FLOPS = "flops_per_s"                        # higher is better
    BANDWIDTH = "bytes_per_s"                    # higher is better
    SPEEDUP = "speedup"                          # higher is better
    EFFICIENCY = "efficiency"                    # higher is better

    @property
    def higher_is_better(self) -> bool:
        return self is not Metric.LATENCY_SECONDS


@dataclass(frozen=True)
class Requirement:
    """A quantitative performance requirement.

    >>> Requirement("halve solve time", Metric.LATENCY_SECONDS, 0.5).met_by(0.4)
    True
    """

    description: str
    metric: Metric
    target: float

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError("target must be positive")
        if not self.description:
            raise ValueError("requirement needs a description")

    def met_by(self, achieved: float) -> bool:
        if achieved < 0:
            raise ValueError("achieved value cannot be negative")
        if self.metric.higher_is_better:
            return achieved >= self.target
        return achieved <= self.target

    def gap(self, achieved: float) -> float:
        """How far achieved is from the target, as a ratio > 1 when unmet."""
        if achieved <= 0:
            return float("inf")
        if self.metric.higher_is_better:
            return self.target / achieved
        return achieved / self.target


class Feasibility(str, Enum):
    """Stage-3 verdicts."""

    FEASIBLE = "feasible"            # bound comfortably above the target
    MARGINAL = "marginal"            # target within 80% of the bound
    INFEASIBLE = "infeasible"        # target beyond the machine/model bound


def assess_feasibility(requirement: Requirement, bound: float,
                       margin: float = 0.8) -> Feasibility:
    """Compare a requirement with a model bound.

    ``bound`` is the best value any implementation could reach per the
    model (upper bound for rates, lower bound for latency).  Targets
    beyond the bound are infeasible; targets within ``margin`` of it are
    marginal — achievable only by near-perfect engineering, which stage 4
    should flag.
    """
    if bound <= 0:
        raise ValueError("bound must be positive")
    if not 0 < margin <= 1:
        raise ValueError("margin must be in (0, 1]")
    if requirement.metric.higher_is_better:
        if requirement.target > bound:
            return Feasibility.INFEASIBLE
        if requirement.target > margin * bound:
            return Feasibility.MARGINAL
    else:
        if requirement.target < bound:
            return Feasibility.INFEASIBLE
        if requirement.target < bound / margin:
            return Feasibility.MARGINAL
    return Feasibility.FEASIBLE
