"""The performance-engineering toolbox facade.

The course's ultimate goal is that students "create their own performance
engineering toolbox ... to deploy a systematic approach for performance
engineering on any application".  This class is that toolbox for one
machine: a single object bundling every instrument in the library, so the
examples and the process engine can reach any stage's tool in one line.
"""

from __future__ import annotations

from ..analytical.ecm import ECMModel
from ..analytical.model import FunctionLevelModel, InstructionLevelModel
from ..counters.collector import CounterSession
from ..machine.instruction_tables import InstructionTable, generic_server_table
from ..machine.presets import generic_server_cpu
from ..machine.specs import CPUSpec
from ..microbench.suite import MachineCharacterization, characterize_simulated
from ..roofline.model import RooflineModel, cpu_roofline
from ..simulator.cpu import CPUModel

__all__ = ["Toolbox"]


class Toolbox:
    """Every course instrument, configured for one machine.

    >>> tb = Toolbox.default()
    >>> tb.roofline().classify(0.1)
    'memory-bound'

    Instruments are built lazily and cached; a toolbox is cheap to create
    and deterministic given (cpu, table).
    """

    def __init__(self, cpu: CPUSpec, table: InstructionTable):
        self.cpu = cpu
        self.table = table
        self._characterization: MachineCharacterization | None = None
        self._roofline: RooflineModel | None = None
        self._ecm: ECMModel | None = None

    @classmethod
    def default(cls) -> "Toolbox":
        """Toolbox for the default teaching machine."""
        return cls(generic_server_cpu(), generic_server_table())

    # -- stage 2: understand current performance ----------------------------

    def characterize(self) -> MachineCharacterization:
        """Simulated machine characterization (deterministic)."""
        if self._characterization is None:
            self._characterization = characterize_simulated(self.cpu, self.table)
        return self._characterization

    def counter_session(self, events: list[str] | None = None,
                        **model_kwargs) -> CounterSession:
        """A PAPI-like counter session on this machine."""
        return CounterSession(self.cpu, self.table, events, **model_kwargs)

    def cpu_model(self, **kwargs) -> CPUModel:
        """The raw timing simulator, for custom experiments."""
        return CPUModel(self.cpu, self.table, **kwargs)

    # -- stages 3-4: modeling ------------------------------------------------

    def roofline(self, cores: int | None = None, dtype_bytes: int = 8
                 ) -> RooflineModel:
        if cores is None and dtype_bytes == 8:
            if self._roofline is None:
                self._roofline = cpu_roofline(self.cpu)
            return self._roofline
        return cpu_roofline(self.cpu, dtype_bytes=dtype_bytes, cores=cores)

    def function_model(self, overlap: bool = True) -> FunctionLevelModel:
        return FunctionLevelModel(self.characterize(), overlap=overlap)

    def instruction_model(self, **kwargs) -> InstructionLevelModel:
        return InstructionLevelModel(self.cpu, self.table, **kwargs)

    def ecm(self) -> ECMModel:
        if self._ecm is None:
            self._ecm = ECMModel(self.cpu, self.table)
        return self._ecm

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        """One-page machine summary for the stage-7 report header."""
        ch = self.characterize()
        rl = self.roofline()
        lines = [
            f"Toolbox for {self.cpu.name} ({self.cpu.cores} cores @ "
            f"{self.cpu.frequency_hz / 1e9:.2f} GHz, "
            f"AVX{self.cpu.vector.width_bits}{'+FMA' if self.cpu.vector.fma else ''})",
            ch.report(),
            f"  roofline ridge  : {rl.ridge_point():10.3f} FLOP/byte",
            "  caches          : " + ", ".join(
                f"{c.name} {c.capacity_bytes // 1024}KiB/{c.associativity}w"
                for c in self.cpu.caches),
        ]
        return "\n".join(lines)
