"""The seven-stage performance-engineering process as an executable workflow.

This is the paper's central methodological contribution (§2.3): a
"systematic, quantitative approach" in seven iterative stages.  The
:class:`EngineeringProcess` state machine enforces the stage ordering,
records everything (stage 7 is *documentation* — the record **is** the
deliverable), and drives the iterate-back loop of stage 6.

Typical use (the project workflow of §4.3):

>>> proc = EngineeringProcess("my-app")
>>> proc.set_requirement(Requirement(...))                 # stage 1
>>> proc.record_baseline(seconds=2.0, notes="naive loop")  # stage 2
>>> proc.assess_feasibility(bound=0.2)                     # stage 3
>>> proc.propose("tiling", predicted_seconds=0.6)          # stage 4
>>> proc.apply("tiling", measured_seconds=0.7)             # stage 5
>>> proc.assess()                                          # stage 6 (iterate?)
>>> print(proc.report())                                   # stage 7
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from .requirements import Feasibility, Metric, Requirement, assess_feasibility

__all__ = ["Stage", "Attempt", "ProcessError", "EngineeringProcess"]


class Stage(IntEnum):
    """The seven stages of §2.3."""

    REQUIREMENTS = 1
    BASELINE = 2
    FEASIBILITY = 3
    APPROACHES = 4
    TUNING = 5
    ASSESSMENT = 6
    REPORTING = 7


class ProcessError(RuntimeError):
    """Stage-ordering violation or inconsistent process state."""


@dataclass
class Attempt:
    """One optimization candidate through stages 4-6."""

    name: str
    rationale: str = ""
    predicted_seconds: float | None = None
    measured_seconds: float | None = None

    @property
    def applied(self) -> bool:
        return self.measured_seconds is not None

    def prediction_error(self) -> float | None:
        """(predicted - measured)/measured, when both are known."""
        if self.predicted_seconds is None or self.measured_seconds is None:
            return None
        return (self.predicted_seconds - self.measured_seconds) / self.measured_seconds


@dataclass
class _LogEntry:
    stage: Stage
    iteration: int
    text: str


class EngineeringProcess:
    """State machine over the seven stages, with full history.

    The process is deliberately strict: you cannot assess feasibility
    without a baseline, nor apply an optimization you never proposed —
    the same discipline the course grades projects on.
    """

    def __init__(self, application: str):
        if not application:
            raise ValueError("name the application under study")
        self.application = application
        self.requirement: Requirement | None = None
        self.baseline_seconds: float | None = None
        self.baseline_notes: str = ""
        self.feasibility: Feasibility | None = None
        self.bound_seconds: float | None = None
        self.attempts: dict[str, Attempt] = {}
        self.iteration = 1
        self._log: list[_LogEntry] = []
        self._closed = False

    # -- stage 1 ------------------------------------------------------------

    def set_requirement(self, requirement: Requirement) -> None:
        self._ensure_open()
        self.requirement = requirement
        self._note(Stage.REQUIREMENTS,
                   f"requirement: {requirement.description} "
                   f"({requirement.metric.value} -> {requirement.target:g})")

    # -- stage 2 ------------------------------------------------------------

    def record_baseline(self, seconds: float, notes: str = "") -> None:
        self._ensure_open()
        if self.requirement is None:
            raise ProcessError("stage 2 before stage 1: set a requirement first")
        if seconds <= 0:
            raise ValueError("baseline time must be positive")
        self.baseline_seconds = seconds
        self.baseline_notes = notes
        self._note(Stage.BASELINE, f"baseline {seconds:.4e}s ({notes})")

    # -- stage 3 ------------------------------------------------------------

    def assess_feasibility(self, bound: float) -> Feasibility:
        """``bound`` is the model's best attainable time (seconds)."""
        self._ensure_open()
        if self.baseline_seconds is None:
            raise ProcessError("stage 3 before stage 2: record a baseline first")
        assert self.requirement is not None
        if self.requirement.metric is Metric.LATENCY_SECONDS:
            verdict = assess_feasibility(self.requirement, bound)
        elif self.requirement.metric is Metric.SPEEDUP:
            best_speedup = self.baseline_seconds / bound
            verdict = assess_feasibility(self.requirement, best_speedup)
        else:
            raise ProcessError(
                f"feasibility for metric {self.requirement.metric.value} "
                f"needs a rate bound; express the requirement as latency or speedup")
        self.feasibility = verdict
        self.bound_seconds = bound
        self._note(Stage.FEASIBILITY,
                   f"bound {bound:.4e}s -> {verdict.value}")
        return verdict

    # -- stage 4 ------------------------------------------------------------

    def propose(self, name: str, rationale: str = "",
                predicted_seconds: float | None = None) -> Attempt:
        self._ensure_open()
        if self.feasibility is None:
            raise ProcessError("stage 4 before stage 3: assess feasibility first")
        if self.feasibility is Feasibility.INFEASIBLE:
            raise ProcessError(
                "requirement judged infeasible; renegotiate it (stage 1) "
                "instead of optimizing toward an impossible target")
        if name in self.attempts:
            raise ProcessError(f"approach {name!r} already proposed")
        if predicted_seconds is not None and predicted_seconds <= 0:
            raise ValueError("predicted time must be positive")
        attempt = Attempt(name, rationale, predicted_seconds)
        self.attempts[name] = attempt
        pred = (f", predicted {predicted_seconds:.4e}s"
                if predicted_seconds is not None else "")
        self._note(Stage.APPROACHES, f"proposed {name!r}: {rationale}{pred}")
        return attempt

    # -- stage 5 ------------------------------------------------------------

    def apply(self, name: str, measured_seconds: float) -> Attempt:
        self._ensure_open()
        if name not in self.attempts:
            raise ProcessError(f"approach {name!r} was never proposed (stage 4)")
        if measured_seconds <= 0:
            raise ValueError("measured time must be positive")
        attempt = self.attempts[name]
        attempt.measured_seconds = measured_seconds
        err = attempt.prediction_error()
        err_s = f", model error {err:+.0%}" if err is not None else ""
        self._note(Stage.TUNING, f"applied {name!r}: {measured_seconds:.4e}s{err_s}")
        return attempt

    # -- stage 6 ------------------------------------------------------------

    def assess(self) -> bool:
        """Check the requirement against the best result; returns met?

        When unmet, the iteration counter advances — the caller loops back
        to stages 3-5, exactly as §2.3 prescribes.
        """
        self._ensure_open()
        applied = [a for a in self.attempts.values() if a.applied]
        if not applied:
            raise ProcessError("stage 6 before stage 5: apply something first")
        assert self.requirement is not None and self.baseline_seconds is not None
        best = min(a.measured_seconds for a in applied)
        if self.requirement.metric is Metric.LATENCY_SECONDS:
            met = self.requirement.met_by(best)
        elif self.requirement.metric is Metric.SPEEDUP:
            met = self.requirement.met_by(self.baseline_seconds / best)
        else:
            raise ProcessError("assessment supports latency or speedup requirements")
        self._note(Stage.ASSESSMENT,
                   f"best {best:.4e}s (x{self.baseline_seconds / best:.2f} vs "
                   f"baseline) -> requirement {'MET' if met else 'NOT met'}")
        if not met:
            self.iteration += 1
            self._note(Stage.ASSESSMENT,
                       f"iterating back to stages 3-5 (iteration {self.iteration})")
        return met

    # -- stage 7 ------------------------------------------------------------

    def report(self) -> str:
        """Produce the stage-7 document and close the process."""
        if self.requirement is None or self.baseline_seconds is None:
            raise ProcessError("nothing to report: run stages 1-2 first")
        lines = [
            f"# Performance engineering report: {self.application}",
            "",
            f"Requirement: {self.requirement.description} "
            f"[{self.requirement.metric.value} -> {self.requirement.target:g}]",
            f"Baseline: {self.baseline_seconds:.4e}s ({self.baseline_notes})",
        ]
        if self.bound_seconds is not None:
            lines.append(f"Model bound: {self.bound_seconds:.4e}s "
                         f"-> {self.feasibility.value}")
        if self.attempts:
            lines.append("")
            lines.append(f"{'approach':24s} {'predicted':>12s} {'measured':>12s} "
                         f"{'speedup':>8s} {'model err':>10s}")
            for a in self.attempts.values():
                pred = (f"{a.predicted_seconds:12.4e}"
                        if a.predicted_seconds is not None else "         n/a")
                meas = (f"{a.measured_seconds:12.4e}" if a.applied else "         n/a")
                spd = (f"{self.baseline_seconds / a.measured_seconds:8.2f}"
                       if a.applied else "     n/a")
                err = a.prediction_error()
                err_s = f"{err:+10.0%}" if err is not None else "       n/a"
                lines.append(f"{a.name:24s} {pred} {meas} {spd} {err_s}")
        lines.append("")
        lines.append(f"Process log ({self.iteration} iteration(s)):")
        for entry in self._log:
            lines.append(f"  [it{entry.iteration} S{int(entry.stage)}] {entry.text}")
        self._closed = True
        return "\n".join(lines)

    # -- helpers -----------------------------------------------------------

    @property
    def history(self) -> list[str]:
        return [f"S{int(e.stage)}: {e.text}" for e in self._log]

    def _note(self, stage: Stage, text: str) -> None:
        self._log.append(_LogEntry(stage, self.iteration, text))

    def _ensure_open(self) -> None:
        if self._closed:
            raise ProcessError("process already reported (stage 7); start a new one")
