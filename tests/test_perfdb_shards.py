"""Tests for the sharded perfdb: tenants, corrupt-line tally, compaction,
index-accelerated history, and flat-store migration."""

import json
import warnings

import pytest

from repro.observe.metrics import METRICS
from repro.perfdb.record import RunRecord
from repro.perfdb.store import DEFAULT_TENANT, PerfStore, PerfStoreWarning


def _record(bench="service/matmul-small", times=(0.01, 0.011), **kw):
    kw.setdefault("machine", {})
    kw.setdefault("git_sha", "deadbeef")
    return RunRecord.new({bench: list(times)}, **kw)


@pytest.fixture()
def store(tmp_path):
    return PerfStore(tmp_path / "perfdb")


class TestShardedAppend:
    def test_tenantless_append_stays_flat(self, store):
        store.append(_record())
        assert store.runs_path.exists()
        assert store.shard_files() == []
        assert len(store.runs()) == 1

    def test_tenant_append_routes_to_shard(self, store):
        path = store.append(_record(), tenant="alice")
        assert path.parent.name == "alice"
        assert path.name == "service_matmul-small.jsonl"
        assert store.tenants() == ["alice"]
        assert not store.runs_path.exists()

    def test_groups_split_per_benchmark_family(self, store):
        store.append(_record("service/matmul-small"), tenant="a")
        store.append(_record("service/stencil-small"), tenant="a")
        names = sorted(p.name for p in store.shard_files("a"))
        assert names == ["service_matmul-small.jsonl",
                         "service_stencil-small.jsonl"]

    def test_hostile_tenant_name_is_sanitized(self, store):
        path = store.append(_record(), tenant="../../etc")
        assert store.root in path.parents
        assert ".." not in path.parts

    def test_runs_filter_by_tenant(self, store):
        store.append(_record(), tenant="a")
        store.append(_record(), tenant="b")
        store.append(_record())  # flat, tenant-less
        assert len(store.runs()) == 3
        assert len(store.runs(tenant="a")) == 1
        assert len(store.runs(tenant="nobody")) == 0


class TestCorruptLines:
    def test_counter_and_metric_track_skips(self, store):
        store.append(_record(), tenant="a")
        path = store.shard_files("a")[0]
        with open(path, "a") as fh:
            fh.write("this is not json\n")
        metric = METRICS.counter("perfdb.corrupt_lines")
        before = metric.value
        assert store.corrupt_lines == 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PerfStoreWarning)
            runs = store.runs()
        assert len(runs) == 1
        assert store.corrupt_lines == 1
        assert metric.value == before + 1

    def test_health_reports_scan_local_corruption(self, store):
        store.append(_record())
        with open(store.runs_path, "a") as fh:
            fh.write("{broken\n")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PerfStoreWarning)
            health = store.health()
        assert health["records"] == 1
        assert health["corrupt_lines"] == 1
        assert health["legacy_records"] == 1


class TestCompaction:
    def test_compact_drops_corrupt_and_duplicate_lines(self, store):
        rec = _record()
        store.append(rec, tenant="a")
        path = store.shard_files("a")[0]
        with open(path, "a") as fh:
            fh.write("garbage line\n")
            fh.write(json.dumps(rec.to_dict()) + "\n")  # duplicate run id
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PerfStoreWarning)
            stats = store.compact()
        assert stats["kept"] == 1
        assert stats["dropped_lines"] == 1
        assert stats["dropped_dupes"] == 1
        # the rewritten shard now reads back clean
        fresh = PerfStore(store.root)
        assert len(fresh.runs()) == 1
        assert fresh.corrupt_lines == 0

    def test_compact_writes_index_inventory(self, store):
        store.append(_record("service/matmul-small"), tenant="a")
        store.compact()
        index = json.loads(store.index_path.read_text())
        entry = index["shards/a/service_matmul-small.jsonl"]
        assert entry["records"] == 1
        assert entry["benchmarks"] == ["service/matmul-small"]

    def test_partial_compaction_merges_index(self, store):
        store.append(_record(), tenant="a")
        store.append(_record("service/stencil-small"), tenant="b")
        store.compact()
        store.append(_record(), tenant="a")
        store.compact(tenant="a")
        index = json.loads(store.index_path.read_text())
        # tenant b's entry survived the partial pass
        assert any(key.startswith("shards/b/") for key in index)


class TestHistoryIndex:
    def test_history_skips_shards_via_fresh_index(self, store, monkeypatch):
        store.append(_record("service/matmul-small"), tenant="a")
        store.append(_record("service/stencil-small"), tenant="b")
        store.compact()
        reads = []
        orig = PerfStore._read_file

        def spying_read(self, path):
            reads.append(path.name)
            return orig(self, path)

        monkeypatch.setattr(PerfStore, "_read_file", spying_read)
        hist = store.history("service/matmul-small")
        assert len(hist) == 1
        assert reads == ["service_matmul-small.jsonl"]

    def test_stale_index_entry_falls_back_to_reading(self, store):
        store.append(_record("service/matmul-small"), tenant="a")
        store.compact()
        # append after compaction: the index entry is now stale
        store.append(_record("service/matmul-small"), tenant="a")
        assert len(store.history("service/matmul-small")) == 2


class TestMigration:
    def test_migrate_moves_flat_records_into_shards(self, store):
        store.append(_record("service/matmul-small"))
        store.append(_record("service/stencil-small"))
        moved = store.migrate()
        assert moved == 2
        assert not store.runs_path.exists()
        assert store.tenants() == [DEFAULT_TENANT]
        assert len(store.runs(tenant=DEFAULT_TENANT)) == 2
        assert store.index_path.exists()

    def test_migrate_is_idempotent(self, store):
        store.append(_record())
        assert store.migrate() == 1
        assert store.migrate() == 0

    def test_history_spans_flat_and_sharded_records(self, store):
        store.append(_record("service/matmul-small"))
        store.append(_record("service/matmul-small"), tenant="a")
        assert len(store.history("service/matmul-small")) == 2
