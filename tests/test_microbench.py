"""Tests for repro.microbench."""

import numpy as np
import pytest

from repro.microbench import (
    MicrobenchSuite,
    Microbenchmark,
    characterize_empirical,
    characterize_simulated,
    detect_cache_cliffs,
    make_pointer_chain,
    measure_peak_flops,
    pointer_chase_latency,
    run_microbenchmark,
    run_stream,
    simulated_latency_sweep,
    simulated_op_throughput,
    simulated_peak_flops,
    stream_benchmark,
)
from repro.timing import WorkCount


class TestHarness:
    def test_runs_and_derives_rates(self):
        bench = Microbenchmark(
            "axpy",
            setup=lambda: (np.ones(10000), np.ones(10000)),
            fn=lambda x, y: np.add(x, y, out=y),
            work=lambda x, y: WorkCount(flops=float(x.size),
                                        loads_bytes=16.0 * x.size,
                                        stores_bytes=8.0 * x.size),
        )
        result = run_microbenchmark(bench, repetitions=3, warmup=1)
        assert result.flops_per_s > 0
        assert result.bytes_per_s > 0
        assert result.best_bytes_per_s >= result.bytes_per_s * 0.5

    def test_setup_must_return_tuple(self):
        bench = Microbenchmark("bad", setup=lambda: np.ones(4),
                               fn=lambda x: x, work=lambda x: WorkCount())
        with pytest.raises(TypeError):
            run_microbenchmark(bench)

    def test_suite_rejects_duplicates(self):
        suite = MicrobenchSuite("s")
        suite.add(stream_benchmark("copy", 1000))
        with pytest.raises(ValueError):
            suite.add(stream_benchmark("copy", 1000))

    def test_suite_runs_all(self):
        suite = MicrobenchSuite("s")
        suite.add(stream_benchmark("copy", 1000)).add(stream_benchmark("triad", 1000))
        results = suite.run(repetitions=2, warmup=0)
        assert len(results) == 2
        report = MicrobenchSuite.report(results)
        assert "stream-copy-1000" in report


class TestStream:
    def test_all_four_kernels(self):
        results = run_stream(n=200_000, repetitions=2)
        assert set(results) == {"copy", "scale", "add", "triad"}
        for r in results.values():
            assert r.best_bytes_per_s > 1e8  # any machine beats 100 MB/s

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            stream_benchmark("fma", 100)

    def test_cliff_detection(self):
        sweep = {1024: 100e9, 4096: 95e9, 16384: 50e9, 65536: 48e9, 262144: 20e9}
        cliffs = detect_cache_cliffs(sweep, drop_threshold=0.3)
        assert cliffs == [4096, 65536]

    def test_cliff_detection_flat(self):
        assert detect_cache_cliffs({1: 1e9, 2: 0.99e9}) == []


class TestPointerChase:
    def test_chain_is_single_cycle(self):
        chain = make_pointer_chain(257, seed=1)
        seen = set()
        p = 0
        for _ in range(257):
            assert p not in seen
            seen.add(p)
            p = int(chain[p])
        assert p == 0  # back to start after exactly n hops

    def test_strided_chain(self):
        chain = make_pointer_chain(8, stride_elements=3)
        assert sorted(np.asarray(chain).tolist()) == list(range(8))

    def test_non_coprime_stride_rejected(self):
        with pytest.raises(ValueError):
            make_pointer_chain(8, stride_elements=2)

    def test_latency_positive(self):
        chain = make_pointer_chain(64, seed=2)
        assert pointer_chase_latency(chain, hops=2000, repetitions=2) > 0

    def test_simulated_sweep_increases_with_footprint(self, cpu):
        sweep = simulated_latency_sweep(
            cpu, [8 * 1024, 256 * 1024, 64 * 1024 * 1024], hops_per_point=6000)
        values = [sweep[k] for k in sorted(sweep)]
        assert values[0] < values[1] < values[2]


class TestComputePeaks:
    def test_empirical_peak_positive(self):
        result = measure_peak_flops(n=128, repetitions=2)
        assert result.flops_per_s > 1e8

    def test_simulated_peak_formula(self, cpu, table):
        peak = simulated_peak_flops(cpu, table, "vfmadd")
        # 4 lanes * 2 flops / 0.5 rthroughput * freq * cores
        assert peak == pytest.approx(4 * 2 / 0.5 * cpu.frequency_hz * cpu.cores)

    def test_simulated_peak_rejects_non_flop_ops(self, cpu, table):
        with pytest.raises(ValueError):
            simulated_peak_flops(cpu, table, "load")

    def test_op_throughput_table(self, table):
        tput = simulated_op_throughput(table)
        assert tput["fmadd"] == pytest.approx(2.0)  # 2 ports
        assert tput["store"] == pytest.approx(1.0)


class TestCharacterization:
    def test_simulated_characterization(self, cpu, table):
        ch = characterize_simulated(cpu, table)
        assert ch.source == "simulated"
        assert ch.peak_flops == pytest.approx(cpu.peak_flops())
        assert ch.ridge_point == pytest.approx(cpu.ridge_point())
        assert len(ch.latency_by_footprint) == 4
        assert "GFLOP/s" in ch.report()

    def test_empirical_characterization_runs(self):
        ch = characterize_empirical(stream_n=100_000, dot_n=96, repetitions=2)
        assert ch.source == "empirical"
        assert ch.peak_flops > ch.stream_bandwidth / 8  # > 1 flop per element
