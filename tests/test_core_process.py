"""Tests for the seven-stage process engine and requirements."""

import pytest

from repro.core import (
    EngineeringProcess,
    Feasibility,
    Metric,
    ProcessError,
    Requirement,
    assess_feasibility,
)


class TestRequirement:
    def test_latency_lower_is_better(self):
        req = Requirement("halve it", Metric.LATENCY_SECONDS, 0.5)
        assert req.met_by(0.4)
        assert not req.met_by(0.6)

    def test_speedup_higher_is_better(self):
        req = Requirement("4x", Metric.SPEEDUP, 4.0)
        assert req.met_by(4.5)
        assert not req.met_by(3.9)

    def test_gap_ratio(self):
        req = Requirement("4x", Metric.SPEEDUP, 4.0)
        assert req.gap(2.0) == 2.0
        assert req.gap(8.0) == 0.5

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            Requirement("x", Metric.SPEEDUP, 0.0)


class TestFeasibility:
    def test_comfortable_target_feasible(self):
        req = Requirement("x", Metric.FLOPS, 1e9)
        assert assess_feasibility(req, bound=1e11) is Feasibility.FEASIBLE

    def test_target_beyond_bound_infeasible(self):
        req = Requirement("x", Metric.FLOPS, 1e12)
        assert assess_feasibility(req, bound=1e11) is Feasibility.INFEASIBLE

    def test_near_bound_marginal(self):
        req = Requirement("x", Metric.FLOPS, 0.9e11)
        assert assess_feasibility(req, bound=1e11) is Feasibility.MARGINAL

    def test_latency_direction(self):
        req = Requirement("x", Metric.LATENCY_SECONDS, 0.1)
        assert assess_feasibility(req, bound=0.01) is Feasibility.FEASIBLE
        assert assess_feasibility(req, bound=0.5) is Feasibility.INFEASIBLE


class TestProcessHappyPath:
    def make(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("3x", Metric.SPEEDUP, 3.0))
        proc.record_baseline(1.0, "naive")
        proc.assess_feasibility(bound=0.1)
        return proc

    def test_full_walkthrough(self):
        proc = self.make()
        proc.propose("tiling", "blocking", predicted_seconds=0.4)
        proc.apply("tiling", 0.5)
        assert proc.assess() is False  # 2x < 3x
        assert proc.iteration == 2
        proc.propose("simd", "vectorize")
        proc.apply("simd", 0.25)
        assert proc.assess() is True
        report = proc.report()
        assert "tiling" in report and "simd" in report
        assert "MET" in report

    def test_prediction_error_recorded(self):
        proc = self.make()
        attempt = proc.propose("opt", predicted_seconds=0.5)
        proc.apply("opt", 0.4)
        assert attempt.prediction_error() == pytest.approx(0.25)

    def test_latency_requirement_assessment(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("under 0.3s", Metric.LATENCY_SECONDS, 0.3))
        proc.record_baseline(1.0)
        proc.assess_feasibility(bound=0.05)
        proc.propose("opt")
        proc.apply("opt", 0.2)
        assert proc.assess() is True


class TestProcessDiscipline:
    def test_baseline_requires_requirement(self):
        proc = EngineeringProcess("app")
        with pytest.raises(ProcessError):
            proc.record_baseline(1.0)

    def test_feasibility_requires_baseline(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("x", Metric.SPEEDUP, 2.0))
        with pytest.raises(ProcessError):
            proc.assess_feasibility(0.1)

    def test_propose_requires_feasibility(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("x", Metric.SPEEDUP, 2.0))
        proc.record_baseline(1.0)
        with pytest.raises(ProcessError):
            proc.propose("opt")

    def test_cannot_optimize_toward_infeasible_target(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("1000x", Metric.SPEEDUP, 1000.0))
        proc.record_baseline(1.0)
        assert proc.assess_feasibility(bound=0.1) is Feasibility.INFEASIBLE
        with pytest.raises(ProcessError):
            proc.propose("hopeless")

    def test_apply_requires_proposal(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("x", Metric.SPEEDUP, 2.0))
        proc.record_baseline(1.0)
        proc.assess_feasibility(0.1)
        with pytest.raises(ProcessError):
            proc.apply("never-proposed", 0.5)

    def test_assess_requires_application(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("x", Metric.SPEEDUP, 2.0))
        proc.record_baseline(1.0)
        proc.assess_feasibility(0.1)
        proc.propose("opt")
        with pytest.raises(ProcessError):
            proc.assess()

    def test_duplicate_proposal_rejected(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("x", Metric.SPEEDUP, 2.0))
        proc.record_baseline(1.0)
        proc.assess_feasibility(0.1)
        proc.propose("opt")
        with pytest.raises(ProcessError):
            proc.propose("opt")

    def test_closed_after_report(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("x", Metric.SPEEDUP, 2.0))
        proc.record_baseline(1.0)
        proc.report()
        with pytest.raises(ProcessError):
            proc.record_baseline(2.0)

    def test_history_logged(self):
        proc = EngineeringProcess("app")
        proc.set_requirement(Requirement("x", Metric.SPEEDUP, 2.0))
        proc.record_baseline(1.0)
        assert any("S1" in h for h in proc.history)
        assert any("S2" in h for h in proc.history)
