"""Tests for the GPU microarchitecture models (Wong et al. reproductions)."""

import pytest

from repro.microbench import (
    bank_conflict_factor,
    coalesced_transactions,
    divergence_factor,
    shared_memory_sweep,
    warps_to_hide_latency,
)


class TestCoalescing:
    def test_unit_stride_fp32(self):
        # 32 threads x 4 B = 128 B = 4 transactions of 32 B
        assert coalesced_transactions(1, element_bytes=4) == 4

    def test_unit_stride_fp64(self):
        assert coalesced_transactions(1, element_bytes=8) == 8

    def test_broadcast_is_one(self):
        assert coalesced_transactions(0) == 1

    def test_large_stride_fully_scattered(self):
        # one transaction per thread: the 32x blow-up
        assert coalesced_transactions(8, element_bytes=4) == 32

    def test_monotone_in_stride(self):
        values = [coalesced_transactions(s) for s in (1, 2, 4, 8)]
        assert values == sorted(values)
        assert values[-1] == 32

    def test_traffic_ratio_matches_wong(self):
        # stride-8 fp32 moves 8x the useful data of stride-1
        assert (coalesced_transactions(8) / coalesced_transactions(1)) == 8


class TestBankConflicts:
    def test_conflict_free_unit_stride(self):
        assert bank_conflict_factor(1) == 1

    def test_power_of_two_staircase(self):
        assert [bank_conflict_factor(s) for s in (1, 2, 4, 8, 16, 32)] == \
               [1, 2, 4, 8, 16, 32]

    def test_odd_strides_conflict_free(self):
        for stride in (3, 5, 7, 31, 33):
            assert bank_conflict_factor(stride) == 1

    def test_sweep_covers_range(self):
        sweep = shared_memory_sweep(33)
        assert sweep[1] == 1 and sweep[32] == 32 and sweep[33] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bank_conflict_factor(0)
        with pytest.raises(ValueError):
            bank_conflict_factor(1, banks=33)


class TestDivergence:
    def test_uniform_warps_no_penalty(self):
        assert divergence_factor(0.0) == 1.0
        assert divergence_factor(1.0) == 1.0

    def test_coin_flip_always_diverges(self):
        assert divergence_factor(0.5) == pytest.approx(2.0, abs=1e-6)

    def test_symmetry(self):
        assert divergence_factor(0.2) == pytest.approx(divergence_factor(0.8))

    def test_bounded(self):
        for f in (0.01, 0.1, 0.3, 0.7, 0.99):
            assert 1.0 <= divergence_factor(f) <= 2.0


class TestLatencyHiding:
    def test_rule_of_thumb(self):
        assert warps_to_hide_latency(400, 10) == 40

    def test_compute_heavy_needs_few_warps(self):
        assert warps_to_hide_latency(400, 400) == 1

    def test_at_least_one_warp(self):
        assert warps_to_hide_latency(0, 10) == 1
