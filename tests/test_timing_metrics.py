"""Tests for repro.timing.metrics."""

import pytest

from repro.timing import (
    WorkCount,
    arithmetic_intensity,
    bandwidth,
    cpi,
    flops_rate,
    ipc,
    karp_flatt,
    parallel_efficiency,
    scaled_efficiency,
    time_from_rate,
)


class TestWorkCount:
    def test_totals_and_intensity(self):
        w = WorkCount(flops=100, loads_bytes=40, stores_bytes=10)
        assert w.bytes_total == 50
        assert w.intensity == 2.0

    def test_traffic_free_work_has_infinite_intensity(self):
        assert WorkCount(flops=10).intensity == float("inf")

    def test_addition(self):
        a = WorkCount(1, 2, 3, 4)
        b = WorkCount(10, 20, 30, 40)
        c = a + b
        assert (c.flops, c.loads_bytes, c.stores_bytes, c.int_ops) == (11, 22, 33, 44)

    def test_scale(self):
        w = WorkCount(2, 4, 6).scale(3)
        assert (w.flops, w.loads_bytes, w.stores_bytes) == (6, 12, 18)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkCount(1).scale(-1)

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            WorkCount(flops=-1)


class TestRates:
    def test_flops_rate(self):
        assert flops_rate(1e9, 0.5) == 2e9

    def test_bandwidth(self):
        assert bandwidth(100, 2) == 50

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            flops_rate(1, 0)

    def test_arithmetic_intensity(self):
        assert arithmetic_intensity(100, 50) == 2.0

    def test_time_from_rate_inverts(self):
        assert time_from_rate(1e9, 2e9) == 0.5


class TestParallelMetrics:
    def test_efficiency(self):
        assert parallel_efficiency(8.0, 16) == 0.5

    def test_scaled_efficiency(self):
        assert scaled_efficiency(1.0, 1.25) == 0.8

    def test_karp_flatt_recovers_serial_fraction(self):
        # S from Amdahl with s=0.1, p=8: karp-flatt must return exactly 0.1
        s = 0.1
        p = 8
        speedup = 1.0 / (s + (1 - s) / p)
        assert karp_flatt(speedup, p) == pytest.approx(s)

    def test_karp_flatt_needs_two_workers(self):
        with pytest.raises(ValueError):
            karp_flatt(1.0, 1)


class TestCpiIpc:
    def test_cpi_ipc_reciprocal(self):
        assert cpi(100, 50) == 2.0
        assert ipc(100, 50) == 0.5
        assert cpi(10, 4) == pytest.approx(1.0 / ipc(10, 4))

    def test_cpi_rejects_zero_instructions(self):
        with pytest.raises(ValueError):
            cpi(10, 0)
