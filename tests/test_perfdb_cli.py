"""End-to-end tests for ``python -m repro.perfdb`` (record/compare/report).

These drive the real CLI against a tiny self-contained benchmark suite in
a temp directory.  The suite's kernel is a busy-wait of a fixed duration,
multiplied by the ``DEMO_SLOW`` environment variable — the same injected-
slowdown pattern the CI perf-gate job uses, but milliseconds cheap.
"""

import textwrap

import pytest

from repro.perfdb import PerfStore
from repro.perfdb.cli import main

SUITE_CONFTEST = """\
from repro.perfdb.capture import install_capture


def pytest_configure(config):
    install_capture(config)
"""

SUITE_TEST = """\
import os
import time

import pytest

from repro.timing import measure

SLOW = float(os.environ.get("DEMO_SLOW", "1") or "1")


def busy_wait():
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < 0.002 * SLOW:
        pass


def test_bench_demo():
    res = measure(busy_wait, repetitions=7, warmup=1)
    assert res.best > 0


@pytest.mark.perfdb_skip
def test_meta_not_captured():
    res = measure(busy_wait, repetitions=3, warmup=0)
    assert res.best > 0
"""


@pytest.fixture
def suite(tmp_path):
    bench = tmp_path / "suite"
    bench.mkdir()
    (bench / "conftest.py").write_text(SUITE_CONFTEST)
    (bench / "test_bench_demo.py").write_text(SUITE_TEST)
    return bench


def cli(db, *args):
    return main(["--store", str(db), *args])


class TestRecord:
    def test_record_stores_only_unmarked_benchmarks(self, suite, tmp_path):
        db = tmp_path / "db"
        assert cli(db, "record", str(suite), "--passes", "1",
                   "--label", "first") == 0
        (run,) = PerfStore(db).runs()
        assert run.label == "first"
        assert run.machine["calibration"]["best_seconds"] > 0
        ids = list(run.benchmarks)
        assert len(ids) == 1 and ids[0].endswith("test_bench_demo::measure0")
        assert len(run.benchmarks[ids[0]].times) == 7

    def test_passes_pool_samples(self, suite, tmp_path):
        db = tmp_path / "db"
        assert cli(db, "record", str(suite), "--passes", "2") == 0
        (run,) = PerfStore(db).runs()
        (bench,) = run.benchmarks.values()
        assert len(bench.times) == 14  # 7 repetitions x 2 pooled passes

    def test_rel_ci_stops_passes_early(self, suite, tmp_path):
        # the busy-wait demo is quiet, so two pooled passes already pin
        # the median well inside 25% — the third pass must be skipped
        db = tmp_path / "db"
        assert cli(db, "record", str(suite), "--passes", "3",
                   "--min-passes", "2", "--rel-ci", "0.25") == 0
        (run,) = PerfStore(db).runs()
        (bench,) = run.benchmarks.values()
        assert len(bench.times) == 14  # stopped after 2 of 3 passes
        assert run.metrics["perfdb.record.stopped_early"] is True
        assert run.metrics["perfdb.record.passes"] == 2
        assert run.metrics["perfdb.record.max_passes"] == 3
        assert 0 <= run.metrics["perfdb.record.worst_rel_ci"] <= 0.25

    def test_rel_ci_zero_disables_early_stop(self, suite, tmp_path):
        db = tmp_path / "db"
        assert cli(db, "record", str(suite), "--passes", "3",
                   "--min-passes", "2", "--rel-ci", "0") == 0
        (run,) = PerfStore(db).runs()
        (bench,) = run.benchmarks.values()
        assert len(bench.times) == 21  # all 3 passes ran
        assert run.metrics["perfdb.record.stopped_early"] is False

    def test_failing_suite_stores_nothing(self, suite, tmp_path):
        (suite / "test_bench_demo.py").write_text(
            "def test_bench_broken():\n    assert False\n")
        db = tmp_path / "db"
        assert cli(db, "record", str(suite), "--passes", "1") == 2
        assert PerfStore(db).runs() == []

    def test_suite_without_capture_conftest_errors(self, suite, tmp_path):
        (suite / "conftest.py").unlink()
        db = tmp_path / "db"
        assert cli(db, "record", str(suite), "--passes", "1") == 2
        assert PerfStore(db).runs() == []


class TestGateCycle:
    def test_no_change_passes_and_injected_slowdown_fails(
            self, suite, tmp_path, monkeypatch, capsys):
        db = tmp_path / "db"
        assert cli(db, "record", str(suite), "--passes", "1",
                   "--label", "base") == 0
        assert cli(db, "baseline", "latest") == 0
        assert cli(db, "record", str(suite), "--passes", "1",
                   "--label", "same") == 0
        assert cli(db, "compare") == 0

        monkeypatch.setenv("DEMO_SLOW", "3")
        assert cli(db, "record", str(suite), "--passes", "1",
                   "--label", "slow") == 0
        assert cli(db, "compare") == 1
        out = capsys.readouterr().out
        assert "regressed" in out and "gate FAIL" in out

    def test_compare_needs_two_runs(self, suite, tmp_path, capsys):
        db = tmp_path / "db"
        assert cli(db, "compare") == 2
        assert cli(db, "record", str(suite), "--passes", "1") == 0
        assert cli(db, "compare") == 2

    def test_explicit_candidate_and_baseline(self, suite, tmp_path, capsys):
        db = tmp_path / "db"
        for label in ("one", "two"):
            assert cli(db, "record", str(suite), "--passes", "1",
                       "--label", label) == 0
        runs = PerfStore(db).runs()
        assert cli(db, "compare", "--candidate", runs[0].run_id,
                   "--baseline", runs[1].run_id) == 0
        assert cli(db, "compare", "--baseline", "bogus-run-id") == 2


class TestReportAndBaseline:
    def test_report_shows_history_sparkline(self, suite, tmp_path, capsys):
        db = tmp_path / "db"
        for label in ("one", "two"):
            assert cli(db, "record", str(suite), "--passes", "1",
                       "--label", label) == 0
        assert cli(db, "report") == 0
        out = capsys.readouterr().out
        assert "test_bench_demo::measure0" in out
        assert any(c in out for c in "▁▂▃▄▅▆▇█")

    def test_baseline_show_and_pin(self, suite, tmp_path, capsys):
        db = tmp_path / "db"
        assert cli(db, "baseline") == 0
        assert "(none pinned)" in capsys.readouterr().out
        assert cli(db, "record", str(suite), "--passes", "1",
                   "--label", "base") == 0
        assert cli(db, "baseline", "latest") == 0
        assert cli(db, "baseline") == 0
        assert "base" in capsys.readouterr().out
        assert cli(db, "baseline", "no-such-run") == 2
