"""Tests for the HTTP front end: routes, streaming, shedding, cancel."""

import http.client
import json

import pytest

from repro.observe.metrics import MetricsRegistry
from repro.perfdb.store import PerfStore
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.engine import JobEngine
from repro.service.httpd import start_server
from repro.service.quota import AdmissionController


@pytest.fixture()
def service(tmp_path):
    engine = JobEngine(
        store=PerfStore(tmp_path / "perfdb"), workers=2,
        admission=AdmissionController(max_queue_depth=256,
                                      tenant_rate=10_000, tenant_burst=10_000),
        metrics=MetricsRegistry())
    server, _ = start_server(engine, port=0)
    host, port = server.server_address[:2]
    yield ServiceClient(host, port), engine
    server.shutdown()
    engine.shutdown()


TINY = {"name": "tiny", "kernel": "matmul", "variant": "ijk",
        "args": {"n": 4, "seed": 0}, "repetitions": 1, "warmup": 0}


class TestRoutes:
    def test_healthz(self, service):
        client, _ = service
        doc = client.health()
        assert doc["ok"] is True
        assert doc["workers"] == 2

    def test_manifest_registration_and_listing(self, service):
        client, _ = service
        created = client.register_manifest(TINY)
        assert created["name"] == "tiny"
        assert "tiny" in client.manifests()
        # duplicate registration is a conflict unless ?replace=1
        with pytest.raises(RuntimeError, match="409"):
            client.register_manifest(TINY)
        client.register_manifest(dict(TINY, repetitions=2), replace=True)

    def test_invalid_manifest_is_400(self, service):
        client, _ = service
        with pytest.raises(RuntimeError, match="400"):
            client.register_manifest(dict(TINY, kernel="fft"))

    def test_submit_executes_and_records(self, service):
        client, engine = service
        client.register_manifest(TINY)
        doc = client.submit("tiny", tenant="alice")
        assert doc["state"] in ("queued", "running", "done")
        final = client.wait(doc["job_id"], timeout=60.0)
        assert final["state"] == "done", final["error"]
        assert final["result"]["metrics"]["best_seconds"] > 0
        assert engine.store.runs(tenant="alice")

    def test_cached_resubmission_returns_200_with_cached_flag(self, service):
        client, engine = service
        client.register_manifest(TINY)
        first = client.submit("tiny")
        client.wait(first["job_id"], timeout=60.0)
        second = client.submit("tiny")
        assert second["cached"] is True
        assert second["state"] == "done"
        assert engine.metrics.counter("service.cache_hits").value == 1

    def test_unknown_manifest_is_404(self, service):
        client, _ = service
        with pytest.raises(RuntimeError, match="404"):
            client.submit("no-such-manifest")

    def test_bad_kind_is_400(self, service):
        client, _ = service
        with pytest.raises(RuntimeError, match="400"):
            client.submit("matmul-small", kind="daydream")

    def test_jobs_listing_filters_by_tenant(self, service):
        client, _ = service
        client.register_manifest(TINY)
        a = client.submit("tiny", tenant="a")
        client.wait(a["job_id"], timeout=60.0)
        assert {j["tenant"] for j in client.jobs("a")} == {"a"}
        assert client.jobs("nobody") == []

    def test_stats_exposes_store_health(self, service):
        client, _ = service
        stats = client.stats()
        assert stats["workers"] == 2
        assert "corrupt_lines" in stats["store"]

    def test_unknown_route_is_404(self, service):
        client, _ = service
        status, doc, _ = client._request("GET", "/no/such/route")
        assert status == 404 and "error" in doc


class TestShedding:
    def test_seeded_burst_sheds_429_with_retry_after(self, tmp_path):
        engine = JobEngine(
            store=None, workers=1,
            admission=AdmissionController(max_queue_depth=256,
                                          tenant_rate=1.0, tenant_burst=2.0),
            metrics=MetricsRegistry())
        server, _ = start_server(engine, port=0)
        host, port = server.server_address[:2]
        client = ServiceClient(host, port)
        try:
            outcomes = []
            for _ in range(6):
                try:
                    outcomes.append(client.submit(
                        "synthetic-sleep", kind="synthetic", tenant="burst",
                        params={"service_seconds": 0.0}))
                except ServiceUnavailable as exc:
                    outcomes.append(exc)
            shed = [o for o in outcomes if isinstance(o, ServiceUnavailable)]
            # burst of 2 tokens at 1/s: most of a fast 6-burst must shed
            assert len(shed) >= 3
            assert all(exc.retry_after > 0 for exc in shed)
            assert engine.metrics.counter("service.jobs_shed").value \
                == len(shed)
        finally:
            server.shutdown()
            engine.shutdown()


class TestEvents:
    def test_event_stream_is_ndjson_until_terminal(self, service):
        client, _ = service
        doc = client.submit("synthetic-sleep", kind="synthetic",
                            params={"service_seconds": 0.05})
        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=30.0)
        try:
            conn.request("GET", f"/jobs/{doc['job_id']}/events")
            resp = conn.getresponse()
            assert resp.status == 200
            assert resp.getheader("Content-Type") == "application/x-ndjson"
            lines = [json.loads(line)
                     for line in resp.read().decode().splitlines() if line]
        finally:
            conn.close()
        assert lines, "stream produced no events"
        assert lines[-1]["state"] == "done"
        versions = [line["version"] for line in lines]
        assert versions == sorted(versions)

    def test_event_stream_unknown_job_is_404(self, service):
        client, _ = service
        status, doc, _ = client._request("GET", "/jobs/bogus/events")
        assert status == 404


class TestCancel:
    def test_delete_cancels_queued_job(self, tmp_path):
        # engine deliberately NOT started: the job can never leave `queued`
        engine = JobEngine(store=None, workers=1, metrics=MetricsRegistry())
        server = None
        try:
            from repro.service.httpd import ServiceServer
            server = ServiceServer(("127.0.0.1", 0), engine)
            import threading
            threading.Thread(target=server.serve_forever, daemon=True).start()
            host, port = server.server_address[:2]
            client = ServiceClient(host, port)
            doc = client.submit("matmul-small")
            cancelled = client.cancel(doc["job_id"])
            assert cancelled["state"] == "cancelled"
            # cancelling a terminal job is a no-op, not an error
            again = client.cancel(doc["job_id"])
            assert again["state"] == "cancelled"
        finally:
            if server is not None:
                server.shutdown()
            engine.shutdown()

    def test_delete_unknown_job_is_404(self, service):
        client, _ = service
        status, doc, _ = client._request("DELETE", "/jobs/bogus")
        assert status == 404
