"""Tests for repro.observe.export: Chrome trace round-trips and the gantt."""

import json

import pytest

from repro.observe import (
    MetricsRegistry,
    Span,
    Tracer,
    auto_glyphs,
    chrome_trace,
    gantt_text,
    tracing,
    write_chrome_trace,
)


def spans_fixture():
    return [
        Span("outer", start=10.0, end=10.010, category="timing", pid=1, tid=1,
             span_id=1),
        Span("inner", start=10.002, end=10.006, category="timing", pid=1,
             tid=1, span_id=2, parent_id=1, attrs={"seconds": 0.004}),
        Span("chunk", start=10.001, end=10.009, category="backend", pid=2,
             tid=7, span_id=1, attrs={"rank": 0}),
    ]


class TestChromeTrace:
    def test_events_are_well_formed(self):
        doc = chrome_trace(spans_fixture())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 3
        for e in events:
            assert e["ph"] == "X"
            assert isinstance(e["ts"], float) and e["ts"] >= 0
            assert isinstance(e["dur"], float) and e["dur"] >= 0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            assert isinstance(e["name"], str) and isinstance(e["cat"], str)

    def test_timestamps_relative_to_earliest_start_in_us(self):
        doc = chrome_trace(spans_fixture())
        by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert by_name["outer"]["ts"] == pytest.approx(0.0)
        assert by_name["inner"]["ts"] == pytest.approx(2000.0)
        assert by_name["outer"]["dur"] == pytest.approx(10000.0)

    def test_rank_attrs_become_thread_name_metadata(self):
        doc = chrome_trace(spans_fixture())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["pid"] == 2 and meta[0]["tid"] == 7
        assert meta[0]["args"]["name"] == "rank 0"

    def test_document_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        doc = chrome_trace(spans_fixture(), metrics=registry)
        text = json.dumps(doc)
        back = json.loads(text)
        assert back["metrics"]["counters"]["c"] == 2
        assert back["displayTimeUnit"] == "ms"

    def test_nonfinite_and_exotic_attrs_are_clamped(self):
        spans = [Span("x", 0, 1, attrs={"inf": float("inf"),
                                        "nested": {"a": (1, 2)},
                                        "obj": object()})]
        doc = chrome_trace(spans)
        args = doc["traceEvents"][0]["args"]
        json.dumps(doc)
        assert args["inf"] == "inf"
        assert args["nested"] == {"a": [1, 2]}
        assert isinstance(args["obj"], str)

    def test_write_round_trips_through_json_tool(self, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, spans_fixture())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 4  # 3 spans + 1 metadata

    def test_empty_trace_is_valid(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        json.dumps(doc)


class TestNesting:
    def test_spans_nest_without_overlap_per_thread(self):
        """Within one (pid, tid) track, spans are properly nested: any two
        either disjoint or one containing the other."""
        tracer = Tracer(metrics=MetricsRegistry())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                with tracer.span("d"):
                    pass
        spans = tracer.spans
        for i, s1 in enumerate(spans):
            for s2 in spans[i + 1:]:
                if (s1.pid, s1.tid) != (s2.pid, s2.tid):
                    continue
                disjoint = s1.end <= s2.start or s2.end <= s1.start
                nested = ((s1.start <= s2.start and s2.end <= s1.end)
                          or (s2.start <= s1.start and s1.end <= s2.end))
                assert disjoint or nested, (s1, s2)


class TestGantt:
    def test_one_row_per_track_with_glyphs(self):
        spans = [Span("compute", 0.0, 1.0, category="compute", tid=0),
                 Span("compute", 0.5, 1.0, category="compute", tid=1)]
        text = gantt_text(spans, width=10, glyphs={"compute": "#"},
                          track=lambda s: s.tid, label="rank")
        lines = text.splitlines()
        assert lines[1].startswith("rank   0 |")
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5
        assert "legend: #=compute" in text

    def test_zero_length_span_shows_in_idle_bucket(self):
        spans = [Span("barrier", 0.2, 0.2, category="barrier", tid=0),
                 Span("compute", 0.0, 1.0, category="compute", tid=1)]
        text = gantt_text(spans, width=10,
                          glyphs={"barrier": "B", "compute": "#"},
                          track=lambda s: s.tid, label="rank")
        row0 = text.splitlines()[1]
        cells = row0[row0.index("|") + 1:-1]
        assert cells[2] == "B"  # 0.2 lands in bucket 2 of an idle row

    def test_zero_length_span_outvoted_only_when_bucket_busy(self):
        # bucket 0 is 80% compute: the sliver wins; bucket 2's instant shows
        spans = [Span("compute", 0.0, 0.08, category="compute", tid=0),
                 Span("barrier", 0.01, 0.01, category="barrier", tid=0),
                 Span("barrier", 0.25, 0.25, category="barrier", tid=0),
                 Span("compute", 0.0, 1.0, category="compute", tid=1)]
        text = gantt_text(spans, width=10,
                          glyphs={"barrier": "B", "compute": "#"},
                          track=lambda s: s.tid, label="rank")
        row0 = text.splitlines()[1]
        cells = row0[row0.index("|") + 1:-1]
        assert cells[0] == "#"  # busy bucket: dominant state wins
        assert cells[2] == "B"  # idle bucket: the instant is visible

    def test_empty_run(self):
        assert gantt_text([]) == "(empty run)"

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            gantt_text([Span("x", 0, 1)], width=5)

    def test_tracer_gantt_smoke(self):
        with tracing() as tracer:
            with tracer.span("timing.measure"):
                pass
        assert "timeline:" in tracer.gantt(width=40) or \
            tracer.gantt(width=40) == "(empty run)"


class TestAutoGlyphs:
    def test_first_letter_then_pool(self):
        glyphs = auto_glyphs(["timing", "tuning", "backend"])
        assert glyphs["backend"] == "B"
        assert len(set(glyphs.values())) == 3

    def test_stable_assignment(self):
        kinds = ["b", "a", "c"]
        assert auto_glyphs(kinds) == auto_glyphs(sorted(kinds))
