"""Tests for the discrete-event mini-MPI and trace rendering."""

import pytest

from repro.distributed import (
    AlphaBeta,
    DeadlockError,
    MPISimulator,
    bsp_iterations,
    distributed_matvec,
    halo_exchange_stencil,
    ping_pong,
    profile_text,
    state_profile,
    timeline_text,
)


@pytest.fixture(scope="module")
def net():
    return AlphaBeta(alpha=1e-6, beta=1e9)


class TestPointToPoint:
    def test_ping_pong_exact_makespan(self, net):
        sim = MPISimulator(2, net)
        result = sim.run(ping_pong(5, 4096))
        assert result.makespan == pytest.approx(10 * net.time(4096))
        assert result.messages_sent == 10
        assert result.bytes_sent == 10 * 4096

    def test_recv_returns_message_size(self, net):
        got = []

        def program(rank):
            if rank.rank == 0:
                yield rank.send(1, 777)
            else:
                size = yield rank.recv(0)
                got.append(size)

        MPISimulator(2, net).run(program)
        assert got == [777]

    def test_wait_time_recorded(self, net):
        def program(rank):
            if rank.rank == 0:
                yield rank.compute(1e-3)  # receiver waits for this
                yield rank.send(1, 100)
            else:
                yield rank.recv(0)

        result = MPISimulator(2, net).run(program)
        assert result.time_in("wait") == pytest.approx(1e-3 + net.time(100),
                                                       rel=0.01)

    def test_tag_matching(self, net):
        order = []

        def program(rank):
            if rank.rank == 0:
                yield rank.send(1, 10, tag=1)
                yield rank.send(1, 20, tag=2)
            else:
                b = yield rank.recv(0, tag=2)
                a = yield rank.recv(0, tag=1)
                order.extend([a, b])

        MPISimulator(2, net).run(program)
        assert order == [10, 20]

    def test_deadlock_detected(self, net):
        def program(rank):
            yield rank.recv((rank.rank + 1) % rank.size)

        with pytest.raises(DeadlockError):
            MPISimulator(2, net).run(program)

    def test_self_send_rejected(self, net):
        def program(rank):
            yield rank.send(rank.rank, 10)

        with pytest.raises(ValueError):
            MPISimulator(2, net).run(program)

    def test_non_generator_program_rejected(self, net):
        with pytest.raises(TypeError):
            MPISimulator(2, net).run(lambda rank: None)


class TestCollectivesInSim:
    def test_barrier_synchronizes(self, net):
        def program(rank):
            yield rank.compute(1e-3 * (rank.rank + 1))
            yield rank.barrier()

        result = MPISimulator(4, net).run(program)
        # all ranks end together, after the slowest
        assert result.makespan >= 4e-3
        assert max(result.finish_times) - min(result.finish_times) < 1e-12

    def test_allreduce_charged_ring_cost(self, net):
        from repro.distributed import allreduce_ring

        def program(rank):
            yield rank.allreduce(1 << 20)

        result = MPISimulator(8, net).run(program)
        assert result.makespan == pytest.approx(allreduce_ring(net, 8, 1 << 20))

    def test_allgather_returns_total_bytes(self, net):
        got = []

        def program(rank):
            total = yield rank.allgather(100)
            got.append(total)

        MPISimulator(4, net).run(program)
        assert got == [400] * 4


class TestPrograms:
    def test_halo_exchange_runs_and_is_mostly_compute(self, net):
        sim = MPISimulator(4, net)
        result = sim.run(halo_exchange_stencil(10, 128, 1024, 1e-3))
        assert result.communication_fraction() < 0.2
        assert result.time_in("compute") == pytest.approx(4 * 10 * 1e-3)

    def test_halo_exchange_no_deadlock_odd_ranks(self, net):
        result = MPISimulator(5, net).run(halo_exchange_stencil(3, 16, 512, 1e-5))
        assert result.makespan > 0

    def test_matvec_strong_scaling_shape(self, net):
        # makespan decreases with ranks until communication dominates
        times = {}
        for p in (1, 2, 4, 8):
            result = MPISimulator(p, net).run(
                distributed_matvec(256, 3, seconds_per_flop=2e-8))
            times[p] = result.makespan
        assert times[2] < times[1]
        assert times[4] < times[2]

    def test_bsp_imbalance_shows_as_wait(self, net):
        balanced = MPISimulator(4, net).run(bsp_iterations(3, 1e-3, 1024))
        skewed = MPISimulator(4, net).run(
            bsp_iterations(3, 1e-3, 1024, imbalance=1.0))
        assert skewed.makespan > balanced.makespan * 1.5


class TestTracing:
    def test_timeline_has_row_per_rank(self, net):
        result = MPISimulator(3, net).run(bsp_iterations(2, 1e-4, 256))
        text = timeline_text(result, width=40)
        assert text.count("rank ") == 3
        assert "#" in text  # compute glyph present

    def test_zero_length_event_visible_in_idle_bucket(self):
        """Regression: a zero-length barrier used to carry a 1e-18 weight
        that any real time in the bucket outvoted, so instantaneous events
        vanished from the gantt.  In an idle-dominated bucket the event's
        glyph must render."""
        from repro.distributed import SimResult, TraceEvent

        result = SimResult(
            n_ranks=2,
            finish_times=(0.04, 1.0),
            events=(
                TraceEvent(0, 0.0, 0.04, "compute"),   # < half of bucket 0
                TraceEvent(0, 0.04, 0.04, "barrier"),  # instantaneous
                TraceEvent(1, 0.0, 1.0, "compute"),
            ),
            messages_sent=0, bytes_sent=0.0)
        text = timeline_text(result, width=10)
        row0 = text.splitlines()[1]
        assert row0.startswith("rank   0")
        cells = row0[row0.index("|") + 1:-1]
        assert cells[0] == "|"  # barrier glyph, not the compute sliver

    def test_zero_length_event_yields_to_busy_bucket(self):
        from repro.distributed import SimResult, TraceEvent

        result = SimResult(
            n_ranks=1,
            finish_times=(1.0,),
            events=(
                TraceEvent(0, 0.0, 1.0, "compute"),
                TraceEvent(0, 0.5, 0.5, "barrier"),  # bucket is all compute
            ),
            messages_sent=0, bytes_sent=0.0)
        text = timeline_text(result, width=10)
        row0 = text.splitlines()[1]
        cells = row0[row0.index("|") + 1:-1]
        assert cells == "#" * 10

    def test_result_spans_share_the_unified_format(self, net):
        import json

        from repro.distributed import result_spans
        from repro.observe import chrome_trace

        result = MPISimulator(2, net).run(ping_pong(2, 1024))
        spans = result_spans(result)
        assert len(spans) == len(result.events)
        assert {s.tid for s in spans} == {0, 1}
        json.dumps(chrome_trace(spans))  # exportable to Perfetto as-is

    def test_state_profile_sums_events(self, net):
        result = MPISimulator(2, net).run(ping_pong(3, 1024))
        profile = state_profile(result)
        assert set(profile) <= {"compute", "send", "recv", "wait"}
        assert profile["send"] > 0

    def test_profile_text_shows_shares(self, net):
        result = MPISimulator(4, net).run(bsp_iterations(2, 1e-3, 4096))
        text = profile_text(result)
        assert "compute" in text and "%" in text
