"""Tests for repro.simulator.cpu."""

import pytest

from repro.simulator import (
    CPUModel,
    matmul_trace,
    stream_trace,
    triad_body,
    matmul_inner_body,
    pointer_chase_body,
    random_access_trace,
)


@pytest.fixture(scope="module")
def model(cpu, table):
    return CPUModel(cpu, table)


class TestCPUModel:
    def test_counters_are_consistent(self, model):
        n = 5000
        sim = model.run(stream_trace(n, "triad"), triad_body(), iterations=n)
        c = sim.counters
        assert c.instructions == 7 * n
        assert c.flops == 2 * n  # one scalar FMA per iteration
        assert c.loads == 2 * n
        assert c.stores == n
        assert c.cycles > 0
        assert 0 < c.ipc < 8

    def test_cycles_bracketed(self, model):
        n = 5000
        sim = model.run(stream_trace(n, "triad"), triad_body(), iterations=n)
        assert sim.optimistic_cycles <= sim.counters.cycles <= sim.pessimistic_cycles

    def test_streaming_faster_than_random(self, model, cpu):
        n = 8000
        stream_sim = model.run(stream_trace(n, "triad"), triad_body(), n)
        rand = random_access_trace(3 * n, 64 * cpu.caches[-1].capacity_bytes,
                                   seed=1)
        random_sim = model.run(rand, pointer_chase_body(), 3 * n)
        assert (stream_sim.counters.cycles / n
                < random_sim.counters.cycles / (3 * n))

    def test_seconds_uses_frequency(self, model, cpu):
        n = 1000
        sim = model.run(stream_trace(n, "copy"),
                        triad_body(), iterations=n)
        assert sim.seconds == pytest.approx(sim.counters.cycles / cpu.frequency_hz)

    def test_mispredict_rate_inflates_cycles(self, cpu, table):
        n = 5000
        trace = stream_trace(n, "triad")
        good = CPUModel(cpu, table, branch_mispredict_rate=0.0)
        bad = CPUModel(cpu, table, branch_mispredict_rate=0.3)
        assert (bad.run(trace, triad_body(), n).counters.cycles
                > good.run(trace, triad_body(), n).counters.cycles)

    def test_per_run_mispredict_override(self, model):
        n = 2000
        trace = stream_trace(n, "triad")
        base = model.run(trace, triad_body(), n)
        hot = model.run(trace, triad_body(), n, branch_mispredict_rate=0.5)
        assert hot.counters.branch_mispredicts > base.counters.branch_mispredicts

    def test_memory_parallelism_reduces_latency_penalty(self, cpu, table):
        n = 4000
        trace = random_access_trace(n, 32 * cpu.caches[-1].capacity_bytes, seed=2)
        blocking = CPUModel(cpu, table, memory_parallelism=1.0)
        parallel = CPUModel(cpu, table, memory_parallelism=8.0)
        assert (parallel.run(trace, pointer_chase_body(), n).counters.cycles
                < blocking.run(trace, pointer_chase_body(), n).counters.cycles)

    def test_vector_flops_scaled_by_lanes(self, model, cpu):
        n = 1024
        sim = model.run(stream_trace(n, "triad"), triad_body(vectorized=True),
                        iterations=n // 4)
        # vfmadd: 2 flops x 4 lanes per iteration
        assert sim.counters.flops == pytest.approx(2 * 4 * (n // 4))

    def test_rejects_bad_iterations(self, model):
        with pytest.raises(ValueError):
            model.run(stream_trace(8, "copy"), triad_body(), iterations=0)

    def test_matmul_locality_difference_visible_in_cycles(self, cpu, table):
        n = 48
        model = CPUModel(cpu, table)
        body = matmul_inner_body()
        good = model.run(matmul_trace(n, "ikj"), body, n ** 3)
        bad = model.run(matmul_trace(n, "jki"), body, n ** 3)
        assert (good.counters.level_misses["L1"]
                <= bad.counters.level_misses["L1"])
