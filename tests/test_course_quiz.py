"""Tests for the generated in-class quiz (the S_Q term of Equation 1)."""

import pytest

from repro.course import (
    MAX_QUIZ_POINTS,
    Quiz,
    QuizQuestion,
    final_grade,
    generate_quiz,
)
from repro.machine import epyc_like_cpu, generic_server_cpu


class TestGeneration:
    def test_totals_seventy_points(self):
        assert generate_quiz(seed=0).total_points == MAX_QUIZ_POINTS == 70.0

    def test_deterministic_given_seed(self):
        a = generate_quiz(seed=5)
        b = generate_quiz(seed=5)
        assert a.answer_key() == b.answer_key()
        assert [q.prompt for q in a.questions] == [q.prompt for q in b.questions]

    def test_seeds_vary_parameters(self):
        keys = {tuple(generate_quiz(seed=s).answer_key()) for s in range(6)}
        assert len(keys) > 1

    def test_machine_specific_answers(self):
        intel = generate_quiz(generic_server_cpu(), seed=1)
        amd = generate_quiz(epyc_like_cpu(), seed=1)
        # ridge-point question answers differ across vendors
        assert intel.answer_key()[0] != amd.answer_key()[0]

    def test_covers_multiple_topics(self):
        topics = {q.topic for q in generate_quiz(seed=2).questions}
        assert len(topics) >= 5

    def test_answers_are_model_correct(self):
        cpu = generic_server_cpu()
        quiz = generate_quiz(cpu, seed=3)
        ridge_q = next(q for q in quiz.questions if "ridge point" in q.prompt)
        assert ridge_q.answer == pytest.approx(cpu.ridge_point())

    def test_render_lists_every_question(self):
        quiz = generate_quiz(seed=4)
        text = quiz.render()
        assert text.count("\n") == len(quiz.questions)


class TestGrading:
    def test_perfect_answers_full_marks(self):
        quiz = generate_quiz(seed=0)
        assert quiz.grade(quiz.answer_key()) == 70.0

    def test_within_tolerance_accepted(self):
        quiz = generate_quiz(seed=0)
        fuzzed = [a * 1.02 for a in quiz.answer_key()]
        assert quiz.grade(fuzzed) == 70.0

    def test_outside_tolerance_rejected(self):
        quiz = generate_quiz(seed=0)
        wrong = [a * 2.0 for a in quiz.answer_key()]
        assert quiz.grade(wrong) == 0.0

    def test_response_length_checked(self):
        quiz = generate_quiz(seed=0)
        with pytest.raises(ValueError):
            quiz.grade([1.0])

    def test_feeds_equation_1(self):
        quiz = generate_quiz(seed=0)
        points = quiz.grade(quiz.answer_key())
        boosted = final_grade(7.0, 7.0, 6.0, points)
        plain = final_grade(7.0, 7.0, 6.0, 0.0)
        assert boosted == pytest.approx(plain + 0.3)  # 0.3 * 70/70

    def test_question_validation(self):
        with pytest.raises(ValueError):
            QuizQuestion("t", "p", 1.0, "x", points=0.0)
        with pytest.raises(ValueError):
            QuizQuestion("t", "p", 1.0, "x", points=5.0, tolerance=2.0)

    def test_zero_answer_graded_exactly(self):
        q = QuizQuestion("t", "p", 0.0, "x", points=5.0)
        assert q.grade(0.0) == 5.0
        assert q.grade(0.1) == 0.0
