"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import FatTree, Ring, Torus2D
from repro.energy import PowerModel, energy_of_run
from repro.microbench import bank_conflict_factor, coalesced_transactions
from repro.queueing import Job, random_workload, simulate_batch


class TestTopologyProperties:
    @given(st.integers(2, 64), st.integers(0, 63), st.integers(0, 63))
    def test_ring_metric_axioms(self, n, a, b):
        r = Ring(n)
        a, b = a % n, b % n
        assert r.hops(a, b) == r.hops(b, a)           # symmetry
        assert (r.hops(a, b) == 0) == (a == b)        # identity
        assert r.hops(a, b) <= r.diameter

    @given(st.integers(2, 8), st.integers(0, 63), st.integers(0, 63),
           st.integers(0, 63))
    def test_torus_triangle_inequality(self, side, a, b, c):
        t = Torus2D(side * side)
        n = side * side
        a, b, c = a % n, b % n, c % n
        assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)

    @given(st.integers(1, 6), st.integers(0, 63), st.integers(0, 63))
    def test_fat_tree_symmetric(self, log_n, a, b):
        n = 1 << log_n
        f = FatTree(max(2, n))
        a, b = a % f.nodes, b % f.nodes
        assert f.hops(a, b) == f.hops(b, a)
        assert f.hops(a, b) % 2 == 0  # up-and-down switch hops


class TestGpuModelProperties:
    @given(st.integers(1, 64))
    def test_coalescing_bounded_by_warp(self, stride):
        txns = coalesced_transactions(stride, element_bytes=4)
        assert 1 <= txns <= 32

    @given(st.integers(1, 128))
    def test_bank_conflicts_divide_banks(self, stride):
        factor = bank_conflict_factor(stride, banks=32)
        assert 32 % factor == 0
        assert 1 <= factor <= 32


class TestEnergyProperties:
    @given(st.floats(0.01, 100.0), st.integers(0, 64),
           st.floats(0.0, 1.0), st.floats(0.5, 2.0))
    def test_energy_positive_and_monotone_in_time(self, seconds, cores,
                                                  utilization, scale):
        pm = PowerModel()
        e1 = energy_of_run(pm, seconds, cores, utilization=utilization,
                           frequency_scale=scale)
        e2 = energy_of_run(pm, seconds * 2, cores, utilization=utilization,
                           frequency_scale=scale)
        assert e1.joules > 0
        assert e2.joules == pytest.approx(2 * e1.joules)

    @given(st.integers(0, 32), st.integers(0, 32))
    def test_power_monotone_in_cores(self, few, extra):
        pm = PowerModel()
        assert pm.power(few + extra) >= pm.power(few)


class TestBatchProperties:
    @given(st.integers(1, 40), st.integers(2, 6), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_schedule_invariants(self, n_jobs, log_nodes, seed):
        nodes = 2 ** log_nodes
        jobs = random_workload(n_jobs, nodes, load=0.7, seed=seed)
        for policy in ("fcfs", "easy-backfill"):
            result = simulate_batch(jobs, nodes, policy)
            # every job scheduled exactly once, never before submission
            assert sorted(s.job.job_id for s in result.jobs) == \
                   sorted(j.job_id for j in jobs)
            for s in result.jobs:
                assert s.start >= s.job.submit
            # node capacity never exceeded
            events = []
            for s in result.jobs:
                events.append((s.start, 1, s.job.nodes))
                events.append((s.end, 0, -s.job.nodes))
            events.sort()
            in_use = 0
            for _, _, delta in events:
                in_use += delta
                assert in_use <= nodes
            # utilization is a valid fraction
            assert 0 < result.utilization <= 1.0 + 1e-9

    def test_backfill_improves_waits_in_aggregate(self):
        """EASY gives no per-trace guarantee (backfilled jobs may delay
        non-head jobs, and a finite trace's makespan can even grow), but
        across a workload population it must cut waiting time."""
        fcfs_waits, easy_waits = [], []
        for seed in range(12):
            jobs = random_workload(25, 16, load=0.8, seed=seed)
            fcfs_waits.append(simulate_batch(jobs, 16, "fcfs").mean_wait)
            easy_waits.append(
                simulate_batch(jobs, 16, "easy-backfill").mean_wait)
        assert float(np.mean(easy_waits)) < float(np.mean(fcfs_waits))
        # and it wins (or ties) on a clear majority of traces
        wins = sum(e <= f + 1e-9 for e, f in zip(easy_waits, fcfs_waits))
        assert wins >= 8


class TestQuizProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_quiz_scores_bounded(self, seed):
        from repro.course import generate_quiz

        quiz = generate_quiz(seed=seed)
        assert quiz.total_points == 70.0
        key = quiz.answer_key()
        assert quiz.grade(key) == 70.0
        assert quiz.grade([0.0 if abs(a) > 1 else 1e9 for a in key]) <= 70.0
