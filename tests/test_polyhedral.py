"""Tests for repro.polyhedral."""

import numpy as np
import pytest

from repro.polyhedral import (
    AffineAccess,
    Domain,
    LoopNest,
    distance_vectors,
    exact_dependences,
    gcd_test,
    interchange_legal,
    jacobi_nest,
    legal_orders,
    lex_positive,
    matmul_nest,
    nest_trace,
    seidel_nest,
    simulated_misses,
    skewed_vectors,
    tiling_legal,
    transpose_nest,
)


class TestDomain:
    def test_size_and_points(self):
        d = Domain(((0, 3), (0, 2)))
        assert d.size == 6
        pts = d.points()
        assert pts.shape == (6, 2)
        assert pts[0].tolist() == [0, 0]
        assert pts[-1].tolist() == [2, 1]

    def test_permuted_order_changes_sequence_not_set(self):
        d = Domain(((0, 2), (0, 3)))
        a = d.points((0, 1))
        b = d.points((1, 0))
        assert not np.array_equal(a, b)
        assert {tuple(p) for p in a} == {tuple(p) for p in b}

    def test_tiled_points_cover_domain(self):
        d = Domain(((0, 5), (0, 7)))
        pts = d.tiled_points((2, 3))
        assert pts.shape == (35, 2)
        assert {tuple(p) for p in pts} == {tuple(p) for p in d.points()}

    def test_contains(self):
        d = Domain(((1, 4),))
        assert d.contains((3,)) and not d.contains((4,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Domain(((2, 2),))

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            Domain(((0, 2), (0, 2))).points((0, 0))


class TestAffineAccess:
    def test_index(self):
        acc = AffineAccess("A", ((1, 0), (0, 1)), (0, -1))
        assert acc.index((3, 5)) == (3, 4)

    def test_vectorized_indices_match_scalar(self):
        acc = AffineAccess("A", ((2, 1), (0, 3)), (1, 0))
        pts = Domain(((0, 3), (0, 3))).points()
        vec = acc.indices(pts)
        for row, p in zip(vec, pts):
            assert tuple(row) == acc.index(tuple(p))

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            AffineAccess("A", ((1, 0), (0,)), (0, 0))


class TestGcdTest:
    def test_different_arrays_never_depend(self):
        a = AffineAccess("A", ((1,),), (0,))
        b = AffineAccess("B", ((1,),), (0,))
        assert not gcd_test(a, b)

    def test_even_odd_disjoint(self):
        # A[2i] vs A[2i+1]: gcd 2 does not divide 1 -> provably independent
        a = AffineAccess("A", ((2,),), (0,))
        b = AffineAccess("A", ((2,),), (1,))
        assert not gcd_test(a, b)

    def test_may_depend_when_gcd_divides(self):
        a = AffineAccess("A", ((2,),), (0,))
        b = AffineAccess("A", ((2,),), (4,))
        assert gcd_test(a, b)


class TestDependences:
    def test_matmul_reduction_vector(self):
        vectors = distance_vectors(matmul_nest(6))
        assert vectors == [(0, 0, 1)]

    def test_jacobi_has_no_dependences(self):
        assert exact_dependences(jacobi_nest(8)) == []

    def test_seidel_dependence_kinds(self):
        deps = exact_dependences(seidel_nest(8))
        kinds = {d.kind for d in deps}
        assert "flow" in kinds and "anti" in kinds
        assert all(d.array == "u" for d in deps)

    def test_seidel_vectors_include_the_killer(self):
        assert (1, -1) in distance_vectors(seidel_nest(8))

    def test_all_uniform_distances_lex_positive(self):
        for nest in (matmul_nest(5), seidel_nest(7)):
            for v in distance_vectors(nest):
                assert lex_positive(v)

    def test_domain_size_guard(self):
        with pytest.raises(ValueError):
            exact_dependences(matmul_nest(200), max_points=1000)


class TestLegality:
    def test_matmul_all_orders_legal(self):
        assert len(legal_orders(matmul_nest(5))) == 6

    def test_matmul_tiling_legal(self):
        assert tiling_legal(distance_vectors(matmul_nest(5)))

    def test_jacobi_everything_legal(self):
        nest = jacobi_nest(8)
        assert len(legal_orders(nest)) == 2
        assert tiling_legal(distance_vectors(nest))

    def test_seidel_interchange_illegal(self):
        vs = distance_vectors(seidel_nest(8))
        assert interchange_legal(vs, (0, 1))
        assert not interchange_legal(vs, (1, 0))

    def test_seidel_tiling_illegal_until_skewed(self):
        vs = distance_vectors(seidel_nest(8))
        assert not tiling_legal(vs)
        skewed = skewed_vectors(vs, outer=0, inner=1, factor=1)
        assert tiling_legal(skewed)
        assert all(lex_positive(v) for v in skewed)

    def test_zero_vector_not_lex_positive(self):
        assert not lex_positive((0, 0, 0))


class TestTraceCompilation:
    def test_trace_length(self):
        nest = matmul_nest(4)
        trace = nest_trace(nest)
        assert len(trace) == 4 * 64  # 4 accesses x 4^3 points

    def test_trace_writes_match_write_accesses(self):
        nest = transpose_nest(8)
        trace = nest_trace(nest)
        assert trace.n_writes == 64

    def test_order_permutes_not_changes_accesses(self):
        nest = matmul_nest(4)
        a = nest_trace(nest, order=(0, 1, 2))
        b = nest_trace(nest, order=(2, 1, 0))
        assert np.array_equal(np.sort(a.addresses), np.sort(b.addresses))

    def test_matches_handwritten_matmul_trace(self, cpu):
        """The polyhedral compilation of matmul must produce the same cache
        behaviour as the hand-written trace generator."""
        from repro.simulator import hierarchy_for, matmul_trace

        n = 24
        poly = nest_trace(matmul_nest(n), order=(0, 1, 2))
        hand = matmul_trace(n, "ijk")
        h1 = hierarchy_for(cpu)
        h1.access_trace(poly.addresses, poly.writes)
        h2 = hierarchy_for(cpu)
        h2.access_trace(hand.addresses, hand.writes)
        m1 = h1.miss_counts()
        m2 = h2.miss_counts()
        # same loop structure, same footprints -> nearly identical misses
        # (base addresses differ so conflict patterns may shift slightly)
        assert m1["DRAM"] == pytest.approx(m2["DRAM"], rel=0.05)

    def test_tiling_reduces_transpose_misses(self, cpu):
        # n must exceed L1-lines (512) so the strided array's column
        # working set cannot stay resident without tiling
        nest = transpose_nest(768)
        plain = simulated_misses(nest, cpu, order=(0, 1))
        tiled = simulated_misses(nest, cpu, tile_sizes=(16, 16))
        assert tiled["L1"] < 0.7 * plain["L1"]
