"""Tests for the paper's data artifacts (DATA-1/DATA-2) and grading."""

import numpy as np
import pytest

from repro.course import (
    ASSIGNMENT_POINTS,
    METRICS_2A,
    METRICS_2B,
    PASSING_GRADE,
    STUDENTS,
    assignments_grade,
    final_grade,
    is_passing,
    load_students_csv,
    metrics_csv,
    project_grade,
    simulate_cohort,
    students_csv,
    team_divisor,
    totals,
)


class TestData1:
    def test_paper_totals_exact(self):
        t = totals()
        assert t["enrolled"] == 146   # §5.1
        assert t["passed"] == 93      # §5.1
        assert t["respondents"] == 41  # §1
        assert t["editions"] == 7     # taught seven times

    def test_years_2017_to_2023(self):
        years = [r.year for r in STUDENTS]
        assert years == list(range(2017, 2024))

    def test_evaluations_missing_2019_2022(self):
        missing = [r.year for r in STUDENTS if r.respondents is None]
        assert missing == [2019, 2022]  # Figure 1 caption

    def test_dropout_within_paper_range(self):
        for r in STUDENTS:
            assert 0.15 <= r.dropout_rate <= 0.50  # §5.1: "15-50% drop out"

    def test_respondents_do_not_exceed_passed(self):
        for r in STUDENTS:
            if r.respondents is not None:
                assert r.respondents <= r.passed

    def test_enrollment_trend_rising(self):
        assert STUDENTS[-1].enrolled > STUDENTS[0].enrolled

    def test_csv_round_trip(self):
        assert load_students_csv(students_csv()) == STUDENTS

    def test_csv_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_students_csv("hello,world")


class TestData2:
    def test_every_mean_matches_paper(self):
        """Table 2's printed M column must be reproduced exactly from the
        printed counts — the core SW-3 check."""
        for row in METRICS_2A + METRICS_2B:
            assert round(row.mean, 1) == pytest.approx(row.paper_mean)

    def test_thirteen_2a_statements(self):
        assert len(METRICS_2A) == 13

    def test_two_2b_statements(self):
        assert len(METRICS_2B) == 2
        assert [r.statement for r in METRICS_2B] == ["Workload", "Level"]

    def test_response_counts_bounded_by_respondents(self):
        for row in METRICS_2A + METRICS_2B:
            assert row.n_responses <= 41

    def test_apply_subject_matter_highest(self):
        best = max(METRICS_2A, key=lambda r: r.mean)
        assert best.statement == "To apply subject matter"  # paper's 4.8

    def test_workload_high_but_2b_optimal_is_3_to_4(self):
        workload = METRICS_2B[0]
        assert workload.mean == pytest.approx(4.0, abs=0.05)  # above optimal!

    def test_metrics_csv_contains_all_rows(self):
        csv = metrics_csv()
        for row in METRICS_2A + METRICS_2B:
            assert row.statement in csv


class TestGrading:
    def test_equation_1_verbatim(self):
        # G = max(1, min(10, 0.5 Gp + 0.3 Ga + 0.3 (Ge + Sq/70)))
        assert final_grade(8.0, 8.0, 7.0, 35.0) == pytest.approx(
            0.5 * 8 + 0.3 * 8 + 0.3 * (7 + 0.5))

    def test_equation_1_clamps_at_10(self):
        assert final_grade(10.0, 10.0, 10.0, 70.0) == 10.0

    def test_equation_1_floor_at_1(self):
        assert final_grade(1.0, 0.0, 1.0, 0.0) == pytest.approx(1.0)

    def test_equation_2_verbatim(self):
        assert project_grade(8.0, 7.0, 9.0) == pytest.approx(
            0.4 * 8 + 0.3 * 7 + 0.3 * 9)

    def test_equation_3_divisors(self):
        assert team_divisor(1) == 32
        assert team_divisor(2) == 36
        assert team_divisor(3) == 40
        assert team_divisor(4) == 40

    def test_equation_3_full_marks_solo_exceeds_ten(self):
        # 42 points / 32 -> 13.125: the paper's deliberate slack
        assert assignments_grade((10, 9, 11, 12), 1) == pytest.approx(13.125)

    def test_equation_3_full_marks_team_of_four(self):
        assert assignments_grade((10, 9, 11, 12), 4) == pytest.approx(10.5)

    def test_assignment_point_caps(self):
        assert ASSIGNMENT_POINTS == (10, 9, 11, 12)
        with pytest.raises(ValueError):
            assignments_grade((11, 0, 0, 0), 2)

    def test_team_size_bounds(self):
        with pytest.raises(ValueError):
            team_divisor(5)

    def test_passing_threshold(self):
        assert is_passing(5.5)
        assert not is_passing(5.4)
        assert PASSING_GRADE == 5.5

    def test_quiz_bonus_can_push_over(self):
        without = final_grade(6.0, 5.0, 5.0, 0.0)
        with_quiz = final_grade(6.0, 5.0, 5.0, 70.0)
        assert with_quiz == pytest.approx(without + 0.3)


class TestCohortSimulation:
    def test_narrative_averages(self):
        """§5.1: completing students average ~8 on components; the grading
        scheme's slack then yields high final grades with near-total pass
        rate among completers."""
        cohort = simulate_cohort(146, seed=7)
        exam = np.mean([s.exam for s in cohort])
        proj = np.mean([s.project for s in cohort])
        assert exam == pytest.approx(7.5, abs=0.4)
        assert proj == pytest.approx(8.0, abs=0.4)
        pass_rate = np.mean([s.passed for s in cohort])
        assert pass_rate > 0.95

    def test_deterministic(self):
        a = simulate_cohort(20, seed=3)
        b = simulate_cohort(20, seed=3)
        assert [s.final for s in a] == [s.final for s in b]

    def test_all_grades_in_range(self):
        for s in simulate_cohort(50, seed=1):
            assert 1.0 <= s.final <= 10.0
