"""Tests for the SLURM-like batch scheduler."""

import pytest

from repro.queueing import Job, random_workload, simulate_batch


def classic_jobs():
    """Half-cluster job, then a full-cluster blocker, then a small job."""
    return [
        Job(0, 0.0, 8, 100.0, 120.0),
        Job(1, 1.0, 16, 50.0, 60.0),
        Job(2, 2.0, 4, 30.0, 40.0),
    ]


class TestFCFS:
    def test_head_of_line_blocking(self):
        result = simulate_batch(classic_jobs(), 16, "fcfs")
        starts = {j.job.job_id: j.start for j in result.jobs}
        assert starts[0] == 0.0
        assert starts[1] == 100.0   # waits for the whole cluster
        assert starts[2] == 150.0   # blocked behind job 1 despite free nodes

    def test_sequential_when_saturated(self):
        jobs = [Job(i, 0.0, 4, 10.0, 12.0) for i in range(4)]
        result = simulate_batch(jobs, 4, "fcfs")
        starts = sorted(j.start for j in result.jobs)
        assert starts == [0.0, 10.0, 20.0, 30.0]

    def test_parallel_when_room(self):
        jobs = [Job(i, 0.0, 2, 10.0, 12.0) for i in range(4)]
        result = simulate_batch(jobs, 8, "fcfs")
        assert all(j.start == 0.0 for j in result.jobs)
        assert result.makespan == 10.0

    def test_submission_times_respected(self):
        jobs = [Job(0, 5.0, 1, 1.0, 2.0)]
        result = simulate_batch(jobs, 4, "fcfs")
        assert result.jobs[0].start == 5.0
        assert result.jobs[0].wait == 0.0


class TestBackfill:
    def test_small_job_backfills(self):
        result = simulate_batch(classic_jobs(), 16, "easy-backfill")
        starts = {j.job.job_id: j.start for j in result.jobs}
        assert starts[2] == 2.0         # jumps into the 8 free nodes
        assert starts[1] == 100.0       # reservation not delayed

    def test_backfill_never_delays_the_head(self):
        # a long backfill candidate that WOULD delay the head must wait
        jobs = [
            Job(0, 0.0, 8, 100.0, 110.0),
            Job(1, 1.0, 16, 50.0, 60.0),
            Job(2, 2.0, 8, 500.0, 600.0),  # would block the reservation
        ]
        result = simulate_batch(jobs, 16, "easy-backfill")
        starts = {j.job.job_id: j.start for j in result.jobs}
        assert starts[1] == 100.0
        assert starts[2] >= 150.0

    def test_backfill_improves_wait_and_utilization(self):
        wl = random_workload(80, 32, load=0.85, seed=3)
        fcfs = simulate_batch(wl, 32, "fcfs")
        easy = simulate_batch(wl, 32, "easy-backfill")
        assert easy.mean_wait <= fcfs.mean_wait
        assert easy.utilization >= fcfs.utilization * 0.99

    def test_all_jobs_scheduled_once(self):
        wl = random_workload(50, 16, seed=4)
        result = simulate_batch(wl, 16, "easy-backfill")
        assert sorted(j.job.job_id for j in result.jobs) == list(range(50))

    def test_nodes_never_oversubscribed(self):
        wl = random_workload(60, 8, load=0.9, seed=5)
        result = simulate_batch(wl, 8, "easy-backfill")
        events = []
        for sched in result.jobs:
            events.append((sched.start, sched.job.nodes))
            events.append((sched.end, -sched.job.nodes))
        events.sort()
        in_use = 0
        for _, delta in events:
            in_use += delta
            assert in_use <= 8


class TestMetricsAndValidation:
    def test_bounded_slowdown_floor(self):
        job = Job(0, 0.0, 1, 1.0, 2.0)
        result = simulate_batch([job], 4, "fcfs")
        # tiny job with no wait: bounded slowdown clamps to ~runtime/tau
        assert result.jobs[0].bounded_slowdown(tau=10.0) == pytest.approx(0.1)

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch([Job(0, 0.0, 32, 1.0, 2.0)], 16)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate_batch(classic_jobs(), 16, "sjf")

    def test_walltime_below_runtime_rejected(self):
        with pytest.raises(ValueError):
            Job(0, 0.0, 1, 10.0, 5.0)

    def test_workload_generator_properties(self):
        wl = random_workload(100, 32, seed=7)
        assert len(wl) == 100
        assert all(1 <= j.nodes <= 32 for j in wl)
        assert all(j.walltime >= j.runtime for j in wl)
        submits = [j.submit for j in wl]
        assert submits == sorted(submits)

    def test_report_format(self):
        result = simulate_batch(classic_jobs(), 16)
        assert "util=" in result.report()
