"""Tests for repro.tuning.guidance: model-guided ranking and pruning."""

import math

import pytest

from repro.machine import generic_server_cpu
from repro.roofline import cpu_roofline
from repro.kernels import matmul_work
from repro.tuning import (
    EvaluationHarness,
    GuidedSearch,
    ModelGuide,
    PowerOfTwoParam,
    SearchSpace,
    guidance_report,
    prediction_errors,
    prune_by_prediction,
    rank_by_prediction,
    roofline_guide,
)


def convex(cfg):
    return 1.0 + (math.log2(cfg["tile"]) - 6) ** 2


def space():
    return SearchSpace([PowerOfTwoParam("tile", low=4, high=256)])


def perfect_guide():
    """A guide that predicts the objective exactly."""
    return ModelGuide("oracle", convex)


class TestModelGuide:
    def test_predict_passes_config_through(self):
        assert perfect_guide().predict({"tile": 64}) == 1.0

    def test_rejects_nonpositive_predictions(self):
        bad = ModelGuide("bad", lambda c: 0.0)
        with pytest.raises(ValueError):
            bad.predict({"tile": 4})


class TestRankAndPrune:
    def test_rank_orders_by_prediction(self):
        ranked = rank_by_prediction(perfect_guide(), space().configs())
        assert ranked[0] == {"tile": 64}
        assert ranked[-1]["tile"] in (4, 256)  # the worst corners

    def test_rank_is_stable_for_ties(self):
        flat = ModelGuide("flat", lambda c: 1.0)
        ranked = rank_by_prediction(flat, space().configs())
        assert ranked == list(space().configs())

    def test_prune_integer_keep(self):
        kept = prune_by_prediction(perfect_guide(), space().configs(), keep=2)
        assert len(kept) == 2
        assert kept[0] == {"tile": 64}

    def test_prune_fractional_keep(self):
        kept = prune_by_prediction(perfect_guide(), space().configs(), keep=0.5)
        assert len(kept) == max(1, round(0.5 * space().size()))

    def test_prune_keep_validation(self):
        with pytest.raises(ValueError):
            prune_by_prediction(perfect_guide(), space().configs(), keep=0)
        with pytest.raises(ValueError):
            prune_by_prediction(perfect_guide(), space().configs(), keep=1.5)
        with pytest.raises(ValueError):
            prune_by_prediction(perfect_guide(), space().configs(), keep=True)


class TestGuidedSearch:
    def test_spends_budget_on_predicted_best(self):
        guide = perfect_guide()
        harness = EvaluationHarness(convex, predict=guide.predict)
        result = GuidedSearch(guide, keep=3).run(space(), harness)
        assert result.measurements == 3
        assert result.best_config == {"tile": 64}
        # an exact guide has zero error on every evaluation
        assert all(e.prediction_error() == 0.0 for e in result.history)


class TestRooflineGuide:
    def test_prediction_is_the_roofline_bound(self):
        cpu = generic_server_cpu()
        roofline = cpu_roofline(cpu)
        work = matmul_work(64)
        guide = roofline_guide(roofline, lambda cfg: work)
        expected = work.flops / roofline.attainable(work.intensity)
        assert guide.predict({"tile": 8}) == pytest.approx(expected)

    def test_guide_name_mentions_roofline(self):
        cpu = generic_server_cpu()
        guide = roofline_guide(cpu_roofline(cpu), lambda cfg: matmul_work(16))
        assert "roofline" in guide.name


class TestErrorReporting:
    def run_with_guide(self):
        biased = ModelGuide("biased", lambda c: 2.0 * convex(c))
        harness = EvaluationHarness(convex, kernel="k", predict=biased.predict)
        return GuidedSearch(biased, keep=4).run(space(), harness)

    def test_prediction_errors_per_config(self):
        errors = prediction_errors(self.run_with_guide())
        assert len(errors) == 4
        # model predicts 2x the measurement -> +100% error everywhere
        assert all(pe.error == pytest.approx(1.0) for pe in errors)

    def test_cached_evaluations_excluded(self):
        harness = EvaluationHarness(convex, predict=perfect_guide().predict)
        harness.evaluate({"tile": 4})
        harness.evaluate({"tile": 4})
        assert len(prediction_errors(harness.result())) == 1

    def test_report_includes_mean_error(self):
        text = guidance_report(self.run_with_guide())
        assert "mean |error|" in text
        assert "+100%" in text

    def test_report_without_predictions(self):
        harness = EvaluationHarness(convex)
        harness.evaluate({"tile": 4})
        assert "no model predictions" in guidance_report(harness.result())
