"""Tests for the live observability surface: /metrics, engine gauges,
and the `report` job kind."""

import pytest

from repro.observe.metrics import MetricsRegistry
from repro.perfdb.store import PerfStore
from repro.service.client import ServiceClient
from repro.service.engine import JobEngine
from repro.service.httpd import start_server
from repro.service.jobs import AdmissionError, JobState
from repro.service.manifest import WorkloadManifest
from repro.service.quota import AdmissionController


def _engine(tmp_path=None, **over):
    kw = dict(
        store=None if tmp_path is None else PerfStore(tmp_path / "perfdb"),
        workers=2,
        admission=AdmissionController(max_queue_depth=256,
                                      tenant_rate=10_000, tenant_burst=10_000),
        metrics=MetricsRegistry(),
        with_builtins=True,
    )
    kw.update(over)
    return JobEngine(**kw)


def _tiny_matmul(name="tiny-matmul", **over):
    base = dict(name=name, kernel="matmul", variant="ijk",
                args={"n": 4, "seed": 0}, repetitions=1, warmup=0)
    base.update(over)
    return WorkloadManifest(**base)


@pytest.fixture
def served(tmp_path):
    engine = _engine(tmp_path)
    server, _ = start_server(engine, port=0)
    host, port = server.server_address[:2]
    yield engine, ServiceClient(host, port)
    server.shutdown()
    engine.shutdown()


class TestMetricsEndpoint:
    def test_instruments_present_at_boot(self, served):
        engine, client = served
        snap = client.metrics()
        # all three live instruments exist before any submission
        assert snap["gauges"]["service.queue_depth"] == 0
        assert snap["counters"]["service.cache_hits"] == 0
        assert snap["counters"]["service.shed_total"] == 0

    def test_metrics_and_stats_agree(self, served):
        engine, client = served
        job = client.submit(_tiny_matmul().to_dict(), tenant="t")
        client.wait(job["job_id"], timeout=60.0)
        snap, stats = client.metrics(), client.stats()
        assert snap == stats["metrics"]
        assert snap["gauges"]["service.queue_depth"] == stats["queue_depth"]

    def test_snapshot_shape(self, served):
        _, client = served
        snap = client.metrics()
        assert set(snap) == {"counters", "gauges", "histograms"}


class TestEngineGauges:
    def test_coalesced_resubmission_bumps_cache_hit_exactly_once(self):
        """Satellite regression test: coalescing must not count as a cache
        hit, and the post-completion resubmission must count exactly one."""
        engine = _engine()  # not started: both submissions stay queued
        first = engine.submit(_tiny_matmul(), tenant="a")
        second = engine.submit(_tiny_matmul(), tenant="b")
        assert second.coalesced_with == first.job_id
        assert engine.metrics.counter("service.cache_hits").value == 0
        with engine:
            engine.wait_for(first.job_id, timeout=60.0)
            engine.wait_for(second.job_id, timeout=60.0)
            assert first.state == second.state == JobState.DONE
            third = engine.submit(_tiny_matmul(), tenant="c")
        assert third.cached is True
        assert engine.metrics.counter("service.cache_hits").value == 1
        assert engine.metrics.counter("service.jobs_executed").value == 1

    def test_shed_total_tracks_jobs_shed(self):
        engine = _engine(admission=AdmissionController(max_queue_depth=1))
        engine.submit(_tiny_matmul("s-0"))  # fills the queue (not started)
        with pytest.raises(AdmissionError):
            engine.submit(_tiny_matmul("s-1"))
        assert engine.metrics.counter("service.shed_total").value == 1
        assert engine.metrics.counter("service.jobs_shed").value \
            == engine.metrics.counter("service.shed_total").value

    def test_queue_depth_gauge_follows_queue(self):
        engine = _engine()  # not started: submissions accumulate
        for i in range(3):
            engine.submit(_tiny_matmul(f"qd-{i}", args={"n": 4 + i,
                                                        "seed": 0}))
        assert engine.metrics.gauge("service.queue_depth").value == 3
        assert engine.stats()["queue_depth"] == 3
        with engine:
            for job in list(engine.jobs()):
                engine.wait_for(job.job_id, timeout=60.0)
        assert engine.metrics.gauge("service.queue_depth").value == 0


class TestReportJobKind:
    def test_report_job_renders_the_tenants_shard(self, tmp_path):
        with _engine(tmp_path) as engine:
            bench = engine.submit(_tiny_matmul(), tenant="alice")
            engine.wait_for(bench.job_id, timeout=60.0)
            assert bench.state == JobState.DONE, bench.error
            job = engine.submit(_tiny_matmul(), kind="report", tenant="alice",
                                params={"now": 0, "roofline": False,
                                        "analyze": False})
            engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.DONE, job.error
        html = job.result["report_html"]
        assert job.result["shard_runs"] == 1
        assert job.result["bytes"] == len(html)
        assert "tenant alice" in html
        assert "service/tiny-matmul" in html
        assert "<script" not in html.lower()

    def test_report_jobs_are_cached_and_coalesced(self, tmp_path):
        with _engine(tmp_path) as engine:
            a = engine.submit(_tiny_matmul(), kind="report", tenant="t",
                              params={"now": 0})
            engine.wait_for(a.job_id, timeout=60.0)
            assert a.state == JobState.DONE, a.error
            b = engine.submit(_tiny_matmul(), kind="report", tenant="t",
                              params={"now": 0})
        assert b.cached is True
        assert b.result["report_html"] == a.result["report_html"]
        assert engine.metrics.counter("service.cache_hits").value == 1

    def test_report_job_without_store_fails_cleanly(self):
        with _engine() as engine:  # no store
            job = engine.submit(_tiny_matmul(), kind="report")
            engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.FAILED
        assert "perfdb store" in job.error

    def test_report_job_over_http(self, served):
        engine, client = served
        bench = client.submit(_tiny_matmul().to_dict(), tenant="web")
        client.wait(bench["job_id"], timeout=60.0)
        job = client.submit(_tiny_matmul().to_dict(), kind="report",
                            tenant="web",
                            params={"now": 0, "roofline": False,
                                    "analyze": False})
        done = client.wait(job["job_id"], timeout=60.0)
        assert done["state"] == "done", done
        assert done["result"]["report_html"].startswith("<!DOCTYPE html>")

    def test_report_is_a_known_kind(self):
        from repro.service.jobs import KINDS
        from repro.service.runner import _EXECUTORS
        assert "report" in KINDS
        assert set(KINDS) == set(_EXECUTORS)
