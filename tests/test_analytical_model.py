"""Tests for repro.analytical.model."""

import pytest

from repro.analytical import (
    FunctionLevelModel,
    InstructionLevelModel,
    LoopLevelModel,
    LoopTerm,
    ModelEvaluation,
    evaluate_model,
)
from repro.kernels import matmul_work, triad_work
from repro.microbench import characterize_simulated
from repro.simulator import stream_trace, triad_body


@pytest.fixture(scope="module")
def machine(cpu, table):
    return characterize_simulated(cpu, table)


class TestFunctionLevel:
    def test_memory_bound_prediction_is_traffic_over_bandwidth(self, machine):
        model = FunctionLevelModel(machine)
        w = triad_work(1_000_000)
        assert model.predict_seconds(w) == pytest.approx(
            w.bytes_total / machine.stream_bandwidth)
        assert model.bound(w) == "memory"

    def test_compute_bound_prediction(self, machine):
        model = FunctionLevelModel(machine)
        w = matmul_work(1024)
        assert model.predict_seconds(w) == pytest.approx(
            w.flops / machine.peak_flops)
        assert model.bound(w) == "compute"

    def test_no_overlap_is_sum(self, machine):
        w = triad_work(1000)
        overlap = FunctionLevelModel(machine, overlap=True).predict_seconds(w)
        serial = FunctionLevelModel(machine, overlap=False).predict_seconds(w)
        assert serial > overlap
        assert serial == pytest.approx(
            w.flops / machine.peak_flops + w.bytes_total / machine.stream_bandwidth)

    def test_explain_mentions_bound(self, machine):
        text = FunctionLevelModel(machine).explain(triad_work(100))
        assert "memory-bound" in text


class TestLoopLevel:
    def test_sum_of_terms(self):
        model = LoopLevelModel("m", (
            LoopTerm("inner", 1000, 1e-6),
            LoopTerm("setup", 1, 0.0, overhead_seconds=5e-4),
        ))
        assert model.predict_seconds() == pytest.approx(1e-3 + 5e-4)

    def test_dominant_term(self):
        model = LoopLevelModel("m", (
            LoopTerm("small", 10, 1e-9),
            LoopTerm("big", 1000, 1e-6),
        ))
        assert model.dominant_term().name == "big"

    def test_explain_lists_terms(self):
        model = LoopLevelModel("m", (LoopTerm("inner", 10, 1e-6),))
        assert "inner" in model.explain()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LoopLevelModel("m", ())

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            LoopTerm("x", 10, -1e-6)


class TestInstructionLevel:
    def test_compute_only_prediction(self, cpu, table):
        model = InstructionLevelModel(cpu, table)
        n = 10000
        t = model.predict_seconds(triad_body(), n)
        # 1.5 cycles/iteration on the default table
        assert t == pytest.approx(1.5 * n / cpu.frequency_hz, rel=0.2)

    def test_with_memory_slower(self, cpu, table):
        model = InstructionLevelModel(cpu, table)
        n = 20000
        bare = model.predict_seconds(triad_body(), n)
        full = model.predict_seconds(triad_body(), n, stream_trace(n, "triad"))
        assert full > bare

    def test_bounds_ordered(self, cpu, table):
        model = InstructionLevelModel(cpu, table)
        n = 5000
        opt, pess = model.predict_bounds(triad_body(), n, stream_trace(n, "triad"))
        assert opt <= pess

    def test_explain_names_bottleneck(self, cpu, table):
        model = InstructionLevelModel(cpu, table)
        text = model.explain(triad_body(), 100)
        assert "throughput bound" in text


class TestEvaluation:
    def test_mape(self):
        ev = ModelEvaluation("m", (1.1, 2.0), (1.0, 2.0))
        assert ev.mape == pytest.approx(0.05)

    def test_rank_correlation_perfect(self):
        ev = ModelEvaluation("m", (1.0, 2.0, 3.0), (10.0, 20.0, 30.0))
        assert ev.rank_correlation() == pytest.approx(1.0)

    def test_rank_correlation_inverted(self):
        ev = ModelEvaluation("m", (3.0, 2.0, 1.0), (10.0, 20.0, 30.0))
        assert ev.rank_correlation() == pytest.approx(-1.0)

    def test_evaluate_model_pairs_by_key(self):
        ev = evaluate_model("m", {"a": 1.0, "b": 2.0}, {"b": 2.0, "a": 1.0})
        assert ev.mape == 0.0
        assert ev.labels == ("a", "b")

    def test_evaluate_model_key_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_model("m", {"a": 1.0}, {"b": 1.0})

    def test_report_contains_errors(self):
        ev = ModelEvaluation("m", (1.2,), (1.0,), ("case",))
        assert "+20.0%" in ev.report()

    def test_granularity_ladder_improves_accuracy(self, cpu, table, machine):
        """The assignment's core observation: finer granularity -> better
        prediction of the *simulated ground truth*."""
        from repro.simulator import CPUModel

        n = 30000
        truth = CPUModel(cpu, table).run(
            stream_trace(n, "triad"), triad_body(), n).seconds

        # function-level on single core: crude peak-based estimate
        single = characterize_simulated(cpu.with_cores(1), table)
        coarse = FunctionLevelModel(single).predict_seconds(triad_work(n))
        fine = InstructionLevelModel(cpu, table).predict_seconds(
            triad_body(), n, stream_trace(n, "triad"))
        err_coarse = abs(coarse - truth) / truth
        err_fine = abs(fine - truth) / truth
        assert err_fine <= err_coarse
