"""Tests for the assignment registry (§4.2) and its cross-consistency."""

import importlib
from pathlib import Path

import pytest

from repro.course import (
    ASSIGNMENT_POINTS,
    ASSIGNMENTS,
    assignment,
    release_schedule,
    topics_for_objective,
)


class TestRegistry:
    def test_four_assignments(self):
        assert len(ASSIGNMENTS) == 4
        assert [a.number for a in ASSIGNMENTS] == [1, 2, 3, 4]

    def test_points_match_equation_3(self):
        assert tuple(a.points for a in ASSIGNMENTS) == ASSIGNMENT_POINTS

    def test_titles_match_paper(self):
        assert ASSIGNMENTS[0].title == "The Roofline Model"
        assert "Microbenchmarking" in ASSIGNMENTS[1].title
        assert ASSIGNMENTS[2].title == "Statistical Modeling"
        assert "Patterns" in ASSIGNMENTS[3].title

    def test_release_staging_matches_421(self):
        """§4.2.1: A1 first (2-week deadline), then A2 overlapping, then
        A3 and A4 released together with the course-end deadline."""
        schedule = release_schedule()
        assert schedule[1] == [1]
        assert schedule[3] == [2]
        assert schedule[5] == [3, 4]
        assert assignment(3).deadline_week == assignment(4).deadline_week == 8

    def test_a1_two_week_deadline(self):
        assert assignment(1).duration_weeks == 2

    def test_a3_a4_share_three_weeks(self):
        assert assignment(3).duration_weeks == 3
        assert assignment(4).duration_weeks == 3

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            assignment(5)


class TestCrossConsistency:
    def test_modules_import(self):
        for spec in ASSIGNMENTS:
            for module in spec.our_modules:
                importlib.import_module(module)

    def test_examples_exist(self):
        root = Path(__file__).resolve().parent.parent
        for spec in ASSIGNMENTS:
            assert (root / spec.example).exists(), spec.example

    def test_kernels_registered(self):
        from repro.kernels import REGISTRY

        families = set(REGISTRY.kernels())
        for spec in ASSIGNMENTS:
            for kernel in spec.kernels:
                if kernel != "synthetic-patterns":
                    assert kernel in families, kernel

    def test_objectives_are_taught(self):
        """Every objective an assignment serves must be covered by at
        least one Table 1 topic."""
        for spec in ASSIGNMENTS:
            for objective in spec.objectives:
                assert topics_for_objective(objective), (spec.number, objective)

    def test_spmv_appears_in_both_a3_and_a4(self):
        # §4.2: assignment 4 reuses SpMV from assignment 3
        assert "spmv" in assignment(3).kernels
        assert "spmv" in assignment(4).kernels
