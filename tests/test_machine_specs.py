"""Tests for repro.machine.specs."""

import pytest

from repro.machine import (
    CacheLevel,
    ClusterSpec,
    CPUSpec,
    MemorySpec,
    NodeSpec,
    VectorUnit,
    das5_cluster,
    das5_node,
    generic_server_cpu,
    gpu_cc30,
    gpu_cc60,
    gpu_cc72,
    student_laptop_cpu,
)


class TestCacheLevel:
    def test_geometry(self):
        l1 = CacheLevel("L1", 32 * 1024, 64, 8)
        assert l1.n_lines == 512
        assert l1.n_sets == 64
        assert not l1.is_fully_associative

    def test_fully_associative(self):
        c = CacheLevel("tiny", 1024, 64, 16)
        assert c.is_fully_associative

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 1024, 48)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 0)

    def test_rejects_excess_associativity(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 1024, 64, 32)

    def test_rejects_unaligned_capacity(self):
        with pytest.raises(ValueError):
            CacheLevel("bad", 1000, 64, 4)


class TestVectorUnit:
    def test_lanes_fp64(self):
        assert VectorUnit(256).lanes(8) == 4

    def test_lanes_fp32(self):
        assert VectorUnit(256).lanes(4) == 8

    def test_flops_per_cycle_with_fma(self):
        vu = VectorUnit(256, fma=True, pipelines=2)
        assert vu.flops_per_cycle(8) == 16.0

    def test_flops_per_cycle_without_fma(self):
        vu = VectorUnit(256, fma=False, pipelines=2)
        assert vu.flops_per_cycle(8) == 8.0

    def test_rejects_weird_width(self):
        with pytest.raises(ValueError):
            VectorUnit(192)

    def test_rejects_non_dividing_dtype(self):
        with pytest.raises(ValueError):
            VectorUnit(256).lanes(3)


class TestCPUSpec:
    def test_peak_flops_all_cores(self, cpu):
        # 16 cores * 2.6 GHz * 16 FLOP/cycle
        assert cpu.peak_flops() == pytest.approx(16 * 2.6e9 * 16)

    def test_peak_flops_single_core(self, cpu):
        assert cpu.peak_flops(cores=1) == pytest.approx(2.6e9 * 16)

    def test_peak_scalar_below_vector(self, cpu):
        assert cpu.peak_scalar_flops() < cpu.peak_flops()

    def test_ridge_point_is_peak_over_bandwidth(self, cpu):
        assert cpu.ridge_point() == pytest.approx(
            cpu.peak_flops() / cpu.stream_bandwidth)

    def test_machine_balance_is_reciprocal_of_ridge(self, cpu):
        assert cpu.machine_balance() == pytest.approx(1.0 / cpu.ridge_point())

    def test_cache_lookup_case_insensitive(self, cpu):
        assert cpu.cache("l2").name == "L2"

    def test_cache_lookup_missing(self, cpu):
        with pytest.raises(KeyError):
            cpu.cache("L4")

    def test_with_cores_scales_peak(self, cpu):
        half = cpu.with_cores(8)
        assert half.peak_flops() == pytest.approx(cpu.peak_flops() / 2)

    def test_with_cores_out_of_range(self, cpu):
        with pytest.raises(ValueError):
            cpu.with_cores(17)

    def test_cache_ordering_enforced(self):
        with pytest.raises(ValueError):
            CPUSpec("bad", 4, 2e9, caches=(
                CacheLevel("L2", 256 * 1024),
                CacheLevel("L1", 32 * 1024),
            ))


class TestGPUSpec:
    def test_fp32_peak(self):
        g = gpu_cc60()
        assert g.peak_flops(4) == pytest.approx(56 * 64 * 1.3e9 * 2)

    def test_fp64_derated(self):
        g = gpu_cc60()
        assert g.peak_flops(8) == pytest.approx(g.peak_flops(4) / 8)

    def test_rejects_other_dtypes(self):
        with pytest.raises(ValueError):
            gpu_cc60().peak_flops(2)

    def test_compute_capability_range_covers_paper(self):
        ccs = [g.compute_capability for g in (gpu_cc30(), gpu_cc60(), gpu_cc72())]
        assert min(ccs) == (3, 0) and max(ccs) == (7, 2)

    def test_newer_gpus_have_more_bandwidth(self):
        assert (gpu_cc30().memory_bandwidth_bytes_per_s
                < gpu_cc60().memory_bandwidth_bytes_per_s
                < gpu_cc72().memory_bandwidth_bytes_per_s)


class TestNodeAndCluster:
    def test_node_total_cores(self):
        node = das5_node()
        assert node.total_cores == 2 * 16

    def test_node_peak_includes_gpu(self):
        node = das5_node()
        assert node.peak_flops(8) > node.peak_flops(8, include_gpus=False)

    def test_cluster_aggregates(self):
        c = das5_cluster(8)
        assert c.total_cores == 8 * 32
        assert c.peak_flops() == pytest.approx(8 * c.node.peak_flops())

    def test_bisection_bandwidth(self):
        c = das5_cluster(8)
        assert c.bisection_bandwidth() == pytest.approx(4 * c.link_bandwidth_bytes_per_s)

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            ClusterSpec("bad", das5_node(), 0)

    def test_laptop_is_smaller_than_server(self):
        assert student_laptop_cpu().peak_flops() < generic_server_cpu().peak_flops()
