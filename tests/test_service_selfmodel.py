"""Tests for the queueing self-model check and the Poisson load client."""

import pytest

from repro.observe.metrics import MetricsRegistry
from repro.service.client import PoissonClient, ServiceClient
from repro.service.engine import JobEngine
from repro.service.httpd import start_server
from repro.service.quota import AdmissionController
from repro.service.selfmodel import SelfModelReport, self_model_check


@pytest.fixture()
def service():
    engine = JobEngine(
        store=None, workers=2,
        admission=AdmissionController(max_queue_depth=4096,
                                      tenant_rate=10_000, tenant_burst=10_000),
        metrics=MetricsRegistry())
    server, _ = start_server(engine, port=0)
    host, port = server.server_address[:2]
    yield ServiceClient(host, port)
    server.shutdown()
    engine.shutdown()


class TestPoissonClient:
    def test_drive_is_seed_deterministic_in_its_draws(self, service):
        a = PoissonClient(service, rate=400.0, service_rate=500.0, jobs=20,
                          seed=7, tenant="d1").run()
        b = PoissonClient(service, rate=400.0, service_rate=500.0, jobs=20,
                          seed=7, tenant="d2").run()
        assert sorted(a.demands) == pytest.approx(sorted(b.demands))
        assert len(a.submitted) == 20

    def test_measured_arrival_rate_matches_nominal(self, service):
        drive = PoissonClient(service, rate=200.0, service_rate=1000.0,
                              jobs=100, seed=0, tenant="rate").run()
        assert drive.shed == 0
        # open-loop absolute schedule: realized rate near nominal.  A
        # 100-job Poisson window has ~10% statistical CV on the realized
        # rate, so the gate must leave several sigma for sampling noise
        # plus scheduler lag while still catching gross regularization.
        assert drive.measured_arrival_rate == pytest.approx(200.0, rel=0.35)


class TestSelfModel:
    def test_check_runs_and_is_loosely_within_model(self, service):
        # loose-tolerance CI variant of the acceptance check: short run,
        # wide gate — the calibrated long run lives in the service-smoke job
        report = self_model_check(service, rate=100.0, service_rate=80.0,
                                  jobs=150, workers=2, seed=0)
        assert report.shed == 0
        assert report.jobs >= 100
        assert 0.0 < report.utilization_measured < 1.0
        assert report.mean_wait_predicted > 0
        assert report.within(0.8), report.report()

    def test_report_text_names_the_verdict_inputs(self):
        report = SelfModelReport(
            jobs=100, shed=2, workers=2, arrival_rate=60.0, service_rate=50.0,
            utilization_measured=0.6, mean_wait_measured=0.010,
            mean_wait_predicted=0.012, prob_wait_predicted=0.45)
        text = report.report()
        assert "lambda=60.0/s" in text
        assert "rho=0.600" in text
        assert report.wait_error == pytest.approx(-1 / 6)
        assert report.within(0.2) and not report.within(0.1)

    def test_zero_prediction_is_infinite_error(self):
        report = SelfModelReport(
            jobs=10, shed=0, workers=2, arrival_rate=1.0, service_rate=100.0,
            utilization_measured=0.005, mean_wait_measured=0.001,
            mean_wait_predicted=0.0, prob_wait_predicted=0.0)
        assert report.wait_error == float("inf")
        assert not report.within(10.0)
