"""Tests for repro.perfdb records and the append-only store's durability."""

import json
import os
import subprocess
import sys
import warnings

import pytest

from repro.perfdb import (
    SCHEMA_VERSION,
    BenchmarkResult,
    PerfStore,
    PerfStoreWarning,
    RunRecord,
    SchemaMismatch,
    machine_fingerprint,
)


def make_run(label, created, samples=None, run_id=None):
    """A record with no probe/git work, for fast deterministic tests."""
    samples = samples or {"bench/a": [1.0, 1.1, 0.9]}
    rec = RunRecord.new(samples, label=label, machine={}, git_sha="deadbeef",
                        created=created)
    if run_id is not None:
        rec = RunRecord(run_id=run_id, created=rec.created,
                        benchmarks=rec.benchmarks, machine=rec.machine,
                        git_sha=rec.git_sha, label=rec.label,
                        metrics=rec.metrics)
    return rec


class TestRunRecord:
    def test_roundtrip_through_dict(self):
        rec = make_run("x", created=100.0,
                       samples={"b/one": [1.0, 2.0], "b/two": [3.0, 4.0]})
        back = RunRecord.from_dict(rec.to_dict())
        assert back == rec

    def test_schema_mismatch_rejected(self):
        doc = make_run("x", created=1.0).to_dict()
        doc["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaMismatch):
            RunRecord.from_dict(doc)

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            RunRecord.new({}, machine={}, git_sha=None)

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkResult.from_times("b", [1.0, 0.0])

    def test_describe_mentions_label_and_sha(self):
        text = make_run("tuned", created=1.0).describe()
        assert "tuned" in text and "deadbeef" in text

    def test_fingerprint_has_provenance_fields(self):
        fp = machine_fingerprint(calibrate=False)
        assert fp["python"] and fp["numpy"] and fp["cpu_count"] >= 1
        assert "calibration" not in fp

    def test_fingerprint_calibration_probe(self):
        fp = machine_fingerprint(calibrate=True)
        assert fp["calibration"]["best_seconds"] > 0


class TestStoreBasics:
    def test_append_and_load(self, tmp_path):
        store = PerfStore(tmp_path / "db")
        for i in range(3):
            store.append(make_run(f"run{i}", created=float(i)))
        runs = store.runs()
        assert [r.label for r in runs] == ["run0", "run1", "run2"]
        assert store.latest().label == "run2"

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERFDB", str(tmp_path / "envdb"))
        assert PerfStore().root == tmp_path / "envdb"

    def test_get_by_prefix_and_latest(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_run("a", 1.0, run_id="20240101-aaaa"))
        store.append(make_run("b", 2.0, run_id="20240102-bbbb"))
        assert store.get("latest").label == "b"
        assert store.get("20240101").label == "a"
        with pytest.raises(LookupError):
            store.get("2024")  # ambiguous prefix
        with pytest.raises(LookupError):
            store.get("nope")

    def test_empty_store(self, tmp_path):
        store = PerfStore(tmp_path / "nothing")
        assert store.runs() == []
        assert store.latest() is None
        assert store.baseline() is None

    def test_history_and_benchmark_ids(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_run("a", 1.0, samples={"b/x": [1.0]}))
        store.append(make_run("b", 2.0, samples={"b/x": [1.0], "b/y": [2.0]}))
        assert store.benchmark_ids() == ["b/x", "b/y"]
        assert [r.label for r in store.history("b/y")] == ["b"]


class TestStoreDurability:
    def test_corrupt_line_skipped_with_warning(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_run("good1", 1.0))
        with open(store.runs_path, "a") as fh:
            fh.write('{"schema": 1, "run_id": "trunc')  # crash mid-append
            fh.write("\n")
        store.append(make_run("good2", 2.0))
        with pytest.warns(PerfStoreWarning, match="corrupt"):
            runs = store.runs()
        assert [r.label for r in runs] == ["good1", "good2"]

    def test_future_schema_skipped_with_warning(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_run("old", 1.0))
        doc = make_run("future", 2.0).to_dict()
        doc["schema"] = SCHEMA_VERSION + 7
        with open(store.runs_path, "a") as fh:
            fh.write(json.dumps(doc) + "\n")
        with pytest.warns(PerfStoreWarning, match="schema"):
            runs = store.runs()
        assert [r.label for r in runs] == ["old"]

    def test_malformed_record_skipped_with_warning(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_run("ok", 1.0))
        with open(store.runs_path, "a") as fh:
            fh.write(json.dumps({"schema": SCHEMA_VERSION, "run_id": "r",
                                 "created": 1.0, "benchmarks": {}}) + "\n")
        with pytest.warns(PerfStoreWarning, match="malformed"):
            runs = store.runs()
        assert [r.label for r in runs] == ["ok"]

    def test_concurrent_appends_do_not_interleave(self, tmp_path):
        """Two processes appending at once: every record loads intact."""
        script = (
            "import sys\n"
            "from repro.perfdb import PerfStore, RunRecord\n"
            "store = PerfStore(sys.argv[1])\n"
            "who = sys.argv[2]\n"
            "for i in range(20):\n"
            "    store.append(RunRecord.new(\n"
            "        {'bench/' + who: [1.0 + i, 1.1 + i]},\n"
            "        label=f'{who}{i}', machine={}, git_sha=None,\n"
            "        created=float(i)))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src), env.get("PYTHONPATH", "")])
        procs = [subprocess.Popen([sys.executable, "-c", script,
                                   str(tmp_path), who], env=env)
                 for who in ("a", "b")]
        for p in procs:
            assert p.wait(timeout=120) == 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any skip-warning fails the test
            runs = PerfStore(tmp_path).runs()
        assert len(runs) == 40
        assert sum(1 for r in runs if "bench/a" in r.benchmarks) == 20


class TestBaselinePin:
    def test_pin_and_read_back(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_run("a", 1.0))
        store.append(make_run("b", 2.0))
        pinned = store.set_baseline(store.runs()[0].run_id)
        assert pinned.label == "a"
        assert store.baseline().label == "a"
        store.set_baseline("latest")
        assert store.baseline().label == "b"

    def test_dangling_pin_warns_and_returns_none(self, tmp_path):
        store = PerfStore(tmp_path)
        store.append(make_run("a", 1.0))
        store.set_baseline("latest")
        store.runs_path.unlink()
        store.append(make_run("other", 2.0))
        with pytest.warns(PerfStoreWarning, match="baseline"):
            assert store.baseline() is None
