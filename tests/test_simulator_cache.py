"""Tests for repro.simulator.cache."""

import numpy as np
import pytest

from repro.machine import CacheLevel
from repro.simulator import Cache, MultiLevelCache, amat, hierarchy_for


def tiny_level(capacity=512, line=64, ways=2, name="L1", **kw):
    return CacheLevel(name, capacity, line, ways, **kw)


class TestSingleCache:
    def test_cold_miss_then_hit(self):
        c = Cache(tiny_level())
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True   # same line
        assert c.access(64) is False  # next line

    def test_lru_eviction_order(self):
        # 2-way set: fill with A, B; touch A; insert C -> B evicted
        c = Cache(tiny_level())
        n_sets = c.level.n_sets
        line = c.level.line_bytes
        a, b, d = 0, n_sets * line, 2 * n_sets * line  # all map to set 0
        c.access(a)
        c.access(b)
        c.access(a)        # A most recent
        c.access(d)        # evicts B
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)

    def test_fifo_ignores_recency(self):
        c = Cache(tiny_level(), policy="fifo")
        n_sets = c.level.n_sets
        line = c.level.line_bytes
        a, b, d = 0, n_sets * line, 2 * n_sets * line
        c.access(a)
        c.access(b)
        c.access(a)        # recency irrelevant under FIFO
        c.access(d)        # evicts A (oldest insert)
        assert not c.contains(a)
        assert c.contains(b)

    def test_dirty_eviction_counts_writeback(self):
        c = Cache(tiny_level())
        n_sets, line = c.level.n_sets, c.level.line_bytes
        c.access(0, is_write=True)
        c.access(n_sets * line)
        c.access(2 * n_sets * line)  # evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = Cache(tiny_level())
        n_sets, line = c.level.n_sets, c.level.line_bytes
        for k in range(3):
            c.access(k * n_sets * line)
        assert c.stats.evictions == 1
        assert c.stats.writebacks == 0

    def test_capacity_sweep_thrashes(self):
        c = Cache(tiny_level(capacity=512, ways=2))
        # footprint 2x capacity, repeated sweep -> ~100% misses after warmup
        addrs = [(i * 64) % 1024 for i in range(64)]
        for a in addrs:
            c.access(a)
        assert c.stats.miss_ratio > 0.9

    def test_fits_in_cache_all_hits_after_warmup(self):
        c = Cache(tiny_level(capacity=512, ways=8))
        addrs = [(i * 64) % 512 for i in range(80)]
        for a in addrs:
            c.access(a)
        assert c.stats.hits == 80 - 8

    def test_reset(self):
        c = Cache(tiny_level())
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert c.occupancy == 0

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Cache(tiny_level()).access(-1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Cache(tiny_level(), policy="mru")

    def test_random_policy_deterministic_by_seed(self):
        levels = tiny_level(capacity=256, ways=2)
        rng_addrs = np.random.default_rng(0).integers(0, 4096, 500).tolist()
        c1 = Cache(levels, policy="random", seed=5)
        c2 = Cache(levels, policy="random", seed=5)
        for a in rng_addrs:
            c1.access(a)
            c2.access(a)
        assert c1.stats.misses == c2.stats.misses


class TestHierarchy:
    def make(self, prefetch=False):
        return MultiLevelCache(
            (tiny_level(512, name="L1", ways=2),
             tiny_level(2048, name="L2", ways=4)),
            prefetch=prefetch)

    def test_miss_fills_all_levels(self):
        h = self.make()
        assert h.access(0) == 2  # memory
        assert h.access(0) == 0  # now L1 hit
        assert h.memory_accesses == 1

    def test_l2_hit_after_l1_eviction(self):
        h = self.make()
        l1 = h.caches[0]
        n_sets, line = l1.level.n_sets, l1.level.line_bytes
        conflict = [k * n_sets * line for k in range(3)]
        for a in conflict:
            h.access(a)
        # address 0 evicted from L1 but still in L2
        assert h.access(0) == 1

    def test_level_ordering_enforced(self):
        with pytest.raises(ValueError):
            MultiLevelCache((tiny_level(2048), tiny_level(512)))

    def test_trace_fast_path_equals_slow_path(self, cpu):
        rng = np.random.default_rng(2)
        addrs = np.concatenate([
            rng.integers(0, 100_000, 2000),
            np.arange(0, 64 * 500, 8),
        ]).astype(np.int64)
        writes = rng.random(addrs.size) < 0.25
        for prefetch in (False, True):
            fast = hierarchy_for(cpu, prefetch=prefetch)
            fast.access_trace(addrs, writes)
            slow = hierarchy_for(cpu, prefetch=prefetch)
            for a, w in zip(addrs.tolist(), writes.tolist()):
                slow.access(a, w)
            assert fast.miss_counts() == slow.miss_counts()
            assert fast.memory_writebacks == slow.memory_writebacks
            assert fast.memory_prefetches == slow.memory_prefetches
            for cf, cs in zip(fast.caches, slow.caches):
                assert cf.stats == cs.stats

    def test_dram_traffic_accounts_lines(self):
        h = self.make()
        h.access_trace(np.arange(0, 64 * 10, 64))
        assert h.dram_traffic_bytes() == 10 * 64

    def test_writeback_traffic_counted(self):
        h = self.make()
        l2 = h.caches[1]
        stride = l2.level.n_sets * l2.level.line_bytes
        addrs = np.array([k * stride for k in range(8)], dtype=np.int64)
        h.access_trace(addrs, np.ones(8, dtype=bool))
        assert h.memory_writebacks > 0
        assert h.dram_traffic_bytes() > 8 * 64

    def test_reset_clears_everything(self):
        h = self.make()
        h.access_trace(np.arange(0, 6400, 64))
        h.reset()
        assert h.total_accesses == 0
        assert h.memory_accesses == 0


class TestPrefetcher:
    def test_stream_covered(self, cpu):
        h = hierarchy_for(cpu, prefetch=True)
        h.access_trace(np.arange(0, 64 * 3000, 8, dtype=np.int64))
        assert h.caches[0].stats.miss_ratio < 0.01
        assert h.memory_prefetches > 1000

    def test_stride_covered(self, cpu):
        h = hierarchy_for(cpu, prefetch=True)
        h.access_trace(np.arange(0, 256 * 5000, 256, dtype=np.int64))
        assert h.caches[0].stats.miss_ratio < 0.05

    def test_random_not_covered(self, cpu):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 28, 20000).astype(np.int64) & ~7
        h = hierarchy_for(cpu, prefetch=True)
        h.access_trace(addrs)
        assert h.caches[0].stats.miss_ratio > 0.9
        assert h.memory_prefetches < 0.05 * addrs.size

    def test_prefetch_traffic_charged_to_dram(self, cpu):
        stream = np.arange(0, 64 * 2000, 8, dtype=np.int64)
        on = hierarchy_for(cpu, prefetch=True)
        on.access_trace(stream)
        off = hierarchy_for(cpu, prefetch=False)
        off.access_trace(stream)
        # same unique lines -> comparable total DRAM traffic (within 10%)
        assert on.dram_traffic_bytes() == pytest.approx(
            off.dram_traffic_bytes(), rel=0.1)

    def test_prefetch_off_by_default(self, cpu):
        h = hierarchy_for(cpu)
        h.access_trace(np.arange(0, 64 * 100, 8, dtype=np.int64))
        assert h.memory_prefetches == 0


class TestAmat:
    def test_all_l1_hits_equals_l1_latency(self, cpu):
        h = hierarchy_for(cpu)
        addrs = np.zeros(100, dtype=np.int64)
        h.access_trace(addrs)
        value = amat(h, memory_latency_cycles=200)
        l1 = cpu.caches[0].latency_cycles
        # 99 hits at L1 latency, 1 cold miss to memory
        assert value == pytest.approx((99 * l1 + 200) / 100)

    def test_requires_accesses(self, cpu):
        with pytest.raises(ValueError):
            amat(hierarchy_for(cpu), 100)
