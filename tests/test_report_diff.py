"""Tests for repro.report.diff — run-vs-run and machine-vs-machine."""

from repro.perfdb.record import RunRecord
from repro.perfdb.store import PerfStore
from repro.report import compare_report
from repro.report.__main__ import main as report_main
from repro.report.diff import machine_diff_rows


def _run(scale=1.0, created=1.0, label="", machine=None, n=12):
    samples = {"k.v[n=8]": [1e-3 * scale * (1 + 0.002 * i) for i in range(n)],
               "k.w[n=8]": [2e-3 * (1 + 0.002 * i) for i in range(n)]}
    return RunRecord.new(samples, label=label, created=created,
                         machine=machine or {})


class TestCompareReport:
    def test_clean_pair_passes(self):
        base, cand = _run(created=1.0), _run(created=2.0)
        html, regressed = compare_report(cand, base, now=0.0)
        assert not regressed
        assert "PASS" in html
        assert html.count("UNCHANGED") >= 2

    def test_injected_slowdown_regresses(self):
        base, cand = _run(created=1.0), _run(scale=3.0, created=2.0)
        html, regressed = compare_report(cand, base, now=0.0)
        assert regressed
        assert "FAIL" in html and "REGRESSED" in html
        # the untouched benchmark stays unchanged
        assert "UNCHANGED" in html

    def test_verdicts_match_the_gate(self):
        from repro.perfdb.compare import compare_runs
        base, cand = _run(created=1.0), _run(scale=3.0, created=2.0)
        cmp = compare_runs(cand, base)
        html, regressed = compare_report(cand, base, now=0.0)
        assert regressed == (not cmp.ok)
        for r in cmp.results:
            assert r.benchmark_id in html

    def test_deterministic_with_pinned_now(self):
        base, cand = _run(created=1.0), _run(created=2.0)
        assert compare_report(cand, base, now=5.0) \
            == compare_report(cand, base, now=5.0)

    def test_nasty_benchmark_names_escaped(self):
        nasty = 'b<&"quote">'
        base = RunRecord.new({nasty: [1e-3] * 10}, created=1.0)
        cand = RunRecord.new({nasty: [1e-3] * 10}, created=2.0)
        html, _ = compare_report(cand, base, now=0.0)
        assert nasty not in html
        assert "b&lt;&amp;&quot;quote&quot;&gt;" in html


class TestMachineDiff:
    def test_differing_keys_flagged(self):
        a = {"hostname": "a", "python": "3.11", "cpu": {"cores": 8}}
        b = {"hostname": "b", "python": "3.11", "cpu": {"cores": 16}}
        rows = {key: differs for key, _, _, differs in machine_diff_rows(a, b)}
        assert rows["hostname"] and rows["cpu.cores"]
        assert not rows["python"]

    def test_one_sided_keys_differ(self):
        rows = dict((k, d) for k, _, _, d in
                    machine_diff_rows({"only_a": 1}, {}))
        assert rows["only_a"]

    def test_fingerprints_render_in_report(self):
        base = _run(created=1.0, machine={"hostname": "alpha", "os": "linux"})
        cand = _run(created=2.0, machine={"hostname": "beta", "os": "linux"})
        html, _ = compare_report(cand, base, now=0.0)
        assert "Machine fingerprints" in html
        assert "alpha" in html and "beta" in html
        assert "1 fingerprint key(s) differ" in html

    def test_identical_machines_say_so(self):
        m = {"hostname": "same"}
        html, _ = compare_report(_run(created=2.0, machine=m),
                                 _run(created=1.0, machine=m), now=0.0)
        assert "identical machine fingerprints" in html


class TestCli:
    def _record_two(self, tmp_path, scale=1.0):
        store = PerfStore(tmp_path / "perfdb")
        store.append(_run(created=1.0, label="base"))
        store.append(_run(scale=scale, created=2.0, label="cand"))
        return store

    def test_exit_0_on_clean_pair(self, tmp_path):
        self._record_two(tmp_path)
        out = tmp_path / "cmp.html"
        rc = report_main(["--store", str(tmp_path / "perfdb"), "compare",
                          "-o", str(out), "--now", "0"])
        assert rc == 0
        assert "PASS" in out.read_text(encoding="utf-8")

    def test_exit_1_on_regression(self, tmp_path, capsys):
        self._record_two(tmp_path, scale=3.0)
        out = tmp_path / "cmp.html"
        rc = report_main(["--store", str(tmp_path / "perfdb"), "compare",
                          "-o", str(out), "--now", "0"])
        assert rc == 1
        assert "REGRESSED" in out.read_text(encoding="utf-8")
        assert "REGRESSED" in capsys.readouterr().err

    def test_exit_2_without_enough_runs(self, tmp_path, capsys):
        store = PerfStore(tmp_path / "perfdb")
        store.append(_run(created=1.0))
        rc = report_main(["--store", str(tmp_path / "perfdb"), "compare"])
        assert rc == 2
        assert "at least two runs" in capsys.readouterr().err

    def test_explicit_candidate_and_baseline_prefixes(self, tmp_path):
        store = self._record_two(tmp_path)
        runs = store.runs()
        out = tmp_path / "cmp.html"
        rc = report_main(["--store", str(tmp_path / "perfdb"), "compare",
                          "-o", str(out), "--now", "0",
                          "--candidate", runs[1].run_id,
                          "--baseline", runs[0].run_id])
        assert rc == 0
        html = out.read_text(encoding="utf-8")
        assert runs[0].run_id in html and runs[1].run_id in html

    def test_unknown_run_exits_2(self, tmp_path, capsys):
        self._record_two(tmp_path)
        rc = report_main(["--store", str(tmp_path / "perfdb"), "compare",
                          "--candidate", "deadbeef"])
        assert rc == 2
        assert "report compare:" in capsys.readouterr().err
