"""Tests for repro.analytical.ecm."""

import pytest

from repro.analytical import ECMModel
from repro.simulator import matmul_inner_body, triad_body


@pytest.fixture(scope="module")
def ecm(cpu, table):
    return ECMModel(cpu, table)


class TestECM:
    def test_iterations_per_line(self, ecm):
        pred = ecm.predict(triad_body(True), 2, 1)
        assert pred.iterations_per_line == 8  # 64B line / 8B doubles

    def test_composition_rule(self, ecm):
        pred = ecm.predict(triad_body(True), 2, 1)
        assert pred.cycles_per_line == pytest.approx(
            max(pred.t_overlap, pred.t_nonoverlap + pred.t_data_total))

    def test_memory_resident_slower_than_cache_resident(self, ecm):
        mem = ecm.predict(triad_body(True), 2, 1)
        l2 = ecm.predict(triad_body(True), 2, 1, hit_level="L2")
        assert mem.cycles_per_line > l2.cycles_per_line

    def test_cache_resident_has_no_mem_term(self, ecm):
        pred = ecm.predict(triad_body(True), 2, 1, hit_level="L3")
        assert "MEM" not in pred.t_levels

    def test_compute_bound_kernel_saturation_infinite(self, ecm):
        pred = ecm.predict(matmul_inner_body(True), 2, 0, hit_level="L2")
        assert pred.saturation_cores() == float("inf")

    def test_streaming_kernel_saturates(self, ecm, cpu):
        pred = ecm.predict(triad_body(True), 2, 1)
        n_sat = pred.saturation_cores()
        assert 1 < n_sat < cpu.cores

    def test_scaling_curve_flattens_at_saturation(self, ecm, cpu):
        pred = ecm.predict(triad_body(True), 2, 1)
        curve = ecm.scaling_curve(pred)
        values = [curve[p] for p in sorted(curve)]
        # strictly decreasing then constant at the memory floor
        floor = pred.t_levels["MEM"]
        assert values[-1] == pytest.approx(floor)
        assert values[0] > values[1]

    def test_multicore_never_beats_memory_floor(self, ecm):
        pred = ecm.predict(triad_body(True), 2, 1)
        assert pred.multicore_cycles_per_line(1000) == pytest.approx(
            pred.t_levels["MEM"])

    def test_seconds_scales_with_iterations(self, ecm):
        pred = ecm.predict(triad_body(True), 2, 1)
        assert pred.seconds(1600) == pytest.approx(pred.seconds(800) * 2)

    def test_rejects_streamless(self, ecm):
        with pytest.raises(ValueError):
            ecm.predict(triad_body(True), 0, 0)

    def test_unknown_hit_level(self, ecm):
        with pytest.raises(KeyError):
            ecm.predict(triad_body(True), 2, 1, hit_level="L9")

    def test_report_format(self, ecm):
        text = ecm.predict(triad_body(True), 2, 1).report()
        assert "cy/line" in text and "n_sat" in text
