"""Tests for repro.counters: events, collector, derived metrics."""

import pytest

from repro.counters import (
    EVENTS,
    CounterSession,
    available_events,
    derived_metrics,
)
from repro.simulator import stream_trace, triad_body


class TestEvents:
    def test_papi_presets_present(self):
        for name in ("PAPI_TOT_CYC", "PAPI_TOT_INS", "PAPI_L1_DCM",
                     "PAPI_BR_MSP", "PAPI_FP_OPS"):
            assert name in EVENTS

    def test_available_sorted(self):
        events = available_events()
        assert events == sorted(events)
        assert len(events) >= 12

    def test_descriptions_non_empty(self):
        for event in EVENTS.values():
            assert event.describe


class TestCounterSession:
    def test_default_counts_everything(self, cpu, table):
        session = CounterSession(cpu, table)
        n = 3000
        reading = session.count(stream_trace(n, "triad"), triad_body(), n)
        assert reading["PAPI_TOT_INS"] == 7 * n
        assert reading["PAPI_LD_INS"] == 2 * n
        assert reading["PAPI_SR_INS"] == n
        assert reading["PAPI_TOT_CYC"] > 0

    def test_event_subset(self, cpu, table):
        session = CounterSession(cpu, table, ["PAPI_TOT_CYC"])
        n = 500
        reading = session.count(stream_trace(n, "copy"), triad_body(), n)
        assert set(reading.values) == {"PAPI_TOT_CYC"}
        with pytest.raises(KeyError):
            reading["PAPI_TOT_INS"]

    def test_unknown_event_rejected(self, cpu, table):
        with pytest.raises(KeyError):
            CounterSession(cpu, table, ["PAPI_MADE_UP"])

    def test_empty_event_set_rejected(self, cpu, table):
        with pytest.raises(ValueError):
            CounterSession(cpu, table, [])

    def test_report_lists_events(self, cpu, table):
        session = CounterSession(cpu, table, ["PAPI_TOT_CYC", "PAPI_TOT_INS"])
        n = 200
        reading = session.count(stream_trace(n, "copy"), triad_body(), n,
                                label="demo")
        text = reading.report()
        assert "demo" in text and "PAPI_TOT_CYC" in text


class TestDerivedMetrics:
    def test_core_ratios_consistent(self, cpu, table):
        session = CounterSession(cpu, table)
        n = 5000
        reading = session.count(stream_trace(n, "triad"), triad_body(), n)
        m = derived_metrics(reading, cpu)
        assert m["cpi"] == pytest.approx(1.0 / m["ipc"])
        assert 0 <= m["l1_miss_ratio"] <= 1
        assert 0 <= m["bandwidth_utilization"] <= 1.2
        assert m["traffic_waste"] > 0

    def test_streaming_waste_near_unity(self, cpu, table):
        session = CounterSession(cpu, table)
        n = 20000
        reading = session.count(stream_trace(n, "triad"), triad_body(), n)
        m = derived_metrics(reading, cpu)
        assert m["traffic_waste"] == pytest.approx(1.0, abs=0.4)

    def test_needs_full_event_set(self, cpu, table):
        session = CounterSession(cpu, table, ["PAPI_TOT_CYC"])
        n = 100
        reading = session.count(stream_trace(n, "copy"), triad_body(), n)
        with pytest.raises(KeyError):
            derived_metrics(reading, cpu)
