"""Shared-memory hazard detector: racy fixtures caught, shipped workers clean."""

import numpy as np

from repro.analyze import AnalysisReport, analyze_worker, find_workers, hazards_registry
from repro.analyze.hazards import hazards_variant
from repro.kernels import REGISTRY
from repro.kernels.base import KernelRegistry, KernelVariant
from repro.timing.metrics import WorkCount


def _work(n):
    return WorkCount(flops=float(n), loads_bytes=8.0 * n, stores_bytes=8.0 * n)


# -- fixture workers (module-level, like the real chunked workers) ----------

def _safe_worker(hsrc, hdst, bounds):
    lo, hi = bounds
    src, dst = hsrc.array, hdst.array
    dst[lo:hi] = 2.0 * src[lo:hi]
    for i in range(lo, hi):
        dst[i] += src[i]


def _overlapping_worker(hout, bounds):
    lo, hi = bounds
    out = hout.array
    out[lo:hi + 1] = 1.0  # writes one cell into the neighbouring chunk


def _off_by_one_loop_worker(hout, bounds):
    lo, hi = bounds
    out = hout.array
    for i in range(lo, hi):
        out[i + 1] = float(i)  # i + 1 reaches hi — the next chunk's first cell


def _chunk_independent_worker(hout, bounds):
    lo, hi = bounds
    out = hout.array
    out[0] = float(lo)  # every chunk writes cell 0


def _unprivatized_worker(hkeys, hcounts, bounds):
    lo, hi = bounds
    keys, counts = hkeys.array, hcounts.array
    for p in range(lo, hi):
        counts[keys[p]] += 1  # scatter accumulation into a shared array


def _privatized_worker(hkeys, bounds):
    lo, hi = bounds
    keys = hkeys.array[lo:hi]
    counts = np.zeros(8, dtype=np.int64)
    for key in keys:
        counts[int(key)] += 1  # private partial — the correct pattern
    return counts


def _anchored_scatter_worker(hy, bounds):
    lo, hi = bounds
    y = hy.array
    nonempty = np.arange(hi - lo)
    y[lo + nonempty] = 1.0  # anchored at lo: assumed partitioned, not flagged


def _make_closure_worker():
    state = np.zeros(4)

    def worker(hout, bounds):
        lo, hi = bounds
        state[0] += 1.0
        hout.array[lo:hi] = state[0]

    return worker


# -- rule firing ------------------------------------------------------------

def _rules(findings):
    return {f.rule for f in findings}


class TestAnalyzeWorker:
    def test_safe_worker_clean(self):
        assert analyze_worker(_safe_worker) == []

    def test_overlapping_slice_write(self):
        findings = analyze_worker(_overlapping_worker)
        assert _rules(findings) == {"H001"}
        assert findings[0].severity == "error"

    def test_off_by_one_loop_write(self):
        assert "H001" in _rules(analyze_worker(_off_by_one_loop_worker))

    def test_chunk_independent_write(self):
        assert "H001" in _rules(analyze_worker(_chunk_independent_worker))

    def test_unprivatized_accumulation(self):
        findings = analyze_worker(_unprivatized_worker)
        assert _rules(findings) == {"H002"}
        assert "privatize" in findings[0].message

    def test_privatized_pattern_clean(self):
        assert analyze_worker(_privatized_worker) == []

    def test_anchored_scatter_not_flagged(self):
        assert analyze_worker(_anchored_scatter_worker) == []

    def test_closure_capture_and_pickling(self):
        findings = analyze_worker(_make_closure_worker())
        rules = _rules(findings)
        assert "H003" in rules  # captured mutable ndarray
        assert "H004" in rules  # nested, so unpicklable

    def test_lambda_worker_warns(self):
        findings = analyze_worker(lambda h, bounds: None)
        assert "H004" in _rules(findings)

    def test_findings_never_gate_on_warning_alone(self):
        report = AnalysisReport(analyze_worker(lambda h, bounds: None))
        assert report.ok  # H004 is warning severity


# -- discovery through variants ---------------------------------------------

def racy_variant_fn(arr, workers=2):
    bounds = [(0, arr.size)]
    with open_backend("serial", workers) as ex:  # noqa: F821 - never executed
        h = ex.share(arr)
        ex.map(partial(_unprivatized_worker, h, h), bounds)  # noqa: F821
    return arr


class TestDiscovery:
    def test_find_workers_resolves_partial_idiom(self):
        v = KernelVariant(kernel="fixture", name="racy", fn=racy_variant_fn,
                          work=_work)
        assert find_workers(v) == [_unprivatized_worker]

    def test_hazards_variant_attributes_findings(self):
        v = KernelVariant(kernel="fixture", name="racy", fn=racy_variant_fn,
                          work=_work)
        findings = hazards_variant(v)
        assert findings
        assert all("fixture.racy" in f.variant for f in findings)

    def test_shipped_chunked_variants_have_workers(self):
        v = REGISTRY.get("matmul", "chunked")
        workers = find_workers(v)
        assert [w.__name__ for w in workers] == ["_matmul_rows"]


# -- registry sweep ---------------------------------------------------------

class TestRegistrySweep:
    def test_shipped_registry_is_hazard_free(self):
        report = hazards_registry(REGISTRY)
        assert report.ok, report.render_text()
        assert len(report) == 0

    def test_injected_racy_worker_caught(self):
        reg = KernelRegistry()
        reg.add(KernelVariant(kernel="fixture", name="racy",
                              fn=racy_variant_fn, work=_work))
        report = hazards_registry(reg)
        assert not report.ok
        assert {f.rule for f in report.errors} == {"H002"}

    def test_deterministic(self):
        assert (hazards_registry(REGISTRY).to_json()
                == hazards_registry(REGISTRY).to_json())


# -- tuning integration -----------------------------------------------------

class TestTuningWarning:
    def test_tune_variant_warns_on_open_hazards(self):
        import pytest

        from repro.tuning import GridSearch, tune_variant

        racy = KernelVariant(
            kernel="fixture", name="racy", fn=racy_variant_fn, work=_work)
        with pytest.warns(RuntimeWarning, match="hazard finding"):
            try:
                tune_variant(racy, lambda cfg: (np.zeros(4),), GridSearch())
            except Exception:
                pass  # the fixture fn cannot actually run; the warning matters

    def test_tune_variant_silent_on_clean_variant(self):
        import warnings

        from repro.tuning import GridSearch, tune_variant

        v = REGISTRY.get("stencil", "blocked")
        def setup(cfg):
            src = np.random.default_rng(0).random((16, 16))
            return src, np.zeros_like(src)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            tune_variant(v, setup, GridSearch(), repetitions=1, warmup=0)
