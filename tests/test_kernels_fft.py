"""Tests for repro.kernels.fft."""

import numpy as np
import pytest

from repro.kernels import (
    bit_reverse_permutation,
    dft_direct,
    dft_work,
    fft_iterative,
    fft_numpy,
    fft_recursive,
    fft_vectorized,
    fft_work,
    random_signal,
)

ALL_FFTS = [dft_direct, fft_recursive, fft_iterative, fft_vectorized, fft_numpy]


class TestCorrectness:
    @pytest.mark.parametrize("fn", ALL_FFTS)
    @pytest.mark.parametrize("n", [1, 2, 8, 64])
    def test_matches_numpy_reference(self, fn, n):
        x = random_signal(n, seed=n)
        assert np.allclose(fn(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("fn", ALL_FFTS)
    def test_impulse_gives_flat_spectrum(self, fn):
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        assert np.allclose(fn(x), np.ones(16))

    @pytest.mark.parametrize("fn", ALL_FFTS)
    def test_linearity(self, fn):
        x = random_signal(32, seed=1)
        y = random_signal(32, seed=2)
        assert np.allclose(fn(x + 2 * y), fn(x) + 2 * fn(y), atol=1e-8)

    def test_parseval(self):
        x = random_signal(64, seed=3)
        X = fft_vectorized(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(np.sum(np.abs(X) ** 2) / 64)

    @pytest.mark.parametrize("fn", [fft_recursive, fft_iterative, fft_vectorized])
    def test_non_power_of_two_rejected(self, fn):
        with pytest.raises(ValueError):
            fn(random_signal(12))

    def test_dft_handles_any_length(self):
        x = random_signal(12, seed=4)
        assert np.allclose(dft_direct(x), np.fft.fft(x))


class TestBitReversal:
    def test_is_permutation(self):
        p = bit_reverse_permutation(16)
        assert sorted(p.tolist()) == list(range(16))

    def test_is_involution(self):
        p = bit_reverse_permutation(32)
        assert np.array_equal(p[p], np.arange(32))

    def test_known_values_n8(self):
        assert bit_reverse_permutation(8).tolist() == [0, 4, 2, 6, 1, 5, 3, 7]


class TestWork:
    def test_fft_asymptotically_cheaper(self):
        n = 1 << 16
        assert fft_work(n).flops < dft_work(n).flops / 100

    def test_fft_flops_formula(self):
        assert fft_work(8).flops == 5 * 8 * 3

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_work(12)
