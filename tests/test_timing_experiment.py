"""Tests for repro.timing.experiment."""

import pytest

from repro.timing import (
    Factor,
    full_factorial,
    one_factor_at_a_time,
    run_design,
)


class TestFactor:
    def test_rejects_duplicate_levels(self):
        with pytest.raises(ValueError):
            Factor("n", (1, 1, 2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Factor("n", ())


class TestFullFactorial:
    def test_empty_factor_list_rejected(self):
        with pytest.raises(ValueError):
            full_factorial([])

    def test_single_factor_single_level(self):
        d = full_factorial([Factor("n", (64,))])
        assert len(d) == 1
        assert list(d) == [{"n": 64}]

    def test_all_single_level_factors_yield_one_point(self):
        d = full_factorial([Factor("a", (1,)), Factor("b", ("x",))])
        assert len(d) == 1
        assert d.points[0] == {"a": 1, "b": "x"}

    def test_last_factor_varies_fastest(self):
        d = full_factorial([Factor("a", (1, 2)), Factor("b", (10, 20))])
        assert [p["b"] for p in d][:2] == [10, 20]

    def test_cross_product_size(self):
        d = full_factorial([Factor("a", (1, 2, 3)), Factor("b", ("x", "y"))])
        assert len(d) == 6

    def test_all_combinations_present(self):
        d = full_factorial([Factor("a", (1, 2)), Factor("b", (10, 20))])
        combos = {(p["a"], p["b"]) for p in d}
        assert combos == {(1, 10), (1, 20), (2, 10), (2, 20)}

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ValueError):
            full_factorial([Factor("a", (1,)), Factor("a", (2,))])


class TestOneFactorAtATime:
    def test_empty_factor_list_rejected(self):
        with pytest.raises(ValueError):
            one_factor_at_a_time({"a": 1}, [])

    def test_single_level_factor_equal_to_baseline_adds_nothing(self):
        d = one_factor_at_a_time({"a": 1}, [Factor("a", (1,))])
        assert len(d) == 1
        assert d.points[0] == {"a": 1}

    def test_baseline_off_axis_still_enumerated_once(self):
        # a baseline level absent from the factor's levels stays the anchor
        d = one_factor_at_a_time({"a": 0}, [Factor("a", (1, 2))])
        assert [p["a"] for p in d] == [0, 1, 2]

    def test_baseline_point_comes_first(self):
        base = {"a": 1, "b": 10}
        d = one_factor_at_a_time(base, [Factor("a", (2,)), Factor("b", (20,))])
        assert d.points[0] == base

    def test_size_is_sum_not_product(self):
        base = {"a": 1, "b": 10}
        d = one_factor_at_a_time(base, [Factor("a", (1, 2, 3)), Factor("b", (10, 20))])
        # baseline + 2 new a-levels + 1 new b-level
        assert len(d) == 4

    def test_baseline_must_cover_factors(self):
        with pytest.raises(ValueError):
            one_factor_at_a_time({"a": 1}, [Factor("b", (1, 2))])

    def test_no_duplicate_points(self):
        base = {"a": 1}
        d = one_factor_at_a_time(base, [Factor("a", (1, 2))])
        keys = [tuple(sorted(p.items())) for p in d]
        assert len(keys) == len(set(keys))


class TestRunDesign:
    def test_rejects_nonpositive_replicates(self):
        d = full_factorial([Factor("n", (1,))])
        with pytest.raises(ValueError):
            run_design(d, lambda n: 1.0, replicates=0)

    def test_single_point_design_runs(self):
        d = full_factorial([Factor("n", (64,))])
        table = run_design(d, lambda n: float(n), replicates=2)
        assert len(table) == 1
        assert table.means()[0] == pytest.approx(64.0)

    def test_replication_and_table_shape(self):
        d = full_factorial([Factor("n", (10, 20))])
        table = run_design(d, lambda n: float(n), replicates=3)
        assert len(table) == 2
        assert all(len(obs.values) == 3 for obs in table.observations)

    def test_seed_injection(self):
        d = full_factorial([Factor("n", (1,))])
        seen = []
        run_design(d, lambda n, seed: seen.append(seed) or 1.0,
                   replicates=3, seed=100)
        assert seen == [100, 101, 102]

    def test_to_arrays_numeric(self):
        d = full_factorial([Factor("n", (10, 20)), Factor("m", (1, 2))])
        table = run_design(d, lambda n, m: float(n * m), replicates=1)
        X, y, enc = table.to_arrays()
        assert X.shape == (4, 2)
        assert y.shape == (4,)
        assert enc == {}

    def test_to_arrays_label_encoding(self):
        d = full_factorial([Factor("kind", ("csr", "coo"))])
        table = run_design(d, lambda kind: 1.0 if kind == "csr" else 2.0,
                           replicates=1)
        X, y, enc = table.to_arrays()
        assert "kind" in enc
        assert set(enc["kind"].values()) == {0, 1}

    def test_rows_flat_export(self):
        d = full_factorial([Factor("n", (5,))])
        table = run_design(d, lambda n: 2.0, replicates=2)
        rows = table.rows()
        assert rows[0]["n"] == 5  # the factor, not the sample count
        assert rows[0]["mean"] == pytest.approx(2.0)
        assert rows[0]["n_samples"] == 2
