"""Tests for the artifact exporter and new machine/kernel additions."""

import numpy as np
import pytest

from repro.course import export_artifacts, load_students_csv, STUDENTS
from repro.kernels import matmul_parallel, random_matrices
from repro.machine import epyc_like_cpu, generic_server_cpu


class TestExport:
    def test_writes_full_tree(self, tmp_path):
        written = export_artifacts(tmp_path / "artifacts")
        assert set(written) == {
            "data/students.csv", "data/metrics.csv",
            "figures/figure1.txt", "figures/figure2.txt",
            "tables/table1.txt", "tables/table2.txt", "MANIFEST.txt",
        }
        for path in written.values():
            assert path.exists() and path.stat().st_size > 0

    def test_exported_csv_round_trips(self, tmp_path):
        written = export_artifacts(tmp_path)
        text = written["data/students.csv"].read_text()
        assert load_students_csv(text) == STUDENTS

    def test_manifest_reports_sound_graph(self, tmp_path):
        written = export_artifacts(tmp_path)
        manifest = written["MANIFEST.txt"].read_text()
        assert "graph audit: sound" in manifest
        assert "DATA-1" in manifest

    def test_idempotent(self, tmp_path):
        export_artifacts(tmp_path)
        written = export_artifacts(tmp_path)  # second run overwrites cleanly
        assert len(written) == 7

    def test_rejects_file_target(self, tmp_path):
        target = tmp_path / "file.txt"
        target.write_text("x")
        with pytest.raises(NotADirectoryError):
            export_artifacts(target)


class TestParallelMatmul:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_correct(self, workers):
        a, b, c = random_matrices(33, seed=2)
        assert np.allclose(matmul_parallel(a, b, c, workers=workers), a @ b)

    def test_accumulates(self):
        a, b, c = random_matrices(16, seed=3)
        c[:] = 2.0
        assert np.allclose(matmul_parallel(a, b, c, workers=2), a @ b + 2.0)

    def test_registered(self):
        from repro.kernels import REGISTRY

        assert REGISTRY.get("matmul", "parallel").technique == "parallelization"

    def test_rejects_zero_workers(self):
        a, b, c = random_matrices(4)
        with pytest.raises(ValueError):
            matmul_parallel(a, b, c, workers=0)


class TestEpycPreset:
    def test_differs_from_intel_like(self):
        intel = generic_server_cpu()
        amd = epyc_like_cpu()
        assert amd.cores > intel.cores
        assert amd.frequency_hz < intel.frequency_hz
        assert amd.stream_bandwidth > intel.stream_bandwidth

    def test_usable_by_the_whole_stack(self):
        from repro.machine import generic_server_table
        from repro.microbench import characterize_simulated
        from repro.roofline import cpu_roofline
        from repro.simulator import hierarchy_for

        amd = epyc_like_cpu()
        ch = characterize_simulated(amd, generic_server_table())
        assert ch.peak_flops == pytest.approx(amd.peak_flops())
        assert cpu_roofline(amd).ridge_point() > 0
        h = hierarchy_for(amd)
        h.access_trace(np.arange(0, 64 * 100, 8, dtype=np.int64))
        assert h.total_accesses == 800

    def test_cross_machine_prediction_differs(self):
        """The same kernel lands differently on the two vendors' rooflines
        — the point of multi-vendor support."""
        from repro.kernels import matmul_work
        from repro.roofline import cpu_roofline

        work = matmul_work(96)
        intel = cpu_roofline(generic_server_cpu())
        amd = cpu_roofline(epyc_like_cpu())
        assert intel.attainable(work.intensity) != amd.attainable(work.intensity)
