"""Tests for repro.machine.instruction_tables."""

import pytest

from repro.machine import (
    VIRTUAL_ISA,
    InstructionSpec,
    InstructionTable,
    generic_server_table,
    narrow_mobile_table,
)


class TestInstructionSpec:
    def test_reciprocal_throughput_two_ports(self):
        spec = InstructionSpec("add", 4, ("p0", "p1"))
        assert spec.reciprocal_throughput == 0.5

    def test_reciprocal_throughput_multi_uop(self):
        spec = InstructionSpec("div", 14, ("p0",), uops=3)
        assert spec.reciprocal_throughput == 3.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            InstructionSpec("add", -1, ("p0",))

    def test_rejects_portless(self):
        with pytest.raises(ValueError):
            InstructionSpec("add", 1, ())


class TestInstructionTable:
    def test_covers_full_isa(self, table):
        for opcode in VIRTUAL_ISA:
            assert opcode in table

    def test_mobile_covers_full_isa(self, mobile_table):
        for opcode in VIRTUAL_ISA:
            assert opcode in mobile_table

    def test_unknown_opcode_rejected_at_build(self):
        with pytest.raises(ValueError):
            InstructionTable("bad", [InstructionSpec("bogus", 1, ("p0",))], ("p0",))

    def test_unknown_port_rejected(self):
        with pytest.raises(ValueError):
            InstructionTable("bad", [InstructionSpec("add", 1, ("p9",))], ("p0",))

    def test_duplicate_opcode_rejected(self):
        specs = [InstructionSpec("add", 1, ("p0",)), InstructionSpec("add", 2, ("p0",))]
        with pytest.raises(ValueError):
            InstructionTable("bad", specs, ("p0",))

    def test_lookup_missing_raises_keyerror(self, table):
        with pytest.raises(KeyError):
            table["madeup"]

    def test_fma_latency_positive(self, table):
        assert table.latency("fmadd") > 0

    def test_mobile_slower_than_server(self, table, mobile_table):
        assert mobile_table.latency("fmadd") > table.latency("fmadd")
        assert (mobile_table.reciprocal_throughput("fmadd")
                > table.reciprocal_throughput("fmadd"))

    def test_mix_throughput_bound_simple(self, table):
        # two fmadds spread over p0/p1 -> 1 cycle
        assert table.mix_cycles_throughput_bound({"fmadd": 2}) == pytest.approx(1.0)

    def test_mix_throughput_bound_store_port(self, table):
        # stores have a single port -> n stores take n cycles
        assert table.mix_cycles_throughput_bound({"store": 5}) == pytest.approx(5.0)

    def test_mix_latency_bound_is_sum(self, table):
        chain = ["load", "fmadd", "store"]
        assert table.mix_cycles_latency_bound(chain) == pytest.approx(
            table.latency("load") + table.latency("fmadd") + table.latency("store"))

    def test_mix_rejects_negative_counts(self, table):
        with pytest.raises(ValueError):
            table.mix_cycles_throughput_bound({"add": -1})
