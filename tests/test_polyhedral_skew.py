"""Tests for the skewed execution schedule (the seidel tiling enabler)."""

import numpy as np
import pytest

from repro.polyhedral import (
    Domain,
    distance_vectors,
    nest_trace,
    seidel_nest,
    simulated_misses,
)


def _positions(points: np.ndarray) -> dict[tuple[int, ...], int]:
    return {tuple(p): i for i, p in enumerate(points)}


def _schedule_respects(points: np.ndarray, domain: Domain,
                       vectors: list[tuple[int, ...]]) -> bool:
    """Every dependence (p -> p+d) must execute source before sink."""
    pos = _positions(points)
    for d in vectors:
        for p in map(tuple, points):
            q = tuple(a + b for a, b in zip(p, d))
            if domain.contains(q) and pos[p] >= pos[q]:
                return False
    return True


class TestSkewedPoints:
    def test_same_point_multiset(self):
        dom = Domain(((0, 6), (0, 5)))
        plain = {tuple(p) for p in dom.points()}
        skewed = {tuple(p) for p in dom.skewed_points(0, 1, 1)}
        assert plain == skewed

    def test_unskewed_schedule_identical_to_lex(self):
        dom = Domain(((0, 4), (0, 4)))
        assert np.array_equal(dom.skewed_points(0, 1, 0), dom.points())

    def test_skewed_order_is_wavefront(self):
        dom = Domain(((0, 3), (0, 3)))
        pts = dom.skewed_points(0, 1, 1)
        # ordered by i, then i+j... first point is (0,0); (1,0) comes
        # before (0,2)+... check a known relation: (1, 0) precedes (1, 2)
        pos = _positions(pts)
        assert pos[(1, 0)] < pos[(1, 2)]

    def test_validation(self):
        dom = Domain(((0, 3), (0, 3)))
        with pytest.raises(ValueError):
            dom.skewed_points(0, 0, 1)
        with pytest.raises(ValueError):
            dom.skewed_points(0, 1, -1)
        with pytest.raises(ValueError):
            dom.skewed_points(0, 1, 1, tile_sizes=(2,))


class TestSeidelLegality:
    def test_naive_tiling_breaks_dependences(self):
        nest = seidel_nest(8)
        vectors = distance_vectors(nest)
        tiled = nest.domain.tiled_points((3, 3))
        assert not _schedule_respects(tiled, nest.domain, vectors)

    def test_skewed_tiling_respects_dependences(self):
        nest = seidel_nest(8)
        vectors = distance_vectors(nest)
        skewed_tiled = nest.domain.skewed_points(0, 1, 1, tile_sizes=(3, 3))
        assert _schedule_respects(skewed_tiled, nest.domain, vectors)

    def test_plain_skew_also_legal(self):
        nest = seidel_nest(8)
        vectors = distance_vectors(nest)
        skewed = nest.domain.skewed_points(0, 1, 1)
        assert _schedule_respects(skewed, nest.domain, vectors)


class TestSkewedTrace:
    def test_trace_has_all_accesses(self):
        nest = seidel_nest(8)
        plain = nest_trace(nest)
        skewed = nest_trace(nest, skew=(0, 1, 1), tile_sizes=(3, 3))
        assert len(skewed) == len(plain)
        assert np.array_equal(np.sort(plain.addresses),
                              np.sort(skewed.addresses))
        assert "skew" in skewed.label

    def test_skew_and_order_exclusive(self):
        with pytest.raises(ValueError):
            nest_trace(seidel_nest(6), order=(1, 0), skew=(0, 1, 1))

    def test_skewed_tiling_changes_locality(self, cpu):
        """The payoff measurement: the legal (skewed) tiling of a large
        seidel sweep behaves differently from the untiled sweep."""
        nest = seidel_nest(96)
        plain = simulated_misses(nest, cpu)
        trace = nest_trace(nest, skew=(0, 1, 1), tile_sizes=(8, 8))
        from repro.simulator import MultiLevelCache

        h = MultiLevelCache(cpu.caches)
        h.access_trace(trace.addresses, trace.writes)
        skewed_misses = h.miss_counts()
        # same compulsory DRAM footprint either way
        assert skewed_misses["DRAM"] == pytest.approx(plain["DRAM"], rel=0.05)
