"""Chunked parallel kernel variants cross-checked against their serial peers.

Every parallel variant must be *numerically indistinguishable* from the
serial variant it decomposes, for every backend and for the awkward shapes
that break naive chunking: chunk counts that do not divide the extent,
1-row matrices, workers exceeding the work, and SpMV rows with no nonzeros.
"""

import numpy as np
import pytest

from repro.kernels import (
    REGISTRY,
    banded_sparse,
    histogram_chunked,
    histogram_scalar,
    init_grid,
    jacobi_step_chunked,
    jacobi_step_numpy,
    matmul_chunked,
    random_keys,
    random_matrices,
    random_sparse,
    spmv_csr_chunked,
    spmv_csr_scalar,
)
from repro.parallel import BACKENDS, ProcessBackend

pytestmark = pytest.mark.parametrize("backend", BACKENDS)


class TestMatmulChunked:
    @pytest.mark.parametrize("n", [1, 2, 7, 16])
    def test_matches_numpy_for_odd_shapes(self, backend, n):
        a, b, c = random_matrices(n, seed=n)
        matmul_chunked(a, b, c, workers=3, backend=backend)
        assert np.allclose(c, a @ b)

    def test_scalar_inner_matches(self, backend):
        a, b, c = random_matrices(5, seed=1)
        matmul_chunked(a, b, c, workers=2, backend=backend, inner="scalar")
        assert np.allclose(c, a @ b)

    def test_rectangular_and_accumulating(self, backend):
        a, b, c = random_matrices(6, seed=2, m=3, k=9)
        c[:] = 1.0
        expected = 1.0 + a @ b
        matmul_chunked(a, b, c, workers=4, backend=backend)
        assert np.allclose(c, expected)

    def test_workers_exceed_rows(self, backend):
        a, b, c = random_matrices(2, seed=3)
        matmul_chunked(a, b, c, workers=8, backend=backend)
        assert np.allclose(c, a @ b)

    def test_explicit_non_divisible_chunk(self, backend):
        a, b, c = random_matrices(10, seed=4)
        matmul_chunked(a, b, c, workers=2, backend=backend, chunk_size=3)
        assert np.allclose(c, a @ b)

    def test_rejects_unknown_inner(self, backend):
        a, b, c = random_matrices(2)
        with pytest.raises(ValueError, match="inner"):
            matmul_chunked(a, b, c, backend=backend, inner="fortran")


class TestStencilChunked:
    @pytest.mark.parametrize("shape", [(3, 3), (4, 9), (17, 5)])
    def test_matches_numpy_sweep(self, backend, shape):
        n, m = shape
        rng = np.random.default_rng(n * m)
        src = rng.standard_normal(shape)
        ref, out = np.empty_like(src), np.empty_like(src)
        jacobi_step_numpy(src, ref)
        jacobi_step_chunked(src, out, workers=3, backend=backend)
        assert np.allclose(out, ref)

    def test_scalar_inner_matches(self, backend):
        src = init_grid(8)
        ref, out = np.empty_like(src), np.empty_like(src)
        jacobi_step_numpy(src, ref)
        jacobi_step_chunked(src, out, workers=2, backend=backend, inner="scalar")
        assert np.allclose(out, ref)

    def test_single_interior_row(self, backend):
        src = np.random.default_rng(0).standard_normal((3, 6))
        ref, out = np.empty_like(src), np.empty_like(src)
        jacobi_step_numpy(src, ref)
        jacobi_step_chunked(src, out, workers=4, backend=backend)
        assert np.allclose(out, ref)


class TestHistogramChunked:
    @pytest.mark.parametrize("n,bins", [(1, 1), (13, 4), (100, 7)])
    def test_matches_scalar(self, backend, n, bins):
        keys = random_keys(n, bins, seed=n)
        assert np.array_equal(histogram_chunked(keys, bins, workers=3,
                                                backend=backend),
                              histogram_scalar(keys, bins))

    def test_scalar_inner_matches(self, backend):
        keys = random_keys(29, 5, seed=1)
        assert np.array_equal(histogram_chunked(keys, 5, workers=2,
                                                backend=backend, inner="scalar"),
                              histogram_scalar(keys, 5))

    def test_out_of_range_keys_rejected(self, backend):
        keys = np.array([0, 1, 9], dtype=np.int64)
        with pytest.raises(ValueError, match="outside"):
            histogram_chunked(keys, 3, workers=2, backend=backend)

    def test_chunk_smaller_than_workers(self, backend):
        keys = random_keys(3, 2, seed=2)
        assert np.array_equal(histogram_chunked(keys, 2, workers=8,
                                                backend=backend),
                              histogram_scalar(keys, 2))


class TestSpmvChunked:
    def test_matches_scalar_random(self, backend):
        csr = random_sparse(17, density=0.15, seed=5).to_csr()
        x = np.random.default_rng(5).standard_normal(17)
        assert np.allclose(spmv_csr_chunked(csr, x, workers=3, backend=backend),
                           spmv_csr_scalar(csr, x))

    def test_empty_rows_stay_zero(self, backend):
        # sparse enough that several rows have no nonzeros at all
        csr = random_sparse(31, density=0.02, seed=6).to_csr()
        assert np.count_nonzero(csr.row_lengths() == 0) > 0
        x = np.random.default_rng(6).standard_normal(31)
        assert np.allclose(spmv_csr_chunked(csr, x, workers=4, backend=backend),
                           spmv_csr_scalar(csr, x))

    def test_scalar_inner_matches(self, backend):
        csr = banded_sparse(12, bandwidth=2, seed=7).to_csr()
        x = np.random.default_rng(7).standard_normal(12)
        assert np.allclose(spmv_csr_chunked(csr, x, workers=2, backend=backend,
                                            inner="scalar"),
                           spmv_csr_scalar(csr, x))

    def test_single_row_matrix(self, backend):
        csr = random_sparse(1, m=9, density=0.5, seed=8).to_csr()
        x = np.arange(9.0)
        assert np.allclose(spmv_csr_chunked(csr, x, workers=4, backend=backend),
                           spmv_csr_scalar(csr, x))


class TestRegistryMetadata:
    def test_chunked_variants_registered_with_workers_tunable(self, backend):
        del backend  # parametrized at module level; irrelevant here
        for kernel, name in [("matmul", "chunked"), ("stencil", "chunked"),
                             ("histogram", "chunked"), ("spmv", "csr_chunked")]:
            variant = REGISTRY.get(kernel, name)
            assert variant.technique == "parallelization"
            assert variant.tunable("workers").kind == "int"
            assert set(variant.tunable("backend").choices) == set(BACKENDS)


class TestSharedBackendInstance:
    def test_one_pool_amortized_over_kernels(self, backend):
        if backend != "process":
            pytest.skip("amortization matters for the process pool")
        with ProcessBackend(2) as pool:
            a, b, c = random_matrices(6, seed=9)
            matmul_chunked(a, b, c, workers=2, backend=pool)
            keys = random_keys(50, 4, seed=9)
            counts = histogram_chunked(keys, 4, workers=2, backend=pool)
        assert np.allclose(c, a @ b)
        assert np.array_equal(counts, histogram_scalar(keys, 4))
