"""Tests for repro.tuning.tune: entry points and stage-5 integration."""

import math

import pytest

from repro import EngineeringProcess, Metric, Requirement
from repro.kernels import REGISTRY
from repro.tuning import (
    Budget,
    CoordinateDescent,
    GridSearch,
    IntegerParam,
    ModelGuide,
    PowerOfTwoParam,
    SearchSpace,
    space_for,
    tiles_fit_cache,
    tune,
    tune_variant,
)


def convex(cfg):
    return 1.0 + (math.log2(cfg["tile"]) - 6) ** 2


def space():
    return SearchSpace([PowerOfTwoParam("tile", low=4, high=256)])


class TestSpaceFor:
    def test_builds_axes_from_metadata(self):
        sp = space_for(REGISTRY.get("matmul", "tiled"))
        tiles = sp.parameter("tile")
        assert tiles.values() == (4, 8, 16, 32, 64, 128, 256)
        assert tiles.default == 32

    def test_integer_tunable_maps_to_integer_axis(self):
        sp = space_for(REGISTRY.get("matmul", "parallel"))
        assert sp.parameter("workers").values() == tuple(range(1, 9))

    def test_registry_lists_tunable_variants(self):
        tunable = {v.qualified_name for v in REGISTRY.tunable_variants()}
        assert {"matmul.tiled", "matmul.parallel", "matmul.blocked_numpy",
                "stencil.blocked", "histogram.privatized"} <= tunable
        assert all(v.kernel == "stencil" for v in REGISTRY.tunable_variants("stencil"))

    def test_untunable_variant_rejected(self):
        with pytest.raises(ValueError):
            space_for(REGISTRY.get("matmul", "numpy"))

    def test_constraints_prune_the_space(self):
        sp = space_for(REGISTRY.get("matmul", "tiled"),
                       constraints=[tiles_fit_cache(32 * 1024)])
        assert max(c["tile"] for c in sp.configs()) == 32

    def test_overrides_replace_axes(self):
        sp = space_for(REGISTRY.get("matmul", "tiled"),
                       overrides={"tile": PowerOfTwoParam("tile", low=8, high=16)})
        assert sp.parameter("tile").values() == (8, 16)

    def test_override_for_undeclared_tunable_rejected(self):
        with pytest.raises(ValueError):
            space_for(REGISTRY.get("matmul", "tiled"),
                      overrides={"nope": IntegerParam("nope", low=1, high=2)})

    def test_variant_default_config(self):
        assert REGISTRY.get("matmul", "tiled").default_config() == {"tile": 32}


class TestTuneProcessIntegration:
    def walked_process(self):
        proc = EngineeringProcess("matmul n=64")
        proc.set_requirement(Requirement("2x faster", Metric.SPEEDUP, 2.0))
        proc.record_baseline(10.0, "untuned default")
        proc.assess_feasibility(bound=0.5)
        return proc

    def test_winner_recorded_as_stage5_attempt(self):
        proc = self.walked_process()
        guide = ModelGuide("oracle", convex)
        result = tune(convex, space(), GridSearch(), kernel="matmul.tiled",
                      guide=guide, process=proc)
        attempt = proc.attempts["autotune:matmul.tiled"]
        assert attempt.applied
        assert attempt.measured_seconds == result.best_seconds
        assert attempt.predicted_seconds == pytest.approx(1.0)
        assert attempt.prediction_error() == pytest.approx(0.0)
        assert "grid" in attempt.rationale

    def test_process_report_shows_the_tuning_attempt(self):
        proc = self.walked_process()
        tune(convex, space(), GridSearch(), kernel="k", process=proc)
        assert proc.assess() is True  # 1.0s vs 10.0 baseline beats 2x
        assert "autotune:k" in proc.report()

    def test_without_process_nothing_is_proposed(self):
        result = tune(convex, space(), GridSearch())
        assert result.best_config == {"tile": 64}

    def test_process_before_stage3_fails_fast(self):
        from repro import ProcessError

        calls = []
        proc = EngineeringProcess("x")  # stages 1-3 not walked
        with pytest.raises(ProcessError):
            tune(lambda c: calls.append(1) or convex(c), space(),
                 GridSearch(), process=proc)
        assert calls == []  # no measurement budget was spent

    def test_empty_search_is_an_error(self):
        with pytest.raises(RuntimeError):
            tune(convex, space(), GridSearch(),
                 budget=Budget(max_seconds=1e-12))


class TestTuneVariant:
    def test_tunes_a_real_kernel_under_budget(self):
        from repro.kernels import random_matrices

        variant = REGISTRY.get("matmul", "tiled")
        result = tune_variant(
            variant,
            setup=lambda cfg: random_matrices(16),
            strategy=CoordinateDescent(),
            overrides={"tile": PowerOfTwoParam("tile", low=4, high=16,
                                               default_value=8)},
            budget=Budget(max_evaluations=10),
            warmup=0, repetitions=1,
        )
        assert result.kernel == "matmul.tiled"
        assert result.best_config["tile"] in (4, 8, 16)
        assert result.measurements <= 10
