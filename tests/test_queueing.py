"""Tests for repro.queueing: formulas + DES cross-validation."""

import pytest

from repro.queueing import (
    capacity_for,
    deterministic,
    erlang_c,
    exponential,
    hyperexponential,
    littles_law_check,
    mg1,
    mm1,
    mmc,
    simulate_queue,
)


class TestMM1:
    def test_textbook_values(self):
        m = mm1(8.0, 10.0)
        assert m.utilization == pytest.approx(0.8)
        assert m.mean_in_system == pytest.approx(4.0)
        assert m.mean_time_in_system == pytest.approx(0.5)
        assert m.mean_wait == pytest.approx(0.4)

    def test_littles_law_holds(self):
        m = mm1(3.0, 5.0)
        assert littles_law_check(3.0, m.mean_in_system,
                                 m.mean_time_in_system, tolerance=1e-9)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mm1(10.0, 10.0)

    def test_blowup_near_saturation(self):
        assert mm1(9.9, 10.0).mean_wait > 50 * mm1(5.0, 10.0).mean_wait


class TestMMC:
    def test_reduces_to_mm1(self):
        a = mm1(4.0, 10.0)
        b = mmc(4.0, 10.0, 1)
        assert b.mean_wait == pytest.approx(a.mean_wait)
        assert b.mean_in_system == pytest.approx(a.mean_in_system)

    def test_pooling_beats_partitioning(self):
        # one fast queue of 4 servers beats 4 separate M/M/1s at same load
        single = mm1(2.0, 10.0).mean_wait
        pooled = mmc(8.0, 10.0, 4).mean_wait
        assert pooled < single

    def test_erlang_c_bounds(self):
        pw = erlang_c(8.0, 10.0, 4)
        assert 0 < pw < 1

    def test_more_servers_less_waiting(self):
        assert mmc(8.0, 10.0, 8).mean_wait < mmc(8.0, 10.0, 2).mean_wait


class TestMG1:
    def test_cv2_one_is_mm1(self):
        assert mg1(8.0, 10.0, 1.0).mean_wait == pytest.approx(mm1(8.0, 10.0).mean_wait)

    def test_deterministic_halves_queue(self):
        assert mg1(8.0, 10.0, 0.0).mean_in_queue == pytest.approx(
            mm1(8.0, 10.0).mean_in_queue / 2)

    def test_variability_hurts(self):
        assert mg1(8.0, 10.0, 4.0).mean_wait > mg1(8.0, 10.0, 1.0).mean_wait


class TestDESValidation:
    def test_mm1_simulation_matches_theory(self):
        theory = mm1(7.0, 10.0)
        sim = simulate_queue(exponential(7.0, seed=1), exponential(10.0, seed=2),
                             customers=60_000, warmup=2_000)
        assert sim.mean_wait == pytest.approx(theory.mean_wait, rel=0.12)
        assert sim.utilization == pytest.approx(theory.utilization, rel=0.05)

    def test_mmc_simulation_matches_theory(self):
        theory = mmc(24.0, 10.0, 4)
        sim = simulate_queue(exponential(24.0, seed=3), exponential(10.0, seed=4),
                             servers=4, customers=60_000, warmup=2_000)
        assert sim.mean_wait == pytest.approx(theory.mean_wait, rel=0.2)

    def test_md1_simulation_matches_pk(self):
        theory = mg1(8.0, 10.0, 0.0)
        sim = simulate_queue(exponential(8.0, seed=5), deterministic(10.0),
                             customers=60_000, warmup=2_000)
        assert sim.mean_wait == pytest.approx(theory.mean_wait, rel=0.12)

    def test_hyperexponential_worse_than_exponential(self):
        exp_sim = simulate_queue(exponential(8.0, seed=6), exponential(10.0, seed=7),
                                 customers=40_000)
        hyper_sim = simulate_queue(exponential(8.0, seed=6),
                                   hyperexponential(10.0, 4.0, seed=8),
                                   customers=40_000)
        assert hyper_sim.mean_wait > exp_sim.mean_wait

    def test_littles_law_in_simulation(self):
        sim = simulate_queue(exponential(5.0, seed=9), exponential(10.0, seed=10),
                             customers=40_000)
        assert littles_law_check(5.0, sim.mean_in_system,
                                 sim.mean_time_in_system, tolerance=0.1)

    def test_distribution_validation(self):
        with pytest.raises(ValueError):
            exponential(0.0)
        with pytest.raises(ValueError):
            hyperexponential(1.0, cv2=0.5)
        with pytest.raises(ValueError):
            simulate_queue(exponential(1.0), exponential(2.0), customers=10,
                           warmup=10)


class TestOverloadAsData:
    def test_stable_flag_true_below_saturation(self):
        m = mm1(8.0, 10.0)
        assert m.stable is True
        assert "UNSTABLE" not in m.report()

    def test_mm1_overload_returns_infinite_metrics(self):
        m = mm1(12.0, 10.0, allow_unstable=True)
        assert m.stable is False
        assert m.utilization == pytest.approx(1.2)
        assert m.mean_wait == float("inf")
        assert m.prob_wait == 1.0
        assert "UNSTABLE" in m.report()

    def test_mmc_overload_returns_infinite_metrics(self):
        m = mmc(25.0, 10.0, 2, allow_unstable=True)
        assert m.stable is False
        assert m.mean_in_queue == float("inf")

    def test_overload_still_raises_by_default(self):
        with pytest.raises(ValueError):
            mmc(25.0, 10.0, 2)

    def test_erlang_c_saturated_is_certain_waiting(self):
        assert erlang_c(5.0, 2.5, 2, allow_unstable=True) == 1.0


class TestCapacityFor:
    def test_minimum_servers_for_stability(self):
        # rho <= 0.95 needs c >= lambda/(0.95 mu) = 100/28.5 -> 4 workers
        assert capacity_for(100.0, 30.0) == 4

    def test_wait_target_adds_servers(self):
        loose = capacity_for(100.0, 30.0)
        tight = capacity_for(100.0, 30.0, target_wait=0.001)
        assert tight > loose
        assert mmc(100.0, 30.0, tight).mean_wait <= 0.001

    def test_returned_size_meets_the_target(self):
        c = capacity_for(40.0, 10.0, target_wait=0.05)
        assert mmc(40.0, 10.0, c).mean_wait <= 0.05
        if c > 1:
            # minimality: one fewer server misses target or stability
            smaller = mmc(40.0, 10.0, c - 1, allow_unstable=True)
            assert (not smaller.stable or smaller.mean_wait > 0.05
                    or smaller.utilization > 0.95)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            capacity_for(1e9, 1.0, max_servers=4)

    def test_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            capacity_for(0.0, 10.0)
        with pytest.raises(ValueError):
            capacity_for(10.0, 0.0)
