"""Tests for repro.queueing: formulas + DES cross-validation."""

import pytest

from repro.queueing import (
    deterministic,
    erlang_c,
    exponential,
    hyperexponential,
    littles_law_check,
    mg1,
    mm1,
    mmc,
    simulate_queue,
)


class TestMM1:
    def test_textbook_values(self):
        m = mm1(8.0, 10.0)
        assert m.utilization == pytest.approx(0.8)
        assert m.mean_in_system == pytest.approx(4.0)
        assert m.mean_time_in_system == pytest.approx(0.5)
        assert m.mean_wait == pytest.approx(0.4)

    def test_littles_law_holds(self):
        m = mm1(3.0, 5.0)
        assert littles_law_check(3.0, m.mean_in_system,
                                 m.mean_time_in_system, tolerance=1e-9)

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            mm1(10.0, 10.0)

    def test_blowup_near_saturation(self):
        assert mm1(9.9, 10.0).mean_wait > 50 * mm1(5.0, 10.0).mean_wait


class TestMMC:
    def test_reduces_to_mm1(self):
        a = mm1(4.0, 10.0)
        b = mmc(4.0, 10.0, 1)
        assert b.mean_wait == pytest.approx(a.mean_wait)
        assert b.mean_in_system == pytest.approx(a.mean_in_system)

    def test_pooling_beats_partitioning(self):
        # one fast queue of 4 servers beats 4 separate M/M/1s at same load
        single = mm1(2.0, 10.0).mean_wait
        pooled = mmc(8.0, 10.0, 4).mean_wait
        assert pooled < single

    def test_erlang_c_bounds(self):
        pw = erlang_c(8.0, 10.0, 4)
        assert 0 < pw < 1

    def test_more_servers_less_waiting(self):
        assert mmc(8.0, 10.0, 8).mean_wait < mmc(8.0, 10.0, 2).mean_wait


class TestMG1:
    def test_cv2_one_is_mm1(self):
        assert mg1(8.0, 10.0, 1.0).mean_wait == pytest.approx(mm1(8.0, 10.0).mean_wait)

    def test_deterministic_halves_queue(self):
        assert mg1(8.0, 10.0, 0.0).mean_in_queue == pytest.approx(
            mm1(8.0, 10.0).mean_in_queue / 2)

    def test_variability_hurts(self):
        assert mg1(8.0, 10.0, 4.0).mean_wait > mg1(8.0, 10.0, 1.0).mean_wait


class TestDESValidation:
    def test_mm1_simulation_matches_theory(self):
        theory = mm1(7.0, 10.0)
        sim = simulate_queue(exponential(7.0, seed=1), exponential(10.0, seed=2),
                             customers=60_000, warmup=2_000)
        assert sim.mean_wait == pytest.approx(theory.mean_wait, rel=0.12)
        assert sim.utilization == pytest.approx(theory.utilization, rel=0.05)

    def test_mmc_simulation_matches_theory(self):
        theory = mmc(24.0, 10.0, 4)
        sim = simulate_queue(exponential(24.0, seed=3), exponential(10.0, seed=4),
                             servers=4, customers=60_000, warmup=2_000)
        assert sim.mean_wait == pytest.approx(theory.mean_wait, rel=0.2)

    def test_md1_simulation_matches_pk(self):
        theory = mg1(8.0, 10.0, 0.0)
        sim = simulate_queue(exponential(8.0, seed=5), deterministic(10.0),
                             customers=60_000, warmup=2_000)
        assert sim.mean_wait == pytest.approx(theory.mean_wait, rel=0.12)

    def test_hyperexponential_worse_than_exponential(self):
        exp_sim = simulate_queue(exponential(8.0, seed=6), exponential(10.0, seed=7),
                                 customers=40_000)
        hyper_sim = simulate_queue(exponential(8.0, seed=6),
                                   hyperexponential(10.0, 4.0, seed=8),
                                   customers=40_000)
        assert hyper_sim.mean_wait > exp_sim.mean_wait

    def test_littles_law_in_simulation(self):
        sim = simulate_queue(exponential(5.0, seed=9), exponential(10.0, seed=10),
                             customers=40_000)
        assert littles_law_check(5.0, sim.mean_in_system,
                                 sim.mean_time_in_system, tolerance=0.1)

    def test_distribution_validation(self):
        with pytest.raises(ValueError):
            exponential(0.0)
        with pytest.raises(ValueError):
            hyperexponential(1.0, cv2=0.5)
        with pytest.raises(ValueError):
            simulate_queue(exponential(1.0), exponential(2.0), customers=10,
                           warmup=10)
