"""Tests for the hierarchical (cache-aware) roofline extension."""

import pytest

from repro.kernels import matmul_work
from repro.roofline import (
    LevelTraffic,
    effective_intensity,
    hierarchical_bound,
    hierarchical_points,
    hierarchical_traffic,
)
from repro.simulator import hierarchy_for, matmul_trace, stream_trace


class TestHierarchicalTraffic:
    def test_traffic_decreases_down_the_hierarchy_for_cached_kernel(self, cpu):
        # a small matmul reuses data: L1 traffic >> DRAM traffic
        trace = matmul_trace(32, "ikj")
        traffic = {t.level: t.bytes_moved for t in hierarchical_traffic(cpu, trace)}
        assert traffic["L1"] > traffic["DRAM"]

    def test_streaming_kernel_traffic_flat(self, cpu):
        # STREAM has no reuse: every level moves roughly the same bytes
        n = 40000
        trace = stream_trace(n, "triad")
        traffic = {t.level: t.bytes_moved for t in hierarchical_traffic(cpu, trace)}
        assert traffic["DRAM"] == pytest.approx(traffic["L2"], rel=0.35)

    def test_levels_present(self, cpu):
        traffic = hierarchical_traffic(cpu, stream_trace(1000, "copy"))
        assert [t.level for t in traffic] == ["L1", "L2", "L3", "DRAM"]


class TestHierarchicalPoints:
    def test_one_point_per_level_with_traffic(self):
        traffic = [LevelTraffic("L1", 1000.0), LevelTraffic("DRAM", 100.0)]
        pts = hierarchical_points("k", flops=500.0, traffic=traffic)
        assert [p.name for p in pts] == ["k@L1", "k@DRAM"]
        assert pts[1].intensity == 5.0

    def test_zero_traffic_levels_skipped(self):
        traffic = [LevelTraffic("L1", 1000.0), LevelTraffic("DRAM", 0.0)]
        pts = hierarchical_points("k", 500.0, traffic)
        assert len(pts) == 1


class TestHierarchicalBound:
    def test_bound_at_most_peak(self, cpu):
        trace = matmul_trace(32, "ikj")
        traffic = hierarchical_traffic(cpu, trace)
        bound, _ = hierarchical_bound(cpu, matmul_work(32).flops, traffic)
        assert bound <= cpu.peak_flops()

    def test_binding_level_named(self, cpu):
        n = 40000
        trace = stream_trace(n, "triad")
        traffic = hierarchical_traffic(cpu, trace)
        bound, level = hierarchical_bound(cpu, 2.0 * n, traffic)
        assert level in ("L1", "L2", "L3", "DRAM")
        # streaming: DRAM must be the binding level
        assert level == "DRAM"


class TestEffectiveIntensity:
    def test_cached_kernel_effective_above_worst_case(self, cpu):
        trace = matmul_trace(24, "ikj")
        h = hierarchy_for(cpu, prefetch=True)
        h.access_trace(trace.addresses, trace.writes)
        flops = matmul_work(24).flops
        eff = effective_intensity(flops, h)
        # effective intensity with reuse beats charging every access to DRAM
        per_access = flops / (len(trace) * 8)
        assert eff > per_access

    def test_rejects_zero_flops(self, cpu):
        h = hierarchy_for(cpu)
        h.access_trace(stream_trace(100, "copy").addresses)
        with pytest.raises(ValueError):
            effective_intensity(0.0, h)
