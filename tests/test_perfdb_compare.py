"""Tests for the perfdb regression gate and history drift scan."""

import numpy as np
import pytest

from repro.perfdb import (
    IMPROVED,
    MISSING,
    NEW,
    REGRESSED,
    UNCHANGED,
    RunRecord,
    compare_runs,
    history_drift,
)


def times(median, n=20, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    return list(np.abs(rng.normal(median, median * noise, n)))


def run_of(samples, created=1.0, label="", machine=None, run_id=None):
    rec = RunRecord.new(samples, label=label, machine=machine or {},
                        git_sha=None, created=created)
    if run_id is not None:
        rec = RunRecord(run_id=run_id, created=rec.created,
                        benchmarks=rec.benchmarks, machine=rec.machine,
                        label=rec.label)
    return rec


class TestVerdicts:
    def test_clear_regression_flagged(self):
        base = run_of({"b": times(1.0)}, run_id="base")
        cand = run_of({"b": times(1.5, seed=1)}, run_id="cand")
        comp = compare_runs(cand, base)
        (r,) = comp.results
        assert r.verdict == REGRESSED and not comp.ok
        assert r.ratio == pytest.approx(1.5, rel=0.1)
        assert r.ratio_ci[0] > 1.0
        assert r.best_ratio > 1.1

    def test_clear_improvement_flagged(self):
        base = run_of({"b": times(1.5)}, run_id="base")
        cand = run_of({"b": times(1.0, seed=1)}, run_id="cand")
        comp = compare_runs(cand, base)
        assert comp.results[0].verdict == IMPROVED and comp.ok

    def test_identical_distributions_unchanged(self):
        base = run_of({"b": times(1.0, seed=0)}, run_id="base")
        cand = run_of({"b": times(1.0, seed=1)}, run_id="cand")
        comp = compare_runs(cand, base)
        assert comp.results[0].verdict == UNCHANGED and comp.ok

    def test_small_shift_below_floor_unchanged(self):
        # statistically detectable 3% shift must not fail the 10% gate
        base = run_of({"b": times(1.0, n=40, noise=0.005)}, run_id="base")
        cand = run_of({"b": times(1.03, n=40, noise=0.005, seed=1)},
                      run_id="cand")
        comp = compare_runs(cand, base)
        assert comp.results[0].verdict == UNCHANGED and comp.ok

    def test_contaminated_median_with_clean_min_unchanged(self):
        """A load burst inflates the median but never the min: not a
        regression."""
        clean = times(1.0, n=30, noise=0.01)
        # candidate: more than half the samples hit by 1.6x contention,
        # but the quiet-machine (min) level is unchanged
        contaminated = [t * 1.6 for t in clean[:16]] + clean[16:]
        base = run_of({"b": clean}, run_id="base")
        cand = run_of({"b": contaminated}, run_id="cand")
        comp = compare_runs(cand, base)
        assert comp.results[0].verdict == UNCHANGED and comp.ok

    def test_new_and_missing_benchmarks(self):
        base = run_of({"old": times(1.0), "both": times(1.0)}, run_id="base")
        cand = run_of({"new": times(1.0), "both": times(1.0)}, run_id="cand")
        comp = compare_runs(cand, base)
        verdicts = {r.benchmark_id: r.verdict for r in comp.results}
        assert verdicts == {"new": NEW, "old": MISSING, "both": UNCHANGED}
        assert comp.ok  # appearing/disappearing is not a perf regression

    def test_self_compare_rejected(self):
        run = run_of({"b": times(1.0)}, run_id="same")
        with pytest.raises(ValueError):
            compare_runs(run, run)

    def test_regressions_sorted_first(self):
        base = run_of({"bad": times(1.0), "fine": times(1.0),
                       "nice": times(1.5)}, run_id="base")
        cand = run_of({"bad": times(2.0, seed=1), "fine": times(1.0, seed=2),
                       "nice": times(1.0, seed=3)}, run_id="cand")
        comp = compare_runs(cand, base)
        assert [r.verdict for r in comp.results] == [REGRESSED, UNCHANGED,
                                                     IMPROVED]


class TestCalibrationNormalization:
    def cal(self, seconds):
        return {"calibration": {"kernel": "numpy-matmul-256",
                                "best_seconds": seconds}}

    def test_slower_machine_excused(self):
        # the whole candidate run (and its probe) ran 1.5x slower: machine
        # drift, not a regression
        base = run_of({"b": times(1.0)}, machine=self.cal(1e-3),
                      run_id="base")
        cand = run_of({"b": times(1.5, seed=1)}, machine=self.cal(1.5e-3),
                      run_id="cand")
        comp = compare_runs(cand, base)
        assert comp.machine_scale == pytest.approx(1.5)
        assert comp.results[0].verdict == UNCHANGED and comp.ok
        assert "normalised" in comp.report()

    def test_real_regression_survives_normalization(self):
        # machine 1.5x slower AND the kernel 3x slower on top
        base = run_of({"b": times(1.0)}, machine=self.cal(1e-3),
                      run_id="base")
        cand = run_of({"b": times(4.5, seed=1)}, machine=self.cal(1.5e-3),
                      run_id="cand")
        comp = compare_runs(cand, base)
        assert not comp.ok
        assert comp.results[0].ratio == pytest.approx(3.0, rel=0.1)

    def test_faster_machine_not_scaled(self):
        # one-sided: a faster candidate machine must not inflate times
        base = run_of({"b": times(1.0)}, machine=self.cal(1.5e-3),
                      run_id="base")
        cand = run_of({"b": times(1.0, seed=1)}, machine=self.cal(1e-3),
                      run_id="cand")
        comp = compare_runs(cand, base)
        assert comp.machine_scale == 1.0
        assert comp.ok

    def test_normalize_off_or_absent_probe(self):
        base = run_of({"b": times(1.0)}, machine=self.cal(1e-3),
                      run_id="base")
        cand = run_of({"b": times(1.5, seed=1)}, run_id="cand")  # no probe
        assert compare_runs(cand, base).machine_scale == 1.0
        cand2 = run_of({"b": times(1.5, seed=1)}, machine=self.cal(1.5e-3),
                       run_id="cand2")
        assert compare_runs(cand2, base, normalize=False).machine_scale == 1.0


class TestReport:
    def test_report_table_contents(self):
        base = run_of({"bench/x": times(1.0)}, label="base", run_id="base")
        cand = run_of({"bench/x": times(2.0, seed=1)}, label="cand",
                      run_id="cand")
        text = compare_runs(cand, base).report()
        assert "bench/x" in text
        assert "regressed" in text
        assert "gate FAIL" in text
        assert "Mann-Whitney" in text

    def test_gate_pass_line(self):
        base = run_of({"b": times(1.0)}, run_id="base")
        cand = run_of({"b": times(1.0, seed=1)}, run_id="cand")
        assert "gate PASS" in compare_runs(cand, base).report()


class TestHistoryDrift:
    def test_step_change_located(self):
        runs = [run_of({"b": times(1.0 if i < 5 else 2.0, n=5, seed=i)},
                       created=float(i), run_id=f"r{i}")
                for i in range(10)]
        (cp,) = history_drift(runs, "b")
        assert cp.index == 5
        assert cp.run_id == "r5"
        assert cp.rel_change == pytest.approx(1.0, abs=0.15)

    def test_flat_history_clean(self):
        runs = [run_of({"b": times(1.0, n=5, seed=i)}, created=float(i),
                       run_id=f"r{i}") for i in range(10)]
        assert history_drift(runs, "b") == []

    def test_short_history_clean(self):
        runs = [run_of({"b": times(1.0, n=5, seed=i)}, created=float(i),
                       run_id=f"r{i}") for i in range(4)]
        assert history_drift(runs, "b") == []
