"""Performance linter: rules, suppression, and the shipped-registry gate."""

import numpy as np
import pytest

from repro.analyze import LINT_RULES, AnalysisReport, lint_registry, lint_variant
from repro.analyze.lint import function_ast
from repro.kernels import REGISTRY
from repro.kernels.base import KernelVariant
from repro.timing.metrics import WorkCount


def _work(n):
    return WorkCount(flops=float(n), loads_bytes=8.0 * n, stores_bytes=8.0 * n)


def _variant(fn, technique="baseline", metadata=None, name="fix"):
    return KernelVariant(kernel="fixture", name=name, fn=fn, work=_work,
                        technique=technique, metadata=metadata or {})


# -- fixture kernels (module-level so inspect.getsource works) --------------

def scalar_loop_kernel(a, out):
    for i in range(a.shape[0]):
        out[i] = a[i] * 2.0
    return out


def loop_alloc_kernel(a):
    total = np.zeros_like(a)
    for _ in range(4):
        tmp = np.zeros(a.shape[0])
        total += tmp
    return total


def range_len_kernel(items):
    acc = 0.0
    for i in range(len(items)):
        acc += items[i]
    return acc


def invariant_lookup_kernel(mat, x):
    y = np.zeros(mat.shape[0])
    for i in range(mat.shape[0]):
        for j in range(mat.shape[1]):
            y[i] += mat.data[i, j] * x[j]
    return y


def dot_kernel(a, b):
    return np.dot(a, b)


def missing_out_kernel(a, b, c):
    c[:] = 0.25 * (a + b) + a * b
    return c


def clean_kernel(a, b, c):
    np.multiply(a, b, out=c)
    return c


# -- rule firing ------------------------------------------------------------

def _rules(findings):
    return {f.rule for f in findings}


class TestRules:
    def test_scalar_loop_warns_on_baseline(self):
        findings = lint_variant(_variant(scalar_loop_kernel))
        hits = [f for f in findings if f.rule == "L001"]
        assert hits and all(f.severity == "warning" for f in hits)

    def test_scalar_loop_errors_when_technique_claims_vectorized(self):
        findings = lint_variant(_variant(scalar_loop_kernel,
                                        technique="vectorization"))
        hits = [f for f in findings if f.rule == "L001"]
        assert hits and all(f.severity == "error" for f in hits)
        assert any("vectorized" in f.message for f in hits)

    def test_loop_alloc(self):
        assert "L002" in _rules(lint_variant(_variant(loop_alloc_kernel)))

    def test_range_len(self):
        assert "L003" in _rules(lint_variant(_variant(range_len_kernel)))

    def test_invariant_lookup(self):
        findings = lint_variant(_variant(invariant_lookup_kernel))
        hits = [f for f in findings if f.rule == "L004"]
        assert any("mat.data" in f.message for f in hits)

    def test_dot_matmul(self):
        assert "L005" in _rules(lint_variant(_variant(dot_kernel)))

    def test_missing_out(self):
        assert "L006" in _rules(lint_variant(_variant(missing_out_kernel)))

    def test_clean_kernel_has_no_findings(self):
        assert lint_variant(_variant(clean_kernel)) == []

    def test_findings_carry_line_numbers(self):
        findings = lint_variant(_variant(scalar_loop_kernel))
        assert all(f.lineno > 0 for f in findings)


# -- suppression ------------------------------------------------------------

class TestLintExpect:
    def test_expected_downgrades_matching_findings(self):
        v = _variant(scalar_loop_kernel,
                     metadata={"lint_expect": ("scalar-loop",)})
        findings = lint_variant(v)
        assert all(f.severity == "expected"
                   for f in findings if f.rule == "L001")

    def test_expected_never_gates(self):
        v = _variant(scalar_loop_kernel, technique="vectorization",
                     metadata={"lint_expect": ("scalar-loop",)})
        report = AnalysisReport(lint_variant(v))
        assert report.ok

    def test_stale_expectation_is_flagged(self):
        v = _variant(clean_kernel, metadata={"lint_expect": ("scalar-loop",)})
        findings = lint_variant(v)
        assert [f.rule for f in findings] == ["L000"]
        assert "no longer fires" in findings[0].message

    def test_unknown_expectation_is_flagged(self):
        v = _variant(clean_kernel, metadata={"lint_expect": ("no-such-rule",)})
        findings = lint_variant(v)
        assert [f.rule for f in findings] == ["L000"]
        assert "no such rule" in findings[0].message


# -- registry sweep ---------------------------------------------------------

class TestRegistrySweep:
    def test_shipped_registry_is_clean(self):
        report = lint_registry(REGISTRY)
        assert report.ok, report.render_text()
        # intentional anti-patterns are declared, not silently absent
        assert report.by_severity("expected")

    def test_no_stale_expectations_in_shipped_registry(self):
        report = lint_registry(REGISTRY)
        assert not [f for f in report.findings if f.rule == "L000"]

    def test_kernel_filter(self):
        report = lint_registry(REGISTRY, kernel="stencil")
        assert all(f.variant.startswith("stencil.") for f in report.findings)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            lint_registry(REGISTRY, kernel="nope")

    def test_deterministic(self):
        a = lint_registry(REGISTRY).to_json()
        b = lint_registry(REGISTRY).to_json()
        assert a == b

    def test_every_registered_variant_has_parsable_source(self):
        for v in REGISTRY.variants_of("matmul"):
            assert function_ast(v.fn) is not None


def test_rule_table_slugs_are_unique():
    slugs = [slug for slug, _, _ in LINT_RULES.values()]
    assert len(slugs) == len(set(slugs))


class TestSourceSpans:
    """Findings carry machine-usable spans (col, end_lineno) — the hook
    the transform tier's candidate listing is built on."""

    def test_findings_carry_spans(self):
        for kernel in (scalar_loop_kernel, loop_alloc_kernel,
                       range_len_kernel, dot_kernel):
            for f in lint_variant(_variant(kernel)):
                assert f.end_lineno >= f.lineno > 0, f
                assert f.col >= 0, f

    def test_span_covers_the_flagged_loop(self):
        findings = [f for f in lint_variant(_variant(scalar_loop_kernel))
                    if f.rule == "L001"]
        assert findings
        # the loop body sits on the line after the `for`; col is indented
        assert all(f.col > 0 for f in findings)
