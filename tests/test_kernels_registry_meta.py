"""Registry metadata consistency: the contracts the analyzer relies on.

Every registered variant must (1) have retrievable, parsable source —
the static passes are useless otherwise; (2) declare tunables that are
real keyword parameters of its callable with matching defaults; (3) ship
a WorkCount model that accepts the probe shapes the analysis fixtures
use; (4) carry only recognized analysis metadata.
"""

import inspect

import pytest

from repro.analyze.hazards import HAZARD_RULES
from repro.analyze.lint import LINT_RULES, function_ast
from repro.analyze.workcount import default_probes
from repro.kernels import REGISTRY
from repro.timing.metrics import WorkCount

ALL_VARIANTS = sorted(
    (v for k in REGISTRY.kernels() for v in REGISTRY.variants_of(k)),
    key=lambda v: v.qualified_name)
IDS = [v.qualified_name for v in ALL_VARIANTS]

_KNOWN_SLUGS = {slug for slug, _, _ in LINT_RULES.values()} \
    | {slug for slug, _, _ in HAZARD_RULES.values()}


@pytest.mark.parametrize("variant", ALL_VARIANTS, ids=IDS)
class TestPerVariant:
    def test_source_retrievable_and_parsable(self, variant):
        source = inspect.getsource(variant.fn)
        assert source.strip()
        assert function_ast(variant.fn) is not None

    def test_tunables_are_keyword_params_with_matching_defaults(self, variant):
        params = inspect.signature(variant.fn).parameters
        for tunable in variant.tunables:
            assert tunable.name in params, \
                f"{variant.qualified_name}: tunable {tunable.name!r} is not " \
                f"a parameter of {variant.fn.__name__}"
            param = params[tunable.name]
            assert param.default is not inspect.Parameter.empty, \
                f"{variant.qualified_name}: tunable {tunable.name!r} has no " \
                f"keyword default"
            assert param.default == tunable.default, \
                f"{variant.qualified_name}: tunable default " \
                f"{tunable.default!r} != signature default {param.default!r}"

    def test_work_model_accepts_probe_shapes(self, variant):
        spec = default_probes().get(variant.kernel)
        assert spec is not None, \
            f"no probe spec for kernel family {variant.kernel!r}"
        _, work_args = spec.build(variant.name)
        work = variant.work(*work_args)
        assert isinstance(work, WorkCount)
        assert work.flops >= 0
        assert work.bytes_total > 0

    def test_lint_expect_slugs_are_recognized(self, variant):
        for slug in variant.lint_expect:
            assert slug in _KNOWN_SLUGS, \
                f"{variant.qualified_name}: unknown lint_expect slug {slug!r}"

    def test_workcount_expect_is_a_reason_string(self, variant):
        expect = variant.metadata.get("workcount_expect")
        if expect is not None:
            assert isinstance(expect, str) and len(expect) > 10


def test_metadata_is_immutable():
    variant = ALL_VARIANTS[0]
    with pytest.raises(TypeError):
        variant.metadata["x"] = 1  # MappingProxyType


def test_registry_covers_every_probe_family():
    assert set(default_probes()) == set(REGISTRY.kernels())
