"""Tests for repro.simulator.trace."""

import numpy as np
import pytest

from repro.kernels import banded_sparse, matmul_work, random_keys, stencil_work
from repro.simulator import (
    ArrayLayout,
    Trace,
    histogram_trace,
    matmul_tiled_trace,
    matmul_trace,
    random_access_trace,
    spmv_csr_trace,
    stencil_trace,
    stream_trace,
    strided_trace,
)


class TestTrace:
    def test_basic_properties(self):
        t = Trace(np.array([0, 8, 16], dtype=np.int64),
                  np.array([False, True, False]))
        assert len(t) == 3
        assert t.n_reads == 2
        assert t.n_writes == 1

    def test_footprint_counts_unique_lines(self):
        t = Trace(np.array([0, 8, 64, 72], dtype=np.int64),
                  np.zeros(4, dtype=bool))
        assert t.footprint_bytes(64) == 128

    def test_concat(self):
        a = Trace(np.array([0], dtype=np.int64), np.array([False]), "a")
        b = Trace(np.array([8], dtype=np.int64), np.array([True]), "b")
        c = a.concat(b)
        assert len(c) == 2 and c.writes.tolist() == [False, True]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(np.array([0, 8], dtype=np.int64), np.array([True]))


class TestArrayLayout:
    def test_non_overlapping(self):
        lay = ArrayLayout()
        a = lay.alloc("a", 1000)
        b = lay.alloc("b", 1000)
        assert b >= a + 1000

    def test_alignment(self):
        lay = ArrayLayout(alignment=4096)
        lay.alloc("a", 100)
        assert lay.alloc("b", 100) % 4096 == 0

    def test_duplicate_rejected(self):
        lay = ArrayLayout()
        lay.alloc("a", 10)
        with pytest.raises(ValueError):
            lay.alloc("a", 10)


class TestMatmulTrace:
    def test_length_and_mix(self):
        t = matmul_trace(8, "ijk")
        assert len(t) == 4 * 8 ** 3
        assert t.n_writes == 8 ** 3

    def test_footprint_is_three_matrices(self):
        n = 16
        t = matmul_trace(n, "ikj")
        assert t.footprint_bytes(64) == pytest.approx(3 * n * n * 8, rel=0.1)

    def test_orders_permute_same_accesses(self):
        a = matmul_trace(6, "ijk")
        b = matmul_trace(6, "kji")
        assert np.array_equal(np.sort(a.addresses), np.sort(b.addresses))

    def test_tiled_same_multiset_of_accesses(self):
        a = matmul_trace(8, "ijk")
        b = matmul_tiled_trace(8, 3)
        assert np.array_equal(np.sort(a.addresses), np.sort(b.addresses))

    def test_traffic_matches_work_model_footprint(self):
        n = 12
        t = matmul_trace(n, "ijk")
        w = matmul_work(n)
        # compulsory traffic = unique bytes touched = loads in the work model
        assert t.footprint_bytes(8) * 1.0 == w.loads_bytes

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            matmul_trace(4, "abc")


class TestStreamTrace:
    @pytest.mark.parametrize("kernel,per_iter", [
        ("copy", 2), ("scale", 2), ("add", 3), ("triad", 3)])
    def test_lengths(self, kernel, per_iter):
        t = stream_trace(100, kernel)
        assert len(t) == per_iter * 100
        assert t.n_writes == 100

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            stream_trace(10, "fma")


class TestStencilTrace:
    def test_interior_only(self):
        n = 10
        t = stencil_trace(n)
        assert len(t) == 5 * (n - 2) ** 2

    def test_tiled_permutes_accesses(self):
        plain = stencil_trace(12)
        tiled = stencil_trace(12, tile=4)
        assert np.array_equal(np.sort(plain.addresses), np.sort(tiled.addresses))

    def test_write_count_matches_work(self):
        t = stencil_trace(10, 12)
        assert t.n_writes == stencil_work(10, 12).stores_bytes / 8


class TestHistogramTrace:
    def test_three_refs_per_key(self):
        keys = random_keys(100, 16, seed=0)
        t = histogram_trace(keys, 16)
        assert len(t) == 300
        assert t.n_writes == 100

    def test_data_dependence_visible(self):
        # sorted keys touch counts monotonically; uniform keys jump around
        n, bins = 2000, 512
        sorted_t = histogram_trace(random_keys(n, bins, seed=1, distribution="sorted"), bins)
        uniform_t = histogram_trace(random_keys(n, bins, seed=1), bins)
        jumps_sorted = np.abs(np.diff(sorted_t.addresses[1::3])).sum()
        jumps_uniform = np.abs(np.diff(uniform_t.addresses[1::3])).sum()
        assert jumps_uniform > 10 * jumps_sorted

    def test_out_of_range_keys_rejected(self):
        with pytest.raises(ValueError):
            histogram_trace(np.array([4], dtype=np.int64), 3)


class TestSpmvTrace:
    def test_length(self):
        coo = banded_sparse(30, 2, seed=2)
        t = spmv_csr_trace(coo)
        assert len(t) == 3 * coo.nnz + 30
        assert t.n_writes == 30

    def test_bandwidth_improves_locality(self, cpu):
        from repro.simulator import hierarchy_for

        # x must exceed L1 for structure to matter: n=6000 -> 48 KiB
        n = 6000
        narrow = spmv_csr_trace(banded_sparse(n, 8, seed=3))
        wide = spmv_csr_trace(
            banded_sparse(n, n - 1, fill=17 / (2 * n), seed=3))
        h1 = hierarchy_for(cpu)
        h1.access_trace(narrow.addresses, narrow.writes)
        h2 = hierarchy_for(cpu)
        h2.access_trace(wide.addresses, wide.writes)
        # x-gather locality: banded matrix misses less per nonzero
        assert (h1.caches[0].stats.miss_ratio
                < h2.caches[0].stats.miss_ratio)


class TestSyntheticTraces:
    def test_strided_wraps(self):
        t = strided_trace(100, 256, 1024)
        assert t.addresses.max() < 1024

    def test_random_within_footprint(self):
        t = random_access_trace(1000, 4096, seed=1)
        assert t.addresses.max() < 4096
        assert t.addresses.min() >= 0

    def test_write_fraction(self):
        t = random_access_trace(1000, 4096, seed=1, write_fraction=0.5)
        assert 0.4 < t.n_writes / len(t) < 0.6

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            strided_trace(10, 64, 32)
