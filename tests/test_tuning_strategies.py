"""Tests for repro.tuning.strategies.

The acceptance bar: on a synthetic convex objective every strategy finds
the optimum within its budget, and identical seeds give byte-identical
TuningResult histories.
"""

import math

import pytest

from repro.tuning import (
    Budget,
    CoordinateDescent,
    EvaluationHarness,
    GridSearch,
    IntegerParam,
    PowerOfTwoParam,
    RandomSearch,
    SearchSpace,
    SimulatedAnnealing,
)

OPTIMUM = {"tile": 64, "workers": 4}


def convex(cfg):
    """Separable convex bowl over (tile, workers), minimum at OPTIMUM."""
    return (1.0 + (math.log2(cfg["tile"]) - 6) ** 2
            + 0.5 * (cfg["workers"] - 4) ** 2)


def space():
    return SearchSpace([
        PowerOfTwoParam("tile", low=4, high=256),
        IntegerParam("workers", low=1, high=8),
    ])


ALL_STRATEGIES = [
    GridSearch(),
    RandomSearch(seed=3),
    CoordinateDescent(),
    CoordinateDescent(seed=5),
    SimulatedAnnealing(seed=7, steps=80),
]


@pytest.mark.parametrize("strategy", ALL_STRATEGIES,
                         ids=lambda s: f"{s.name}")
def test_finds_optimum_within_budget(strategy):
    harness = EvaluationHarness(convex, budget=Budget(max_evaluations=56))
    result = strategy.run(space(), harness)
    assert result.best_config == OPTIMUM
    assert result.best_seconds == pytest.approx(1.0)
    assert result.measurements <= 56


@pytest.mark.parametrize("make", [
    lambda: GridSearch(),
    lambda: RandomSearch(seed=11),
    lambda: CoordinateDescent(seed=11),
    lambda: SimulatedAnnealing(seed=11, steps=60),
], ids=["grid", "random", "coordinate-descent", "simulated-annealing"])
def test_identical_seeds_give_byte_identical_histories(make):
    def run_once():
        harness = EvaluationHarness(convex, kernel="convex",
                                    budget=Budget(max_evaluations=40))
        return make().run(space(), harness).to_json()

    assert run_once() == run_once()


def test_grid_visits_every_config_exactly_once():
    sp = space()
    result = GridSearch().run(sp, EvaluationHarness(convex))
    assert result.measurements == sp.size()
    assert result.cache_hits == 0


def test_grid_stops_cleanly_at_budget():
    result = GridSearch().run(space(),
                              EvaluationHarness(convex, budget=Budget(max_evaluations=5)))
    assert result.measurements == 5


def test_random_samples_without_replacement():
    result = RandomSearch(seed=0).run(space(), EvaluationHarness(convex))
    assert result.cache_hits == 0
    assert result.measurements == space().size()


def test_random_max_samples_cap():
    result = RandomSearch(seed=0, max_samples=6).run(space(), EvaluationHarness(convex))
    assert result.measurements == 6


def test_coordinate_descent_converges_without_budget():
    # deterministic default start; terminates at a fixed point on its own
    result = CoordinateDescent().run(space(), EvaluationHarness(convex))
    assert result.best_config == OPTIMUM


def test_coordinate_descent_under_30_evals_on_2d_bowl():
    # the satellite example's contract: tile axis (7) + workers axis (8)
    # swept from the default in <= 30 evaluations
    harness = EvaluationHarness(convex, budget=Budget(max_evaluations=30))
    result = CoordinateDescent().run(space(), harness)
    assert result.best_config == OPTIMUM
    assert result.measurements <= 30


def test_annealing_different_seeds_explore_differently():
    a = SimulatedAnnealing(seed=1, steps=30).run(space(), EvaluationHarness(convex))
    b = SimulatedAnnealing(seed=2, steps=30).run(space(), EvaluationHarness(convex))
    assert [e.config for e in a.history] != [e.config for e in b.history]


def test_strategy_parameter_validation():
    with pytest.raises(ValueError):
        RandomSearch(max_samples=0)
    with pytest.raises(ValueError):
        CoordinateDescent(max_passes=0)
    with pytest.raises(ValueError):
        SimulatedAnnealing(steps=0)
    with pytest.raises(ValueError):
        SimulatedAnnealing(initial_temperature=-1.0)
    with pytest.raises(ValueError):
        SimulatedAnnealing(cooling=1.5)
