"""Tests for repro.observe: spans, tracers, metrics, active-tracer rules."""

import pickle
import threading

import pytest

from repro.observe import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)


class TestSpan:
    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Span("x", start=1.0, end=0.5)

    def test_kind_falls_back_to_name_prefix(self):
        assert Span("timing.repetition", 0, 1).kind == "timing"
        assert Span("x", 0, 1, category="tuning").kind == "tuning"

    def test_with_attrs_merges(self):
        s = Span("x", 0, 1, attrs={"a": 1})
        merged = s.with_attrs(rank=3)
        assert merged.attrs == {"a": 1, "rank": 3}
        assert s.attrs == {"a": 1}  # original untouched

    def test_picklable_for_worker_shipping(self):
        s = Span("backend.chunk", 0.0, 1.0, category="backend",
                 pid=7, tid=9, attrs={"config": {"tile": 8}})
        back = pickle.loads(pickle.dumps(s))
        assert back == s


class TestTracer:
    def test_span_records_interval(self):
        tracer = Tracer(metrics=MetricsRegistry())
        with tracer.span("work", category="w", tag="a") as sp:
            sp.set("extra", 1)
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.end >= span.start
        assert span.attrs == {"tag": "a", "extra": 1}

    def test_nested_spans_get_parent_ids(self):
        tracer = Tracer(metrics=MetricsRegistry())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # inner closes first
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.start <= inner.start and inner.end <= outer.end

    def test_record_explicit_timestamps(self):
        tracer = Tracer(metrics=MetricsRegistry())
        span = tracer.record("x", start=1.0, end=2.0, tid=5)
        assert span.duration == 1.0
        assert tracer.spans == (span,)

    def test_drain_empties(self):
        tracer = Tracer(metrics=MetricsRegistry())
        with tracer.span("a"):
            pass
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.spans == ()

    def test_adopt_merges_foreign_spans(self):
        parent = Tracer(metrics=MetricsRegistry())
        worker = Tracer(metrics=MetricsRegistry())
        with worker.span("chunk"):
            pass
        parent.adopt(worker.drain())
        assert [s.name for s in parent.spans] == ["chunk"]

    def test_thread_workers_record_concurrently(self):
        tracer = Tracer(metrics=MetricsRegistry())

        def work():
            for _ in range(50):
                with tracer.span("w"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.spans) == 200

    def test_metric_conveniences(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        tracer.count("hits", 2)
        tracer.gauge("depth", 3.0)
        tracer.observe("seconds", 0.5)
        snap = registry.snapshot()
        assert snap["counters"]["hits"] == 2
        assert snap["gauges"]["depth"] == 3.0
        assert snap["histograms"]["seconds"]["count"] == 1


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        with tracer.span("x", anything=1) as sp:
            sp.set("k", "v")
        tracer.count("c")
        tracer.gauge("g", 1.0)
        tracer.observe("h", 1.0)
        tracer.adopt([Span("y", 0, 1)])
        assert tracer.spans == ()
        assert not tracer.enabled

    def test_span_handle_is_shared(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")


class TestActiveTracer:
    def test_default_is_null(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not get_tracer().enabled

    def test_env_toggle_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert get_tracer().enabled

    def test_env_zero_stays_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not get_tracer().enabled

    def test_set_tracer_installs_globally(self):
        tracer = Tracer(metrics=MetricsRegistry())
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)

    def test_tracing_context_is_thread_local(self):
        seen = {}
        with tracing() as tracer:
            assert get_tracer() is tracer

            def probe():
                seen["other"] = get_tracer()

            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["other"] is not tracer  # other threads keep their default
        assert get_tracer() is not tracer   # restored on exit


class TestMetrics:
    def test_counter_only_increases(self):
        c = Counter("c")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(5)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_buckets_and_moments(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # below 1, (1,10], overflow
        assert h.count == 3
        assert h.min == 0.5 and h.max == 50.0
        assert h.mean == pytest.approx(55.5 / 3)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_registry_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")

    def test_registry_rejects_type_shadowing(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_snapshot_is_json_plain(self):
        import json

        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g")  # never set: NaN -> None
        r.histogram("h").observe(0.1)
        doc = r.snapshot()
        json.dumps(doc)
        assert doc["gauges"]["g"] is None

    def test_report_lists_instruments(self):
        r = MetricsRegistry()
        r.counter("tuning.cache_hits").inc(7)
        text = r.report()
        assert "tuning.cache_hits" in text and "7" in text
        assert MetricsRegistry().report() == "(no metrics)"

    def test_process_wide_default_exists(self):
        assert isinstance(METRICS, MetricsRegistry)


class TestSnapshotDelta:
    def test_counters_subtract_and_drop_zero(self):
        from repro.observe import snapshot_delta

        reg = MetricsRegistry()
        reg.counter("moved").inc(2)
        reg.counter("static").inc(5)
        before = reg.snapshot()
        reg.counter("moved").inc(3)
        reg.counter("fresh").inc(1)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["counters"] == {"moved": 3, "fresh": 1}

    def test_gauges_keep_after_value(self):
        from repro.observe import snapshot_delta

        reg = MetricsRegistry()
        reg.gauge("depth").set(4.0)
        before = reg.snapshot()
        reg.gauge("depth").set(9.0)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["gauges"]["depth"] == 9.0

    def test_histograms_window_count_and_total(self):
        from repro.observe import snapshot_delta

        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(1.0)
        before = reg.snapshot()
        h.observe(3.0)
        h.observe(5.0)
        delta = snapshot_delta(before, reg.snapshot())
        got = delta["histograms"]["lat"]
        assert got["count"] == 2
        assert got["total"] == pytest.approx(8.0)
        assert sum(got["counts"]) == 2

    def test_json_plain_for_the_perfdb_record(self):
        import json

        from repro.observe import snapshot_delta

        reg = MetricsRegistry()
        reg.counter("c").inc()
        delta = snapshot_delta(MetricsRegistry().snapshot(), reg.snapshot())
        assert json.loads(json.dumps(delta)) == delta
