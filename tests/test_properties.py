"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical import amdahl_speedup, fit_power_law
from repro.course import final_grade
from repro.distributed import AlphaBeta, allreduce_ring, broadcast_binomial
from repro.kernels import (
    bit_reverse_permutation,
    fft_vectorized,
    histogram_numpy,
    histogram_scalar,
    matmul_work,
)
from repro.machine import CacheLevel
from repro.parallel import simulate_schedule
from repro.polyhedral import lex_positive
from repro.queueing import mm1
from repro.simulator import Cache, MultiLevelCache
from repro.timing import (
    WorkCount,
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    reject_outliers,
    summarize,
)

positive_floats = st.floats(min_value=1e-6, max_value=1e6,
                            allow_nan=False, allow_infinity=False)


class TestStatisticsProperties:
    @given(st.lists(positive_floats, min_size=2, max_size=40))
    def test_mean_inequality_chain(self, data):
        """harmonic <= geometric <= arithmetic for positive data."""
        h = harmonic_mean(data)
        g = geometric_mean(data)
        a = arithmetic_mean(data)
        assert h <= g * (1 + 1e-9)
        assert g <= a * (1 + 1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=40))
    def test_outlier_rejection_never_empty(self, data):
        kept = reject_outliers(data)
        assert len(kept) >= 1
        assert set(np.asarray(kept).tolist()) <= set(data)

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    def test_summary_bounds(self, data):
        s = summarize(data)
        assert s.min <= s.median <= s.max
        assert s.ci_low <= s.ci_high


class TestWorkCountProperties:
    @given(st.floats(0, 1e9), st.floats(0, 1e9), st.floats(0, 1e9))
    def test_addition_commutative(self, f, l, s):
        a = WorkCount(f, l, s)
        b = WorkCount(s, f, l)
        assert (a + b).flops == (b + a).flops
        assert (a + b).bytes_total == pytest.approx((b + a).bytes_total)

    @given(st.integers(1, 64), st.integers(1, 64), st.integers(1, 64))
    def test_matmul_flops_formula(self, n, m, k):
        assert matmul_work(n, m, k).flops == 2.0 * n * m * k


class TestCacheProperties:
    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, addresses):
        cache = Cache(CacheLevel("L1", 1024, 64, 4))
        for a in addresses:
            cache.access(a)
        s = cache.stats
        assert s.hits + s.misses == s.accesses == len(addresses)
        assert cache.occupancy <= cache.level.n_lines
        assert s.evictions == s.misses - cache.occupancy

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200),
           st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_bigger_cache_never_misses_more_fully_assoc(self, addresses, shift):
        """LRU inclusion property: a larger fully-associative LRU cache
        never misses more than a smaller one on the same trace."""
        small = Cache(CacheLevel("s", 512, 64, 8))    # fully associative
        large = Cache(CacheLevel("l", 2048, 64, 32))  # fully associative
        for a in addresses:
            small.access(a << shift)
            large.access(a << shift)
        assert large.stats.misses <= small.stats.misses

    @given(st.lists(st.tuples(st.integers(0, 1 << 15), st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_hierarchy_miss_monotonicity(self, trace):
        """Demand misses cannot increase down the hierarchy."""
        h = MultiLevelCache((CacheLevel("L1", 512, 64, 2),
                             CacheLevel("L2", 4096, 64, 8)))
        for a, w in trace:
            h.access(a, w)
        l1, l2 = h.caches
        assert l2.stats.accesses == l1.stats.misses
        assert l2.stats.misses <= l1.stats.misses
        assert h.memory_accesses == l2.stats.misses


class TestFFTProperties:
    @given(st.integers(0, 6))
    def test_bit_reversal_involution(self, log_n):
        n = 1 << log_n
        p = bit_reverse_permutation(n)
        assert np.array_equal(p[p], np.arange(n))

    @given(st.integers(1, 5), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_fft_parseval(self, log_n, seed):
        n = 1 << log_n
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        X = fft_vectorized(x)
        assert np.sum(np.abs(x) ** 2) == pytest.approx(
            np.sum(np.abs(X) ** 2) / n, rel=1e-9)


class TestHistogramProperties:
    @given(st.integers(1, 400), st.integers(1, 40), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_counts_conserve_and_agree(self, n, bins, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, bins, n).astype(np.int64)
        fast = histogram_numpy(keys, bins)
        slow = histogram_scalar(keys, bins)
        assert np.array_equal(fast, slow)
        assert fast.sum() == n


class TestScheduleProperties:
    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100),
           st.integers(1, 8),
           st.sampled_from(["static", "dynamic", "guided"]))
    @settings(max_examples=40, deadline=None)
    def test_schedule_invariants(self, costs, threads, kind):
        chunk = 2 if kind != "static" else None
        r = simulate_schedule(costs, threads, kind, chunk=chunk)
        total = sum(costs)
        # work is conserved and makespan is bounded by [total/p, total]
        assert r.total_work == pytest.approx(total, abs=1e-9)
        assert r.makespan >= total / threads - 1e-9
        assert r.makespan <= total + 1e-9


class TestLawProperties:
    @given(st.floats(0.0, 1.0), st.integers(1, 1024))
    def test_amdahl_bounds(self, s, p):
        sp = amdahl_speedup(s, p)
        assert 1.0 - 1e-12 <= sp or p == 1
        assert sp <= p + 1e-9

    @given(st.floats(0.5, 4.0), st.floats(1e-9, 1e-3))
    def test_power_fit_roundtrip(self, exponent, coefficient):
        sizes = [16.0, 32.0, 64.0, 128.0]
        times = [coefficient * n ** exponent for n in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)


class TestNetworkProperties:
    @given(st.floats(0, 1e-4), st.floats(1e6, 1e12),
           st.integers(2, 512), st.floats(1, 1e8))
    @settings(max_examples=40)
    def test_collective_costs_positive_and_tree_beats_linear(
            self, alpha, beta, p, m):
        net = AlphaBeta(alpha, beta)
        tree = broadcast_binomial(net, p, m)
        assert tree > 0
        assert allreduce_ring(net, p, m) > 0
        # a binomial tree never loses to p-1 sequential sends
        from repro.distributed import broadcast_linear

        assert tree <= broadcast_linear(net, p, m) + 1e-12


class TestQueueProperties:
    @given(st.floats(0.1, 9.0))
    def test_mm1_littles_law(self, lam):
        m = mm1(lam, 10.0)
        assert m.mean_in_system == pytest.approx(lam * m.mean_time_in_system)
        assert m.mean_in_queue == pytest.approx(lam * m.mean_wait)
        assert m.mean_in_system >= m.mean_in_queue


class TestGradingProperties:
    @given(st.floats(1, 10), st.floats(0, 10), st.floats(1, 10), st.floats(0, 70))
    def test_final_grade_in_range_and_monotone(self, gp, ga, ge, sq):
        g = final_grade(gp, ga, ge, sq)
        assert 1.0 <= g <= 10.0
        # improving the project can never lower the grade
        better = final_grade(min(10.0, gp + 0.5), ga, ge, sq)
        assert better >= g - 1e-9


class TestLexPositive:
    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=5),
           st.lists(st.integers(-5, 5), min_size=1, max_size=5))
    def test_sum_of_lex_positive_is_lex_positive(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        if lex_positive(a) and lex_positive(b):
            assert lex_positive([x + y for x, y in zip(a, b)])
