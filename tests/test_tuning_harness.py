"""Tests for repro.tuning.harness: budgets, cache, persistence."""

import math

import pytest

from repro.tuning import (
    Budget,
    BudgetExhausted,
    Evaluation,
    EvaluationHarness,
    GridSearch,
    PowerOfTwoParam,
    SearchSpace,
    TuningResult,
    timed_objective,
)


def convex(cfg):
    """Deterministic convex objective with the minimum at tile=64."""
    return 1.0 + (math.log2(cfg["tile"]) - 6) ** 2


def space():
    return SearchSpace([PowerOfTwoParam("tile", low=4, high=256)])


class TestBudget:
    def test_needs_some_bound(self):
        with pytest.raises(ValueError):
            Budget()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Budget(max_evaluations=0)
        with pytest.raises(ValueError):
            Budget(max_seconds=0.0)

    def test_evaluation_budget_enforced(self):
        h = EvaluationHarness(convex, budget=Budget(max_evaluations=3))
        for tile in (4, 8, 16):
            h.evaluate({"tile": tile})
        with pytest.raises(BudgetExhausted):
            h.evaluate({"tile": 32})

    def test_wallclock_budget_enforced_via_injected_clock(self):
        ticks = iter(range(100))
        h = EvaluationHarness(convex, budget=Budget(max_seconds=2.5),
                              clock=lambda: float(next(ticks)))
        h.evaluate({"tile": 4})   # clock 0 (start), 1 (check... )
        h.evaluate({"tile": 8})
        with pytest.raises(BudgetExhausted):
            for tile in (16, 32, 64):
                h.evaluate({"tile": tile})

    def test_reused_harness_does_not_count_idle_time_between_searches(self):
        """Regression: _started was set on the first evaluate() and never
        reset, so a harness reused for a second search (the documented
        repeated-search/shared-cache workflow) charged the idle time in
        between against max_seconds and falsely raised BudgetExhausted."""
        now = [0.0]
        h = EvaluationHarness(convex, budget=Budget(max_seconds=10.0),
                              clock=lambda: now[0])
        first = GridSearch().run(space(), h)
        assert first.measurements == space().size()
        now[0] += 1e6  # a long lunch between searches
        second = GridSearch().run(space(), h)
        assert second.cache_hits == space().size()
        # and a fresh config after the idle gap is still measurable
        h.reset_clock()
        assert h.evaluate({"tile": 512}) > 0

    def test_reset_clock_restarts_wallclock_budget(self):
        ticks = iter(float(i) for i in range(100))
        h = EvaluationHarness(convex, budget=Budget(max_seconds=2.5),
                              clock=lambda: next(ticks))
        h.evaluate({"tile": 4})
        h.evaluate({"tile": 8})
        with pytest.raises(BudgetExhausted):
            h.evaluate({"tile": 16})
        h.reset_clock()  # a new search: the next evaluation restarts the clock
        h.evaluate({"tile": 16})
        h.evaluate({"tile": 32})

    def test_strategy_run_resets_clock(self):
        now = [0.0]

        def objective(cfg):
            now[0] += 1.0  # each measurement costs one fake second
            return convex(cfg)

        h = EvaluationHarness(objective, budget=Budget(max_seconds=100.0),
                              clock=lambda: now[0])
        h.evaluate({"tile": 4})  # ad-hoc use starts the clock ...
        now[0] += 1000.0         # ... then the harness sits idle
        result = GridSearch().run(space(), h)
        # the search was NOT cut short by the stale pre-search clock (the
        # history keeps the pre-search evaluation as its first entry)
        assert result.measurements + result.cache_hits == space().size() + 1
        assert result.measurements == space().size()

    def test_cache_hits_are_budget_free(self):
        h = EvaluationHarness(convex, budget=Budget(max_evaluations=1))
        h.evaluate({"tile": 4})
        # revisits never raise, however tight the budget
        for _ in range(5):
            h.evaluate({"tile": 4})
        assert h.measurements == 1
        assert h.result().cache_hits == 5


class TestCache:
    def test_repeated_search_measures_nothing_new(self):
        cache = {}
        sp = space()
        first = GridSearch().run(sp, EvaluationHarness(convex, kernel="k", cache=cache))
        second = GridSearch().run(sp, EvaluationHarness(convex, kernel="k", cache=cache))
        assert first.measurements == sp.size()
        assert second.measurements == 0
        assert second.cache_hits == sp.size()
        assert second.best_config == first.best_config

    def test_cache_keyed_on_kernel_and_problem(self):
        cache = {}
        h1 = EvaluationHarness(convex, kernel="a", problem="n=64", cache=cache)
        h2 = EvaluationHarness(convex, kernel="a", problem="n=128", cache=cache)
        h3 = EvaluationHarness(convex, kernel="b", problem="n=64", cache=cache)
        for h in (h1, h2, h3):
            h.evaluate({"tile": 8})
        assert len(cache) == 3

    def test_counts_objective_calls(self):
        calls = []
        h = EvaluationHarness(lambda c: calls.append(1) or 1.0)
        h.evaluate({"tile": 4})
        h.evaluate({"tile": 4})
        assert len(calls) == 1

    def test_rejects_nonpositive_objective(self):
        h = EvaluationHarness(lambda c: 0.0)
        with pytest.raises(ValueError):
            h.evaluate({"tile": 4})


class TestTuningResult:
    def result(self):
        h = EvaluationHarness(convex, kernel="k", problem="p")
        for tile in (4, 64, 64, 256):
            h.evaluate({"tile": tile})
        return h.result(strategy="grid")

    def test_best_is_minimum(self):
        r = self.result()
        assert r.best_config == {"tile": 64}
        assert r.best_seconds == 1.0

    def test_measurement_and_hit_counts(self):
        r = self.result()
        assert r.measurements == 3
        assert r.cache_hits == 1

    def test_json_roundtrip(self):
        r = self.result()
        back = TuningResult.from_json(r.to_json())
        assert back.to_json() == r.to_json()
        assert back.best_config == r.best_config
        assert [e.cached for e in back.history] == [e.cached for e in r.history]

    def test_empty_history_has_no_best(self):
        with pytest.raises(ValueError):
            TuningResult("k", "p", "grid").best

    def test_report_mentions_best_and_hits(self):
        text = self.result().report()
        assert "best 1.0000e+00s" in text
        assert "1 cache hit(s)" in text

    def test_prediction_error(self):
        e = Evaluation(0, {"tile": 4}, seconds=2.0, predicted_seconds=1.0)
        assert e.prediction_error() == pytest.approx(-0.5)
        assert Evaluation(0, {}, 1.0).prediction_error() is None


class TestTimedObjective:
    def test_times_a_real_kernel(self):
        from repro.kernels import matmul_tiled, random_matrices

        obj = timed_objective(matmul_tiled, lambda cfg: random_matrices(24),
                              warmup=0, repetitions=1)
        seconds = obj({"tile": 8})
        assert seconds > 0

    def test_setup_called_once_per_evaluation(self):
        made = []

        def setup(cfg):
            made.append(cfg)
            return ()

        obj = timed_objective(lambda **kw: None, setup, warmup=2, repetitions=3)
        obj({"tile": 4})
        assert len(made) == 1
