"""Tests for repro.parallel.schedule."""

import numpy as np
import pytest

from repro.parallel import imbalance_ratio, simulate_schedule


class TestStatic:
    def test_uniform_costs_perfectly_balanced(self):
        r = simulate_schedule([1.0] * 16, 4, "static")
        assert r.imbalance == pytest.approx(0.0)
        assert r.makespan == pytest.approx(4.0)

    def test_remainder_iterations_distributed(self):
        r = simulate_schedule([1.0] * 10, 4, "static")
        # blocks of 3,3,2,2
        assert max(r.per_thread_busy) == pytest.approx(3.0)

    def test_triangular_costs_imbalance(self):
        # costs grow linearly (e.g. triangular loop): last block heaviest
        costs = np.arange(1, 101, dtype=float)
        r = simulate_schedule(costs, 4, "static")
        assert r.imbalance > 0.4

    def test_total_work_conserved(self):
        costs = np.random.default_rng(0).random(100)
        r = simulate_schedule(costs, 8, "static")
        assert r.total_work == pytest.approx(costs.sum())


class TestDynamic:
    def test_dynamic_fixes_triangular_imbalance(self):
        costs = np.arange(1, 101, dtype=float)
        static = simulate_schedule(costs, 4, "static")
        dynamic = simulate_schedule(costs, 4, "dynamic", chunk=1)
        assert dynamic.makespan < static.makespan
        assert dynamic.imbalance < static.imbalance

    def test_dispatch_overhead_penalizes_fine_chunks(self):
        costs = [1e-6] * 1000
        fine = simulate_schedule(costs, 4, "dynamic", chunk=1,
                                 dispatch_overhead=1e-6)
        coarse = simulate_schedule(costs, 4, "dynamic", chunk=100,
                                   dispatch_overhead=1e-6)
        assert fine.makespan > coarse.makespan
        assert fine.chunks_dispatched == 1000

    def test_guided_fewer_chunks_than_dynamic(self):
        costs = [1.0] * 256
        guided = simulate_schedule(costs, 4, "guided", chunk=1)
        dynamic = simulate_schedule(costs, 4, "dynamic", chunk=1)
        assert guided.chunks_dispatched < dynamic.chunks_dispatched

    def test_single_thread_makespan_is_total(self):
        costs = [1.0, 2.0, 3.0]
        r = simulate_schedule(costs, 1, "dynamic", chunk=1)
        assert r.makespan == pytest.approx(6.0)


class TestStaticChunked:
    def test_round_robin_assignment(self):
        # 4 chunks of 2 over 2 threads -> alternating
        costs = [1.0, 1.0, 5.0, 5.0, 1.0, 1.0, 5.0, 5.0]
        r = simulate_schedule(costs, 2, "static-chunked", chunk=2)
        assert r.per_thread_busy[0] == pytest.approx(4.0)
        assert r.per_thread_busy[1] == pytest.approx(20.0)

    def test_requires_chunk(self):
        with pytest.raises(ValueError):
            simulate_schedule([1.0], 2, "static-chunked")


class TestValidation:
    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            simulate_schedule([1.0], 2, "magic")

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            simulate_schedule([-1.0], 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            simulate_schedule([], 2)

    def test_efficiency_bounded(self):
        r = simulate_schedule(np.random.default_rng(1).random(50), 4, "static")
        assert 0 < r.efficiency <= 1.0


class TestImbalanceRatio:
    def test_zero_for_equal(self):
        assert imbalance_ratio([2.0, 2.0, 2.0]) == 0.0

    def test_known_value(self):
        assert imbalance_ratio([1.0, 3.0]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            imbalance_ratio([])
