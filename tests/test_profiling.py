"""Tests for repro.profiling."""

import time

import numpy as np
import pytest

from repro.profiling import FunctionCost, Profile, amdahl_gate, profile_callable


def _hot():
    time.sleep(0.03)


def _cold():
    time.sleep(0.005)


def _workload():
    _hot()
    _cold()


class TestProfileCallable:
    def test_finds_the_hotspot(self):
        profile = profile_callable(_workload, min_self_seconds=0.001)
        hot = profile.hotspots(1)[0]
        # sleep dominates; both calls funnel into the same builtin
        assert "sleep" in hot.name
        assert profile.total_seconds >= 0.03

    def test_fraction_by_substring(self):
        profile = profile_callable(_workload)
        assert profile.fraction("sleep") > 0.8
        assert profile.fraction("no-such-function") == 0.0

    def test_min_self_filter(self):
        profile = profile_callable(_workload, min_self_seconds=10.0)
        assert profile.functions == ()
        assert profile.total_seconds > 0

    def test_propagates_exceptions_but_profiles(self):
        def boom():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            profile_callable(boom)


class TestProfileAnalysis:
    def make(self, costs):
        functions = tuple(FunctionCost(f"f{i}", 1, c, c)
                          for i, c in enumerate(costs))
        return Profile(total_seconds=sum(costs), functions=functions)

    def test_flatness_single_hotspot(self):
        profile = self.make([0.9, 0.05, 0.05])
        assert profile.flatness == pytest.approx(0.1)

    def test_flatness_flat_profile(self):
        profile = self.make([0.25] * 4)
        assert profile.flatness == pytest.approx(0.75)

    def test_hotspots_ordering(self):
        profile = self.make([0.1, 0.5, 0.2])
        assert [f.name for f in profile.hotspots(2)] == ["f1", "f2"]

    def test_report_mentions_flatness(self):
        assert "flatness" in self.make([1.0]).report()

    def test_amdahl_gate_hot_function_worth_it(self):
        profile = self.make([0.9, 0.1])
        speedup, worth = amdahl_gate(profile, "f0", assumed_speedup=10.0)
        assert speedup == pytest.approx(1.0 / (0.1 + 0.9 / 10))
        assert worth

    def test_amdahl_gate_cold_function_not_worth_it(self):
        profile = self.make([0.1, 0.9])
        speedup, worth = amdahl_gate(profile, "f0", assumed_speedup=100.0)
        assert speedup < 1.2
        assert not worth

    def test_amdahl_gate_validates_speedup(self):
        with pytest.raises(ValueError):
            amdahl_gate(self.make([1.0]), "f0", assumed_speedup=1.0)


class TestOnRealKernel:
    def test_profile_guides_to_the_inner_loop(self):
        from repro.kernels import matmul_loop, random_matrices

        a, b, c = random_matrices(24, seed=1)
        profile = profile_callable(lambda: matmul_loop(a, b, c, "ijk"))
        assert profile.fraction("matmul_loop") > 0.5
        speedup, worth = amdahl_gate(profile, "matmul_loop")
        assert worth


class TestCollapsedStacks:
    def test_real_profile_exports_caller_edges(self):
        profile = profile_callable(_workload, min_self_seconds=0.001)
        out = profile.collapsed_stacks()
        lines = out.splitlines()
        assert lines, "expected at least one collapsed-stack line"
        for line in lines:
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) > 0  # integer microseconds
        # the sleeps dominate and are credited to their caller frames
        assert any("sleep" in line and ";" in line for line in lines)

    def test_weights_preserve_self_time(self):
        profile = profile_callable(_workload, min_self_seconds=0.001)
        total_us = sum(int(line.rsplit(" ", 1)[1])
                       for line in profile.collapsed_stacks().splitlines())
        # collapsed weights are rounded self-times of the kept functions
        kept_us = sum(round(f.self_seconds * 1e6) for f in profile.functions)
        assert total_us == pytest.approx(kept_us, rel=0.01)

    def test_synthetic_caller_edges(self):
        f = FunctionCost(name="callee", calls=2, total_seconds=1.0,
                         self_seconds=0.3,
                         callers=(("caller_a", 0.2), ("caller_b", 0.1)))
        profile = Profile(total_seconds=1.0, functions=(f,))
        out = profile.collapsed_stacks()
        assert "caller_a;callee 200000" in out
        assert "caller_b;callee 100000" in out
