"""Tests for repro.distributed.network and collectives."""

import math

import pytest

from repro.distributed import (
    AlphaBeta,
    LogGP,
    LogP,
    allgather_ring,
    allreduce_recursive_doubling,
    allreduce_ring,
    alpha_beta_from_cluster,
    best_algorithm,
    broadcast_binomial,
    broadcast_linear,
    broadcast_scatter_allgather,
    reduce_binomial,
)
from repro.machine import das5_cluster


@pytest.fixture(scope="module")
def net():
    return AlphaBeta(alpha=2e-6, beta=5e9)


class TestAlphaBeta:
    def test_time_formula(self, net):
        assert net.time(5000) == pytest.approx(2e-6 + 1e-6)

    def test_half_performance_length(self, net):
        n_half = net.half_performance_length()
        assert net.effective_bandwidth(n_half) == pytest.approx(net.beta / 2)

    def test_effective_bandwidth_approaches_beta(self, net):
        assert net.effective_bandwidth(1 << 30) == pytest.approx(net.beta, rel=0.01)

    def test_from_cluster(self):
        c = das5_cluster(4)
        net = alpha_beta_from_cluster(c)
        assert net.alpha == c.link_latency_s
        assert net.beta == c.link_bandwidth_bytes_per_s

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AlphaBeta(-1e-6, 1e9)


class TestLogP:
    def test_point_to_point(self):
        model = LogP(latency=2e-6, overhead=5e-7, gap=1e-6, processors=8)
        assert model.point_to_point() == pytest.approx(3e-6)

    def test_message_rate(self):
        model = LogP(2e-6, 5e-7, 1e-6, 8)
        assert model.message_rate() == pytest.approx(1e6)

    def test_pipelined_messages(self):
        model = LogP(2e-6, 5e-7, 1e-6, 8)
        t1 = model.k_messages_pipelined(1)
        t10 = model.k_messages_pipelined(10)
        assert t10 == pytest.approx(t1 + 9 * 1e-6)

    def test_loggp_long_message(self):
        model = LogGP(2e-6, 5e-7, 1e-6, gap_per_byte=2e-10, processors=8)
        t = model.time(1_000_000)
        assert t == pytest.approx(5e-7 + (1e6 - 1) * 2e-10 + 2e-6 + 5e-7)

    def test_loggp_to_alpha_beta(self):
        model = LogGP(2e-6, 5e-7, 1e-6, 2e-10, 8)
        ab = model.as_alpha_beta()
        assert ab.alpha == pytest.approx(3e-6)
        assert ab.beta == pytest.approx(5e9)


class TestCollectives:
    def test_binomial_beats_linear_at_scale(self, net):
        m = 8192
        assert (broadcast_binomial(net, 64, m)
                < broadcast_linear(net, 64, m))

    def test_binomial_rounds(self, net):
        m = 1024
        assert broadcast_binomial(net, 32, m) == pytest.approx(5 * net.time(m))

    def test_scatter_allgather_wins_for_large_messages(self, net):
        p, m = 64, 1 << 24
        assert (broadcast_scatter_allgather(net, p, m)
                < broadcast_binomial(net, p, m))

    def test_binomial_wins_for_small_messages(self, net):
        p, m = 64, 64
        assert (broadcast_binomial(net, p, m)
                < broadcast_scatter_allgather(net, p, m))

    def test_allreduce_crossover(self, net):
        p = 32
        small_winner, _ = best_algorithm("allreduce", net, p, 128)
        large_winner, _ = best_algorithm("allreduce", net, p, 1 << 24)
        assert small_winner == "recursive-doubling"
        assert large_winner == "ring"

    def test_ring_allreduce_bandwidth_optimal(self, net):
        # ring's bandwidth term approaches 2m/beta, independent of p
        m = 1 << 26
        t64 = allreduce_ring(net, 64, m)
        bandwidth_term = 2 * (64 - 1) / 64 * m / net.beta
        assert t64 == pytest.approx(bandwidth_term + 2 * 63 * net.alpha, rel=1e-6)

    def test_single_process_collectives_free(self, net):
        assert broadcast_binomial(net, 1, 100) == 0.0
        assert allreduce_ring(net, 1, 100) == 0.0
        assert allgather_ring(net, 1, 100) == 0.0

    def test_reduce_compute_term(self, net):
        base = reduce_binomial(net, 8, 1024)
        with_compute = reduce_binomial(net, 8, 1024, compute_per_byte=1e-9)
        assert with_compute == pytest.approx(base + 3 * 1024 * 1e-9)

    def test_unknown_collective(self, net):
        with pytest.raises(KeyError):
            best_algorithm("alltoallw", net, 4, 100)
