"""Tests for repro.kernels.spmv."""

import numpy as np
import pytest

from repro.kernels import (
    banded_sparse,
    matrix_features,
    random_sparse,
    spmv_coo_numpy,
    spmv_coo_scalar,
    spmv_csc_numpy,
    spmv_csc_scalar,
    spmv_csr_numpy,
    spmv_csr_scalar,
    spmv_work,
)


@pytest.fixture(scope="module")
def coo():
    return random_sparse(60, density=0.06, seed=11)


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(5).random(coo.shape[1])


class TestFormats:
    def test_csr_roundtrip_dense(self, coo):
        assert np.allclose(coo.to_csr().to_dense(), coo.to_dense())

    def test_csc_roundtrip_dense(self, coo):
        assert np.allclose(coo.to_csc().to_dense(), coo.to_dense())

    def test_csr_to_coo_roundtrip(self, coo):
        back = coo.to_csr().to_coo()
        assert np.allclose(back.to_dense(), coo.to_dense())

    def test_csc_to_coo_roundtrip(self, coo):
        back = coo.to_csc().to_coo()
        assert np.allclose(back.to_dense(), coo.to_dense())

    def test_nnz_preserved(self, coo):
        assert coo.to_csr().nnz == coo.nnz == coo.to_csc().nnz

    def test_row_lengths_sum_to_nnz(self, coo):
        assert coo.to_csr().row_lengths().sum() == coo.nnz

    def test_matches_scipy(self, coo):
        import scipy.sparse as sp

        ours = coo.to_csr()
        ref = sp.coo_matrix((coo.vals, (coo.rows, coo.cols)), shape=coo.shape).tocsr()
        assert np.allclose(ours.to_dense(), ref.toarray())

    def test_out_of_range_index_rejected(self):
        from repro.kernels import COOMatrix

        with pytest.raises(ValueError):
            COOMatrix((2, 2), np.array([5]), np.array([0]), np.array([1.0]))


class TestSpMVVariants:
    @pytest.mark.parametrize("fn,fmt", [
        (spmv_csr_scalar, "csr"), (spmv_csr_numpy, "csr"),
        (spmv_csc_scalar, "csc"), (spmv_csc_numpy, "csc"),
        (spmv_coo_scalar, "coo"), (spmv_coo_numpy, "coo"),
    ])
    def test_matches_dense(self, coo, x, fn, fmt):
        m = {"csr": coo.to_csr(), "csc": coo.to_csc(), "coo": coo}[fmt]
        assert np.allclose(fn(m, x), coo.to_dense() @ x)

    def test_wrong_x_length_rejected(self, coo):
        with pytest.raises(ValueError):
            spmv_csr_scalar(coo.to_csr(), np.zeros(coo.shape[1] + 1))

    def test_empty_rows_produce_zeros(self):
        from repro.kernels import COOMatrix

        coo = COOMatrix((4, 4), np.array([0, 2]), np.array([1, 3]),
                        np.array([2.0, 3.0]))
        y = spmv_csr_numpy(coo.to_csr(), np.ones(4))
        assert np.allclose(y, [2.0, 0.0, 3.0, 0.0])


class TestGenerators:
    def test_random_sparse_density(self):
        coo = random_sparse(100, density=0.05, seed=3)
        assert coo.nnz == pytest.approx(500, rel=0.05)

    def test_random_sparse_no_duplicates(self):
        coo = random_sparse(50, density=0.1, seed=4)
        keys = set(zip(coo.rows.tolist(), coo.cols.tolist()))
        assert len(keys) == coo.nnz

    def test_banded_respects_bandwidth(self):
        coo = banded_sparse(40, bandwidth=3, seed=5)
        assert np.all(np.abs(coo.rows - coo.cols) <= 3)

    def test_banded_keeps_diagonal(self):
        coo = banded_sparse(20, bandwidth=2, fill=0.3, seed=6)
        dense = coo.to_dense()
        assert np.all(np.abs(np.diag(dense)) > 0)

    def test_banded_rejects_excess_bandwidth(self):
        with pytest.raises(ValueError):
            banded_sparse(10, bandwidth=10)


class TestFeaturesAndWork:
    def test_features_complete(self, coo):
        f = matrix_features(coo)
        for key in ("n_rows", "nnz", "density", "row_mean", "row_max",
                    "mean_bandwidth"):
            assert key in f

    def test_density_consistent(self, coo):
        f = matrix_features(coo)
        assert f["density"] == pytest.approx(coo.nnz / (60 * 60))

    def test_banded_has_smaller_bandwidth_feature(self):
        narrow = matrix_features(banded_sparse(50, 2, seed=1))
        wide = matrix_features(random_sparse(50, density=0.1, seed=1))
        assert narrow["mean_bandwidth"] < wide["mean_bandwidth"]

    def test_work_flops(self):
        w = spmv_work(10, 10, 30)
        assert w.flops == 60.0

    def test_work_scales_with_nnz_not_size(self):
        sparse = spmv_work(1000, 1000, 100)
        dense = spmv_work(10, 10, 100)
        assert sparse.flops == dense.flops
