"""Cross-cutting edge cases and failure injection.

Small contracts that the per-module suites don't pin down: operator
overloads, degenerate inputs, error messages carrying actionable context,
and cheap invariants across module boundaries.
"""

import numpy as np
import pytest

from repro.simulator import CacheStats, Trace
from repro.timing import Summary, WorkCount, summarize


class TestCacheStats:
    def test_addition(self):
        a = CacheStats(10, 7, 3, 2, 1, 5)
        b = CacheStats(1, 1, 0, 0, 0, 0)
        c = a + b
        assert (c.accesses, c.hits, c.misses) == (11, 8, 3)
        assert c.prefetches == 5

    def test_ratios_on_empty(self):
        empty = CacheStats()
        assert empty.miss_ratio == 0.0
        assert empty.hit_ratio == 0.0

    def test_addition_type_guard(self):
        with pytest.raises(TypeError):
            CacheStats() + 5


class TestTraceEdges:
    def test_empty_trace_allowed(self):
        t = Trace(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
        assert len(t) == 0 and t.n_reads == 0

    def test_concat_preserves_order(self):
        a = Trace(np.array([1, 2], dtype=np.int64), np.zeros(2, bool), "a")
        b = Trace(np.array([3], dtype=np.int64), np.ones(1, bool), "b")
        c = a.concat(b)
        assert c.addresses.tolist() == [1, 2, 3]
        assert "a" in c.label and "b" in c.label

    def test_footprint_rejects_bad_line(self):
        t = Trace(np.array([0], dtype=np.int64), np.array([False]))
        with pytest.raises(ValueError):
            t.footprint_bytes(0)


class TestErrorMessagesCarryContext:
    def test_registry_lists_known_variants(self):
        from repro.kernels import REGISTRY

        with pytest.raises(KeyError) as err:
            REGISTRY.get("matmul", "quantum")
        assert "matmul" in str(err.value)

    def test_counter_session_names_unknown_events(self, cpu, table):
        from repro.counters import CounterSession

        with pytest.raises(KeyError) as err:
            CounterSession(cpu, table, ["PAPI_BOGUS"])
        assert "PAPI_BOGUS" in str(err.value)

    def test_deadlock_error_names_blocked_ranks(self):
        from repro.distributed import AlphaBeta, DeadlockError, MPISimulator

        def program(rank):
            yield rank.recv((rank.rank + 1) % rank.size)

        with pytest.raises(DeadlockError) as err:
            MPISimulator(3, AlphaBeta(1e-6, 1e9)).run(program)
        assert "0" in str(err.value) and "recv" in str(err.value)

    def test_cache_lookup_error_names_machine(self, cpu):
        with pytest.raises(KeyError) as err:
            cpu.cache("L7")
        assert "L7" in str(err.value)


class TestSummaryAndWork:
    def test_summary_single_sample(self):
        s = summarize([5.0])
        assert s.mean == s.median == s.min == s.max == 5.0
        assert s.std == 0.0 and s.n_outliers == 0

    def test_workcount_radd_not_supported_silently(self):
        w = WorkCount(flops=1.0)
        with pytest.raises(TypeError):
            _ = w + 5

    def test_summary_is_frozen(self):
        s = summarize([1.0, 2.0])
        with pytest.raises(AttributeError):
            s.mean = 3.0


class TestDeterminism:
    """Seeded components must replay exactly — the property every
    reproducible benchmark in this repo leans on."""

    def test_simulated_counters_replay(self, cpu, table):
        from repro.counters import CounterSession
        from repro.simulator import stream_trace, triad_body

        def run():
            session = CounterSession(cpu, table)
            n = 2000
            return session.count(stream_trace(n, "copy"), triad_body(), n).values

        assert run() == run()

    def test_workload_generators_replay(self):
        from repro.kernels import random_keys, random_sparse

        a = random_sparse(30, density=0.1, seed=9)
        b = random_sparse(30, density=0.1, seed=9)
        assert np.array_equal(a.vals, b.vals)
        assert np.array_equal(random_keys(100, 8, seed=3),
                              random_keys(100, 8, seed=3))

    def test_mpi_simulation_replays(self):
        from repro.distributed import AlphaBeta, MPISimulator, bsp_iterations

        net = AlphaBeta(1e-6, 1e9)
        a = MPISimulator(4, net).run(bsp_iterations(3, 1e-3, 100)).makespan
        b = MPISimulator(4, net).run(bsp_iterations(3, 1e-3, 100)).makespan
        assert a == b


class TestWorkModelsMatchImplementations:
    """Work models must count what the code actually does."""

    def test_stream_triad_flops(self):
        from repro.kernels import stream_arrays, stream_triad, triad_work

        n = 64
        a, b, c = stream_arrays(n, seed=0)
        expected = b + 3.0 * c
        stream_triad(a, b, c)
        assert np.allclose(a, expected)
        assert triad_work(n).flops == 2 * n  # one mul + one add per element

    def test_matmul_flops_vs_numpy_result_size(self):
        from repro.kernels import matmul_work

        w = matmul_work(3, m=5, k=7)
        assert w.flops == 2 * 3 * 5 * 7
        assert w.stores_bytes == 8 * 3 * 5

    def test_spmv_work_independent_of_format(self):
        from repro.kernels import random_sparse, spmv_work

        coo = random_sparse(40, density=0.1, seed=2)
        w1 = spmv_work(*coo.shape, coo.nnz)
        w2 = spmv_work(*coo.shape, coo.to_csr().nnz)
        assert w1.flops == w2.flops
