"""Tests for repro.analytical.laws and calibration."""

import pytest

from repro.analytical import (
    amdahl_limit,
    amdahl_speedup,
    amdahl_with_overhead,
    calibrate_loop_term,
    fit_linear_cost,
    fit_power_law,
    fit_serial_fraction,
    gustafson_speedup,
    optimal_workers_with_overhead,
    speedup_curve,
)


class TestAmdahl:
    def test_single_worker_is_unity(self):
        assert amdahl_speedup(0.2, 1) == pytest.approx(1.0)

    def test_limit(self):
        assert amdahl_limit(0.05) == pytest.approx(20.0)
        assert amdahl_limit(0.0) == float("inf")

    def test_monotone_in_workers(self):
        s = [amdahl_speedup(0.1, p) for p in (1, 2, 4, 8, 16)]
        assert s == sorted(s)

    def test_bounded_by_limit(self):
        assert amdahl_speedup(0.1, 10_000) < amdahl_limit(0.1)

    def test_fully_parallel_is_linear(self):
        assert amdahl_speedup(0.0, 64) == pytest.approx(64.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            amdahl_speedup(1.5, 4)


class TestGustafson:
    def test_exceeds_amdahl_for_same_fraction(self):
        s = 0.1
        assert gustafson_speedup(s, 64) > amdahl_speedup(s, 64)

    def test_linear_when_fully_parallel(self):
        assert gustafson_speedup(0.0, 32) == 32.0

    def test_serial_only_is_unity(self):
        assert gustafson_speedup(1.0, 32) == 1.0


class TestOverheadModel:
    def test_curve_turns_over(self):
        curve = speedup_curve(0.05, 64, overhead_fraction_per_worker=0.003)
        best = max(curve, key=curve.get)
        assert 1 < best < 64
        assert curve[64] < curve[best]

    def test_analytic_optimum_matches_curve(self):
        s, k = 0.05, 0.003
        predicted = optimal_workers_with_overhead(s, k)
        curve = speedup_curve(s, 64, k)
        best = max(curve, key=curve.get)
        assert abs(best - predicted) <= 2

    def test_no_overhead_reduces_to_amdahl(self):
        assert amdahl_with_overhead(0.2, 8, 0.0) == pytest.approx(
            amdahl_speedup(0.2, 8))


class TestSerialFractionFit:
    def test_recovers_exact_amdahl(self):
        s = 0.07
        data = {p: amdahl_speedup(s, p) for p in (2, 4, 8, 16, 32)}
        assert fit_serial_fraction(data) == pytest.approx(s, abs=1e-9)

    def test_clamped_to_unit_interval(self):
        # superlinear measurements would imply negative s; clamp to 0
        assert fit_serial_fraction({2: 3.0, 4: 6.0}) == 0.0

    def test_needs_multiworker_point(self):
        with pytest.raises(ValueError):
            fit_serial_fraction({1: 1.0})


class TestFits:
    def test_linear_fit_recovers_parameters(self):
        sizes = [10, 20, 40, 80]
        times = [1e-3 + n * 2e-6 for n in sizes]
        fit = fit_linear_cost(sizes, times)
        assert fit.overhead == pytest.approx(1e-3, rel=0.01)
        assert fit.cost_per_item == pytest.approx(2e-6, rel=0.01)
        assert fit.r_squared > 0.999

    def test_linear_fit_clamps_negative(self):
        fit = fit_linear_cost([1, 2, 3], [3e-3, 2e-3, 1e-3])
        assert fit.cost_per_item == 0.0

    def test_power_law_recovers_exponent(self):
        sizes = [16, 32, 64, 128]
        times = [1e-9 * n ** 3 for n in sizes]
        fit = fit_power_law(sizes, times)
        assert fit.exponent == pytest.approx(3.0, abs=1e-6)
        assert fit.predict(256) == pytest.approx(1e-9 * 256 ** 3, rel=1e-6)

    def test_power_law_linear_kernel(self):
        fit = fit_power_law([100, 200, 400], [1e-6 * n for n in (100, 200, 400)])
        assert fit.exponent == pytest.approx(1.0, abs=1e-6)

    def test_calibrate_loop_term_measures(self):
        import time

        # sleeps must be well above the OS timer granularity (~1 ms)
        term = calibrate_loop_term(
            "sleepy", lambda n: time.sleep(n * 2e-3),
            sizes=[2, 6, 12], repetitions=1, trip_count=100)
        assert term.seconds_per_iteration == pytest.approx(2e-3, rel=0.5)
        assert term.trip_count == 100

    def test_fit_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_linear_cost([1], [1.0])
