"""Documentation validity: the README's code must actually run."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _python_blocks(markdown: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", markdown, flags=re.DOTALL)


class TestReadme:
    def test_exists_and_names_the_paper(self):
        text = (ROOT / "README.md").read_text()
        # the title is line-wrapped in the README; check it word-wise
        squashed = " ".join(text.split())
        assert "Performance Engineering for Graduate Students" in squashed
        assert "10.1145/3624062.3624102" in text

    def test_quickstart_block_executes(self, capsys):
        text = (ROOT / "README.md").read_text()
        blocks = _python_blocks(text)
        assert blocks, "README has no python examples"
        for block in blocks:
            exec(compile(block, "<README>", "exec"), {})  # noqa: S102

    def test_every_example_listed_exists(self):
        text = (ROOT / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", text):
            assert (ROOT / "examples" / name).exists(), name


class TestDesignAndExperiments:
    def test_design_paper_check_present(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Paper check" in text

    def test_design_maps_every_bench_that_exists(self):
        """Every bench module mentioned in DESIGN.md must exist, and every
        bench module on disk must be mentioned somewhere in the docs."""
        design = (ROOT / "DESIGN.md").read_text()
        mentioned = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design))
        on_disk = {p.name for p in (ROOT / "benchmarks").glob("test_bench_*.py")}
        for name in mentioned:
            assert name in on_disk, f"DESIGN.md references missing {name}"
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        undocumented = {
            name for name in on_disk
            if name not in design and name.replace("test_bench_", "")
            .replace(".py", "") not in (design + experiments).lower()
        }
        assert not undocumented, f"undocumented benches: {undocumented}"

    def test_experiments_records_exact_artifacts(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for claim in ("146", "93", "41", "exact", "reconstructed"):
            assert claim in text


class TestPublicApiDocumented:
    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_package_defines_all(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if not info.ispkg:
                continue
            module = importlib.import_module(info.name)
            if not getattr(module, "__all__", None):
                missing.append(info.name)
        assert not missing, f"packages without __all__: {missing}"

    def test_exported_names_resolve(self):
        """Everything in a package's __all__ must actually exist."""
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            for name in getattr(module, "__all__", []) or []:
                assert hasattr(module, name), f"{info.name}.{name} missing"
