"""Tests for repro.distributed.scaling."""

import pytest

from repro.distributed import (
    AlphaBeta,
    isoefficiency_size,
    matvec_scaling_model,
    stencil_scaling_model,
    strong_scaling,
    weak_scaling,
)


@pytest.fixture(scope="module")
def net():
    return AlphaBeta(alpha=2e-6, beta=6e9)


class TestStrongScaling:
    def test_matvec_peaks_then_degrades(self, net):
        model = matvec_scaling_model(4096, net, seconds_per_flop=2e-11)
        curve = strong_scaling(model, [1, 2, 4, 8, 16, 32, 64, 128])
        values = list(curve.values())
        peak_idx = values.index(max(values))
        assert 0 < peak_idx < len(values) - 1  # interior maximum
        assert curve[1] == pytest.approx(1.0)

    def test_bigger_problem_scales_further(self, net):
        small = matvec_scaling_model(1024, net, 2e-11)
        large = matvec_scaling_model(16384, net, 2e-11)
        assert large.speedup(64) > small.speedup(64)

    def test_efficiency_decreases(self, net):
        model = stencil_scaling_model(2048, net, seconds_per_point=5e-9)
        assert model.efficiency(2) > model.efficiency(16)


class TestWeakScaling:
    def test_stencil_weak_scaling_near_flat(self, net):
        # weak scaling for a 2-D stencil grows the *area* with p, i.e. the
        # edge with sqrt(p); per-rank compute then stays constant and only
        # the (small) halo cost grows
        def factory(total_points):
            edge = int(round(total_points ** 0.5))
            return stencil_scaling_model(edge, net, seconds_per_point=5e-9,
                                         iterations=10)

        eff = weak_scaling(factory, base_size=1024 * 1024, processes=[1, 4, 16])
        assert eff[1] == pytest.approx(1.0)
        assert eff[16] > 0.8

    def test_invalid_base(self, net):
        with pytest.raises(ValueError):
            weak_scaling(lambda n: stencil_scaling_model(n, net, 1e-9), 0, [1])


class TestIsoefficiency:
    def test_larger_p_needs_larger_problem(self, net):
        def factory(n):
            return matvec_scaling_model(n, net, 2e-11)

        n8 = isoefficiency_size(factory, 8, target_efficiency=0.7)
        n32 = isoefficiency_size(factory, 32, target_efficiency=0.7)
        assert n32 > n8

    def test_returned_size_meets_target(self, net):
        def factory(n):
            return matvec_scaling_model(n, net, 2e-11)

        n = isoefficiency_size(factory, 16, target_efficiency=0.7)
        assert factory(n).efficiency(16) >= 0.7

    def test_unreachable_target_raises(self, net):
        # constant communication per process regardless of n -> isoefficient,
        # so build a pathological model where comm grows with n faster than compute
        from repro.distributed import ScalingModel

        def factory(n):
            return ScalingModel("bad", lambda p: n / p * 1e-9,
                                lambda p: n * 1e-7 if p > 1 else 0.0)

        with pytest.raises(ValueError):
            isoefficiency_size(factory, 4, target_efficiency=0.9,
                               max_size=1 << 20)
