"""Tests for histogram, stream, stencil, game-of-life kernels + registry."""

import numpy as np
import pytest

from repro.kernels import (
    REGISTRY,
    add_work,
    copy_work,
    glider_board,
    histogram_numpy,
    histogram_privatized,
    histogram_scalar,
    histogram_sorted,
    histogram_work,
    init_grid,
    jacobi_solve,
    jacobi_step_blocked,
    jacobi_step_inplace,
    jacobi_step_numpy,
    jacobi_step_scalar,
    life_step_convolve,
    life_step_numpy,
    life_step_scalar,
    random_board,
    random_keys,
    run_life,
    scale_work,
    stencil_work,
    stream_add,
    stream_arrays,
    stream_copy,
    stream_scale,
    stream_triad,
    triad_work,
)


class TestHistogram:
    @pytest.mark.parametrize("dist", ["uniform", "zipf", "sorted"])
    def test_variants_agree(self, dist):
        keys = random_keys(500, 16, seed=3, distribution=dist)
        ref = histogram_scalar(keys, 16)
        assert np.array_equal(histogram_numpy(keys, 16), ref)
        assert np.array_equal(histogram_privatized(keys, 16, chunks=3), ref)
        assert np.array_equal(histogram_sorted(keys, 16), ref)

    def test_counts_sum_to_n(self):
        keys = random_keys(1000, 8, seed=1)
        assert histogram_numpy(keys, 8).sum() == 1000

    def test_zipf_concentrates(self):
        uz = histogram_numpy(random_keys(5000, 64, seed=2, distribution="zipf"), 64)
        uu = histogram_numpy(random_keys(5000, 64, seed=2, distribution="uniform"), 64)
        assert uz.max() > 2 * uu.max()

    def test_out_of_range_key_rejected(self):
        with pytest.raises(ValueError):
            histogram_scalar(np.array([5], dtype=np.int64), 3)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            random_keys(10, 4, distribution="gaussian")

    def test_work_has_no_flops(self):
        assert histogram_work(100, 10).flops == 0.0


class TestStream:
    def test_kernels_compute_correctly(self):
        a, b, c = stream_arrays(100, seed=2)
        stream_copy(a, c)
        assert np.array_equal(c, a)
        stream_scale(c, b, 3.0)
        assert np.allclose(b, 3.0 * c)
        a2 = a.copy()
        stream_add(a, b, c)
        assert np.allclose(c, a + b)
        stream_triad(a, b, c, 2.0)
        assert np.allclose(a, b + 2.0 * c)
        assert not np.array_equal(a, a2)

    def test_no_allocation(self):
        a, b, c = stream_arrays(64)
        out = stream_triad(a, b, c)
        assert out is a  # strictly in place

    def test_work_accounting_matches_stream_convention(self):
        n = 1000
        assert copy_work(n).bytes_total == 16 * n
        assert scale_work(n).bytes_total == 16 * n
        assert add_work(n).bytes_total == 24 * n
        assert triad_work(n).bytes_total == 24 * n
        assert triad_work(n).flops == 2 * n

    def test_size_mismatch_rejected(self):
        a, b, c = stream_arrays(10)
        with pytest.raises(ValueError):
            stream_add(a, b, np.zeros(11))


class TestStencil:
    def test_variants_agree(self):
        g = init_grid(12, 15)
        outs = []
        for step in (jacobi_step_scalar, jacobi_step_numpy,
                     jacobi_step_inplace,
                     lambda s, d: jacobi_step_blocked(s, d, tile=4)):
            d = np.empty_like(g)
            outs.append(step(g, d).copy())
        for other in outs[1:]:
            assert np.allclose(outs[0], other)

    def test_boundary_preserved(self):
        g = init_grid(8, hot_edge=50.0)
        d = np.empty_like(g)
        jacobi_step_numpy(g, d)
        assert np.all(d[0, :] == 50.0)
        assert np.all(d[-1, :] == 0.0)

    def test_src_dst_must_differ(self):
        g = init_grid(8)
        with pytest.raises(ValueError):
            jacobi_step_numpy(g, g)

    def test_solve_converges(self):
        grid, iters = jacobi_solve(init_grid(16), tol=1e-3, max_iters=5000)
        assert iters < 5000
        # steady state: interior strictly between boundary extremes
        assert grid[1:-1, 1:-1].max() < 100.0
        assert grid[1, 1] > 0.0

    def test_solve_iteration_count_independent_of_variant(self):
        g = init_grid(12)
        _, it1 = jacobi_solve(g, tol=1e-3, step=jacobi_step_numpy)
        _, it2 = jacobi_solve(g, tol=1e-3, step=jacobi_step_inplace)
        assert it1 == it2

    def test_work_counts_interior_only(self):
        w = stencil_work(10, 10)
        assert w.flops == 5 * 64


class TestGameOfLife:
    def test_variants_agree_on_random_board(self):
        b = random_board(20, seed=9)
        ref = life_step_scalar(b)
        assert np.array_equal(life_step_numpy(b), ref)
        assert np.array_equal(life_step_convolve(b), ref)

    def test_glider_translates(self):
        b = glider_board(12)
        after = run_life(b, 4)  # glider shifts by (1, 1) every 4 generations
        assert np.array_equal(after[1:, 1:], b[:-1, :-1])
        assert after.sum() == b.sum() == 5

    def test_still_life_block(self):
        b = np.zeros((6, 6), dtype=np.uint8)
        b[2:4, 2:4] = 1
        assert np.array_equal(life_step_numpy(b), b)

    def test_blinker_oscillates(self):
        b = np.zeros((5, 5), dtype=np.uint8)
        b[2, 1:4] = 1
        one = life_step_numpy(b)
        assert np.array_equal(one, one.T * 0 + one)  # sanity
        assert np.array_equal(life_step_numpy(one), b)

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            life_step_numpy(np.zeros((4, 4), dtype=float))

    def test_rejects_non_binary(self):
        board = np.full((4, 4), 2, dtype=np.uint8)
        with pytest.raises(ValueError):
            life_step_numpy(board)


class TestRegistry:
    def test_all_families_registered(self):
        assert set(REGISTRY.kernels()) == {
            "matmul", "histogram", "spmv", "stream", "stencil",
            "gameoflife", "fft"}

    def test_variant_lookup(self):
        v = REGISTRY.get("matmul", "tiled")
        assert v.technique == "tiling"
        assert callable(v.fn) and callable(v.work)

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            REGISTRY.get("matmul", "quantum")

    def test_every_family_has_baseline_and_optimized(self):
        for family in REGISTRY.kernels():
            variants = REGISTRY.variants_of(family)
            techniques = {v.technique for v in variants}
            assert len(variants) >= 2
            if family == "stream":
                # STREAM's four kernels are peers, not an optimization ladder
                continue
            assert any(t != "baseline" for t in techniques)

    def test_work_model_callable_consistency(self):
        v = REGISTRY.get("stream", "triad")
        a, b, c = stream_arrays(10)
        assert v.work(a, b, c).flops == 20
