"""CLI: ``python -m repro.analyze`` subcommands, output modes, exit codes."""

import json

import numpy as np
import pytest

import repro.kernels
from repro.analyze.__main__ import main
from repro.kernels.base import KernelRegistry, KernelVariant
from repro.timing.metrics import WorkCount
from tests.test_analyze_hazards import racy_variant_fn


def _work(n):
    return WorkCount(flops=float(n), loads_bytes=8.0 * n, stores_bytes=8.0 * n)


@pytest.fixture
def racy_registry(monkeypatch):
    """Swap the global registry for one containing an injected racy worker."""
    reg = KernelRegistry()
    reg.add(KernelVariant(kernel="fixture", name="racy",
                          fn=racy_variant_fn, work=_work))
    monkeypatch.setattr(repro.kernels, "REGISTRY", reg)
    return reg


class TestExitCodes:
    @pytest.mark.parametrize("pass_name", ["lint", "workcount", "dataflow",
                                           "crosscheck", "hazards", "all"])
    def test_shipped_registry_gates_clean(self, pass_name, capsys):
        assert main([pass_name]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    @pytest.mark.parametrize("pass_name", ["dataflow", "crosscheck"])
    def test_strict_dataflow_gate_passes(self, pass_name):
        # the CI dataflow-gate contract: no unsuppressed warnings either
        assert main([pass_name, "--check"]) == 0

    def test_injected_racy_worker_fails_gate(self, racy_registry, capsys):
        assert main(["hazards"]) == 1
        out = capsys.readouterr().out
        assert "H002" in out and "unprivatized-accumulation" in out

    def test_all_includes_hazard_errors(self, racy_registry):
        assert main(["all"]) == 1


class TestOptions:
    def test_kernel_filter(self, capsys):
        assert main(["lint", "--kernel", "stencil", "--show-expected"]) == 0
        out = capsys.readouterr().out
        assert "stencil." in out
        assert "matmul." not in out

    def test_json_output_is_parseable(self, capsys):
        main(["all", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert set(payload["counts"]) == {"error", "warning", "info", "expected"}

    @pytest.mark.parametrize("pass_name", ["lint", "dataflow", "all"])
    def test_json_schema_version_is_stable(self, pass_name, capsys):
        # downstream consumers key on this; bumping it is an API change
        main([pass_name, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1

    def test_expected_hidden_by_default(self, capsys):
        main(["lint"])
        out = capsys.readouterr().out
        assert "EXPECTED" not in out
        assert "--show-expected" in out  # the hint that some are hidden

    def test_show_expected_lists_them(self, capsys):
        main(["lint", "--show-expected"])
        assert "EXPECTED" in capsys.readouterr().out

    def test_unknown_pass_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_unknown_kernel_errors(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--kernel", "nope"])
        assert exc.value.code == 2
