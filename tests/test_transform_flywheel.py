"""Tests for repro.transform.flywheel and the CLI.

The measured tests run under REPRO_BENCH_SMOKE sizing against a fresh
registry holding only the variants under test, so they stay fast and
never pollute the global registry.  CLI tests call ``main(argv)``
in-process and check exit codes — the same contract the CI
transform-gate job relies on.
"""

import numpy as np
import pytest

from repro.kernels import REGISTRY
from repro.kernels.base import KernelRegistry
from repro.perfdb.store import PerfStore
from repro.transform import FlywheelEntry, FlywheelReport, run_flywheel
from repro.transform.__main__ import main
from repro.transform.synth import TransformReport


def _registry(*qualified) -> KernelRegistry:
    fresh = KernelRegistry()
    for q in qualified:
        kernel, _, name = q.partition(".")
        fresh.add(REGISTRY.get(kernel, name))
    return fresh


class TestRunFlywheel:
    def test_verify_only_sweep(self):
        registry = _registry("stream.triad_scalar", "spmv.csr_scalar")
        report = run_flywheel(registry=registry, measure=False)
        assert len(report.verified) == 1
        assert not report.failures
        assert report.ok(require_speedup=False)
        assert not report.measured
        # the refused CSR reduction is reported, not silently skipped
        assert any("reassociate" in str(r)
                   for e in report.entries for r in e.report.refusals)
        assert "stream.triad_scalar.auto_l001" in registry

    def test_measured_speedup_is_gated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SMOKE", "1")
        registry = _registry("stream.triad_scalar")
        store = PerfStore(tmp_path / "perfdb")
        report = run_flywheel(registry=registry, store=store,
                              max_repetitions=10, rel_ci=0.2)
        assert report.ok()
        [entry] = report.gated_speedups
        assert entry.speedup > 1.0
        assert entry.ratio_ci[1] < 1.0
        assert len(entry.times["original"]) >= 5
        assert len(entry.times["auto"]) >= 5
        # raw times landed in the perfdb store under transform/<name>
        assert len(report.run_ids) == 1
        records = store.runs()
        names = {n for r in records for n in r.benchmarks}
        assert "transform/stream.triad_scalar.auto_l001" in names
        assert "transform/stream.triad_scalar.auto_l001/original" in names

    def test_kernel_filter(self):
        registry = _registry("stream.triad_scalar", "spmv.csr_scalar")
        report = run_flywheel(["spmv"], registry=registry, measure=False)
        assert all(e.report.variant.startswith("spmv.")
                   for e in report.entries)
        assert not report.verified


class TestReportGate:
    def _entry(self, **over):
        tr = TransformReport(variant="k.v", rule="L001", **over)
        return FlywheelEntry(report=tr)

    def test_failure_fails_gate(self):
        report = FlywheelReport(entries=[self._entry(
            rewrites=("r",), error="equivalence failed")])
        assert report.failures and not report.ok()

    def test_no_verified_fails_gate(self):
        report = FlywheelReport(entries=[self._entry()])  # refusal only
        assert not report.ok()

    def test_unmeasured_verified_passes_without_speedup(self):
        report = FlywheelReport(entries=[self._entry(
            rewrites=("r",), equivalence={"equivalent": True})])
        assert report.ok()

    def test_measured_without_gated_speedup_fails(self):
        entry = self._entry(rewrites=("r",),
                            equivalence={"equivalent": True})
        entry.times = {"original": [1.0], "auto": [1.0]}
        entry.significant = False
        report = FlywheelReport(entries=[entry])
        assert not report.ok()
        assert report.ok(require_speedup=False)


class TestCli:
    def test_list(self, capsys):
        assert main(["list", "--kernel", "stream"]) == 0
        out = capsys.readouterr().out
        assert "stream.triad_scalar" in out and "L001" in out

    def test_apply_registers_into_global_registry(self, capsys):
        assert main(["apply", "stencil.scalar", "l001"]) == 0
        out = capsys.readouterr().out
        assert "stencil.scalar.auto_l001" in out
        assert "stencil.scalar.auto_l001" in REGISTRY

    def test_apply_unknown_variant_exits_2(self, capsys):
        assert main(["apply", "stencil.nope", "L001"]) == 2

    def test_flywheel_check_passes_on_stream(self, capsys):
        code = main(["flywheel", "--kernel", "stream", "--no-measure",
                     "--check"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "verified rewrite" in out

    def test_flywheel_check_fails_without_rewrites(self, capsys):
        # every spmv scalar loop is refused: no verified rewrite -> exit 1
        assert main(["flywheel", "--kernel", "spmv", "--no-measure",
                     "--check"]) == 1

    def test_flywheel_json(self, capsys):
        import json
        assert main(["flywheel", "--kernel", "spmv", "--no-measure",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["candidates"] >= 3 and doc["verified"] == []
        assert any("reassociate" in r for r in doc["refusals"])


class TestDataflowOnAutoVariants:
    """The dataflow tier runs over synthesized sources (linecache-backed)."""

    def _auto(self):
        from repro.transform.synth import apply_rule
        registry = _registry("stream.triad_scalar")
        report = apply_rule(REGISTRY.get("stream", "triad_scalar"), "L001",
                            registry=registry)
        assert report.registered and report.error is None
        return registry.get("stream", "triad_scalar.auto_l001")

    def test_findings_carry_spans_into_the_synthesized_source(self):
        import linecache

        from repro.analyze.dataflow import dataflow_variant

        auto = self._auto()
        lines = linecache.getlines(f"<repro.transform:{auto.qualified_name}>")
        assert lines  # synth seeded linecache for this filename
        findings = [f for f in dataflow_variant(auto) if f.lineno]
        l7 = [f for f in findings if f.rule == "L007"]
        assert l7, "vectorized triad allocates a temp chain: L007 must fire"
        for f in findings:
            # every span must resolve inside the synthesized source...
            assert 1 <= f.lineno <= len(lines)
            assert f.end_lineno >= f.lineno
            assert f.col >= 0
        # ...and L007 must point at the statement that chains the temps
        assert "a[0:n] = b[0:n]" in lines[l7[0].lineno - 1]

    def test_lint_spans_agree_with_dataflow_filename(self):
        import linecache

        from repro.analyze.lint import lint_variant

        auto = self._auto()
        lines = linecache.getlines(f"<repro.transform:{auto.qualified_name}>")
        for f in lint_variant(auto):
            if f.lineno:
                assert 1 <= f.lineno <= len(lines)

    def test_dtype_facts_gate_the_rewrite(self):
        from repro.analyze.dataflow import check_transform_facts

        auto = self._auto()
        original = REGISTRY.get("stream", "triad_scalar")
        # same kernel, same probes: the rewrite preserved dtype and shape
        assert check_transform_facts(original, auto) == []
