"""Tests for repro.transform synthesis and equivalence verification.

The semantics-preservation property: original and auto variant must agree
**bit for bit** on fixed-seed probes across shapes and dtypes (float32
included), for the returned value and every mutated operand.  Plus the
metadata hygiene: stale lint_expect dropped (no L000 noise), inherited
workcount_expect demoted when the rewrite makes the source countable.
"""

import inspect

import numpy as np
import pytest

from repro.analyze.lint import lint_variant
from repro.analyze.workcount import verify_variant
from repro.kernels import REGISTRY
from repro.kernels.base import KernelRegistry, KernelVariant
from repro.transform import (
    AUTO_TECHNIQUE,
    apply_rule,
    bit_equal,
    check_equivalence,
    equivalence_probes,
)


def _apply(qualified: str, rule: str, registry=None):
    kernel, _, name = qualified.partition(".")
    return apply_rule(REGISTRY.get(kernel, name), rule,
                      registry=registry if registry is not None
                      else KernelRegistry())


class TestBitEqual:
    def test_dtype_mismatch_is_unequal(self):
        a = np.ones(4, dtype=np.float64)
        assert not bit_equal(a, a.astype(np.float32))

    def test_exact_bytes_required(self):
        a = np.array([0.1 + 0.2])
        b = np.array([0.3])
        assert not bit_equal(a, b)  # allclose would accept this
        assert bit_equal(a, a.copy())


class TestEquivalence:
    @pytest.mark.parametrize("qualified,rule", [
        ("stream.triad_scalar", "L001"),
        ("stencil.scalar", "L001"),
        ("matmul.tiled", "L001"),
        ("matmul.dot", "L005"),
    ])
    def test_rewrites_are_bit_exact(self, qualified, rule):
        report = _apply(qualified, rule)
        assert report.registered, report.summary()
        assert report.equivalence["equivalent"]
        assert report.equivalence["cases"] >= 3  # dtypes x shapes (x configs)

    def test_probes_cover_float32(self):
        probes = equivalence_probes(REGISTRY.get("stream", "triad_scalar"))
        dtypes = {x.dtype for _, build in probes for x in build()
                  if isinstance(x, np.ndarray)}
        assert np.dtype(np.float32) in dtypes

    def test_detects_injected_bad_rewrite(self):
        orig = REGISTRY.get("stream", "triad_scalar")

        def wrong(a, b, c, s=3.0):
            a[:] = b + (s + 1e-9) * c  # off by one ulp-ish scale
            return a

        bad = KernelVariant(kernel="stream", name="triad_scalar.bad",
                            fn=wrong, work=orig.work,
                            technique=AUTO_TECHNIQUE)
        verdict = check_equivalence(orig, bad)
        assert not verdict["equivalent"]
        assert verdict["failures"]

    def test_no_probes_means_not_equivalent(self):
        orig = REGISTRY.get("stream", "triad_scalar")
        verdict = check_equivalence(orig, orig, probes=[])
        assert not verdict["equivalent"]

    def test_tunable_low_bound_exercised(self):
        # matmul.tiled: default tile plus the low bound (remainder paths)
        report = _apply("matmul.tiled", "L001")
        n_probes = len(equivalence_probes(REGISTRY.get("matmul", "tiled")))
        assert report.equivalence["cases"] > n_probes


class TestMetadataHygiene:
    def test_stale_lint_expect_dropped(self):
        report = _apply("stream.triad_scalar", "L001")
        assert "scalar-loop" in report.dropped_expects
        registry = KernelRegistry()
        report = _apply("stream.triad_scalar", "L001", registry=registry)
        auto = registry.get("stream", "triad_scalar.auto_l001")
        assert "lint_expect" not in auto.metadata
        # the satellite-3 property: no L000 stale-expect noise on the auto
        assert not [f for f in lint_variant(auto) if f.rule == "L000"]

    def test_workcount_expect_demoted_for_dot(self):
        registry = KernelRegistry()
        report = _apply("matmul.dot", "L005", registry=registry)
        assert report.dropped_workcount_expect
        auto = registry.get("matmul", "dot.auto_l005")
        assert "workcount_expect" not in auto.metadata
        # the @ operator is countable: the shadow interpreter now agrees
        assert not [f for f in verify_variant(auto) if f.gating]

    def test_provenance_metadata(self):
        registry = KernelRegistry()
        _apply("stencil.scalar", "L001", registry=registry)
        auto = registry.get("stencil", "scalar.auto_l001")
        assert auto.metadata["auto_from"] == "stencil.scalar"
        assert auto.metadata["auto_rule"] == "L001"
        assert auto.technique == AUTO_TECHNIQUE

    def test_synthesized_source_is_reinspectable(self):
        registry = KernelRegistry()
        _apply("stream.triad_scalar", "L001", registry=registry)
        auto = registry.get("stream", "triad_scalar.auto_l001")
        src = inspect.getsource(auto.fn)  # linecache-seeded synthetic file
        assert "a[0:n] = b[0:n] + s * c[0:n]" in src


class TestApplyRule:
    def test_unprovable_loop_left_untouched(self):
        # satellite-4 refusal property: the CSR reduction is NOT rewritten
        # and the report says why
        report = _apply("spmv.csr_scalar", "L001")
        assert not report.changed and not report.registered
        assert any("reassociate" in r.reason for r in report.refusals)

    def test_no_rewrite_registers_nothing(self):
        registry = KernelRegistry()
        _apply("spmv.csr_scalar", "L001", registry=registry)
        assert len(registry.kernels()) == 0

    def test_already_registered_is_reported(self):
        registry = KernelRegistry()
        first = _apply("matmul.dot", "L005", registry=registry)
        assert first.registered
        second = _apply("matmul.dot", "L005", registry=registry)
        assert second.already_registered and not second.registered

    def test_closure_refused(self):
        orig = REGISTRY.get("stream", "triad_scalar")

        def make(scale):
            def closed(a, b, c, s=3.0):
                for i in range(len(a)):
                    a[i] = b[i] + scale * c[i]
                return a
            return closed

        closed = KernelVariant(kernel="stream", name="closed",
                               fn=make(2.0), work=orig.work)
        report = apply_rule(closed, "L001", registry=KernelRegistry())
        assert report.error is not None and "closure" in report.error

    def test_auto_variant_runs_standalone(self):
        registry = KernelRegistry()
        _apply("stream.triad_scalar", "L001", registry=registry)
        auto = registry.get("stream", "triad_scalar.auto_l001")
        a = np.zeros(8)
        b = np.arange(8.0)
        c = np.ones(8)
        out = auto.fn(a, b, c, s=2.0)
        np.testing.assert_array_equal(out, b + 2.0)
