"""Tests for repro.transform.passes — the AST rewrite passes.

Each pass is exercised on synthetic sources (success, refusal, and
idempotence) plus the registered kernels it was designed around:
matmul.tiled's inner j-loop, stencil.scalar's full 2D cascade.
"""

import ast
import inspect
import textwrap

import pytest

from repro.kernels import REGISTRY
from repro.transform import REWRITE_PASSES, run_pass


def _fn(src: str) -> ast.FunctionDef:
    return ast.parse(textwrap.dedent(src)).body[0]


def _registered_fn(kernel: str, name: str) -> ast.FunctionDef:
    fn = REGISTRY.get(kernel, name).fn
    return _fn(inspect.getsource(fn))


def _unparsed(result) -> str:
    return ast.unparse(result.node)


class TestVectorizeL001:
    def test_map_loop_becomes_slice(self):
        res = run_pass(_fn("""
            def triad(a, b, c, s):
                n = len(a)
                for i in range(n):
                    a[i] = b[i] + s * c[i]
                return a
        """), "L001")
        assert res.changed and len(res.rewrites) == 1
        out = _unparsed(res)
        assert "for i" not in out
        assert "a[0:n] = b[0:n] + s * c[0:n]" in out

    def test_offset_shifts_fold_constants(self):
        res = run_pass(_fn("""
            def shift(dst, src, n):
                for i in range(1, n - 1):
                    dst[i] = src[i - 1] + src[i + 1]
                return dst
        """), "L001")
        out = _unparsed(res)
        assert res.changed
        # i-1 over [1, n-1) -> [0, n-2); i+1 -> [2, n)
        assert "src[0:n - 2]" in out and "src[2:n]" in out

    def test_2d_cascade_fully_vectorizes(self):
        res = run_pass(_registered_fn("stencil", "scalar"), "L001")
        assert len(res.rewrites) == 2  # inner j-loop first, then the i-loop
        assert not res.refusals
        out = _unparsed(res)
        assert "for " not in out

    def test_matmul_tiled_inner_loop_only(self):
        res = run_pass(_registered_fn("matmul", "tiled"), "L001")
        assert len(res.rewrites) == 1
        out = _unparsed(res)
        assert "c[i, tj:tj_end] += aik * b[kk, tj:tj_end]" in out
        # the kk loop now has a 2-statement body: refused, not rewritten
        assert any("2 statements" in r.reason for r in res.refusals)

    def test_refuses_scalar_reduction(self):
        res = run_pass(_fn("""
            def dot(a, b, n):
                acc = 0.0
                for i in range(n):
                    acc += a[i] * b[i]
                return acc
        """), "L001")
        assert not res.changed
        assert any("reassociate" in r.reason for r in res.refusals)

    def test_refuses_accumulation_into_fixed_cell(self):
        res = run_pass(_fn("""
            def cell(a, b, n):
                for i in range(n):
                    a[0] += b[i]
                return a
        """), "L001")
        assert not res.changed
        assert any("does not vary" in r.reason for r in res.refusals)

    def test_refuses_gather(self):
        res = run_pass(_fn("""
            def gather(a, b, idx, n):
                for i in range(n):
                    a[i] = b[idx[i]]
                return a
        """), "L001")
        assert not res.changed
        assert any("gather/scatter" in r.reason for r in res.refusals)

    def test_refuses_loop_carried_dependence(self):
        res = run_pass(_fn("""
            def prefix(a, n):
                for i in range(1, n):
                    a[i] = a[i - 1] + a[i]
                return a
        """), "L001")
        assert not res.changed
        assert any("loop-carried" in r.reason for r in res.refusals)

    def test_refuses_leaky_loop_variable(self):
        res = run_pass(_fn("""
            def leaky(a, b, n):
                for i in range(n):
                    a[i] = b[i]
                return i
        """), "L001")
        assert not res.changed
        assert any("read after the loop" in r.reason for r in res.refusals)

    def test_refuses_multi_statement_body(self):
        res = run_pass(_fn("""
            def two(a, b, n):
                for i in range(n):
                    t = b[i] * 2
                    a[i] = t
                return a
        """), "L001")
        assert not res.changed
        assert any("2 statements" in r.reason for r in res.refusals)

    def test_idempotent(self):
        first = run_pass(_registered_fn("stencil", "scalar"), "L001")
        again = run_pass(first.node, "L001")
        assert not again.changed
        assert ast.unparse(first.node) == ast.unparse(again.node)


class TestHoistAllocsL002:
    def test_zeros_hoisted_with_refill(self):
        res = run_pass(_fn("""
            def f(out, n, m):
                for i in range(n):
                    buf = np.zeros(m)
                    out[i] = buf.sum()
                return out
        """), "L002")
        # buf is used beyond subscripting (method call) -> refusal instead
        assert not res.changed
        assert any("escapes" in r.reason for r in res.refusals)

    def test_zeros_hoist_subscript_only(self):
        res = run_pass(_fn("""
            def f(out, n, m):
                for i in range(n):
                    buf = np.zeros(m)
                    buf[0] = i
                    out[i] = buf[0]
                return out
        """), "L002")
        assert res.changed
        out = _unparsed(res)
        before, inside = out.split("for i", 1)
        assert "buf = np.zeros(m)" in before
        assert "buf[...] = 0" in inside  # refill keeps results identical

    def test_empty_hoist_has_no_refill(self):
        res = run_pass(_fn("""
            def f(out, n, m):
                for i in range(n):
                    buf = np.empty(m)
                    buf[0] = i
                    out[i] = buf[0]
                return out
        """), "L002")
        assert res.changed
        assert "buf[...]" not in _unparsed(res)

    def test_refuses_varying_size(self):
        res = run_pass(_fn("""
            def f(out, n):
                for i in range(n):
                    buf = np.zeros(i + 1)
                    buf[0] = 1
                    out[i] = buf[0]
                return out
        """), "L002")
        assert not res.changed
        assert any("vary across loop iterations" in r.reason
                   for r in res.refusals)

    def test_refuses_non_reusable_allocator(self):
        res = run_pass(_fn("""
            def f(out, x, n):
                for i in range(n):
                    buf = np.arange(n)
                    buf[0] = i
                    out[i] = buf[0]
                return out
        """), "L002")
        assert not res.changed
        assert any("not a provably hoistable allocator" in r.reason
                   for r in res.refusals)

    def test_idempotent(self):
        src = _fn("""
            def f(out, n, m):
                for i in range(n):
                    buf = np.empty(m)
                    buf[0] = i
                    out[i] = buf[0]
                return out
        """)
        first = run_pass(src, "L002")
        again = run_pass(first.node, "L002")
        assert not again.changed


class TestRangeLenL003:
    def test_direct_iteration_when_index_unneeded(self):
        res = run_pass(_fn("""
            def f(xs):
                total = 0.0
                for i in range(len(xs)):
                    total += xs[i]
                return total
        """), "L003")
        assert res.changed
        out = _unparsed(res)
        assert "for xs_item in xs:" in out
        assert "range(len" not in out

    def test_enumerate_when_index_still_used(self):
        res = run_pass(_fn("""
            def f(xs, out):
                for i in range(len(xs)):
                    out[i] = xs[i] * 2
                return out
        """), "L003")
        assert res.changed
        out = _unparsed(res)
        assert "enumerate(xs)" in out
        assert "out[i]" in out  # store still indexed

    def test_refuses_when_sequence_never_loaded(self):
        res = run_pass(_fn("""
            def f(xs, out):
                for i in range(len(xs)):
                    out[i] = i
                return out
        """), "L003")
        assert not res.changed
        assert any("never reads" in r.reason for r in res.refusals)

    def test_refuses_rebound_sequence(self):
        res = run_pass(_fn("""
            def f(xs):
                for i in range(len(xs)):
                    xs = xs + [xs[i]]
                return xs
        """), "L003")
        assert not res.changed
        assert any("rebound" in r.reason for r in res.refusals)

    def test_idempotent(self):
        first = run_pass(_fn("""
            def f(xs, out):
                for i in range(len(xs)):
                    out[i] = xs[i] * 2
                return out
        """), "L003")
        again = run_pass(first.node, "L003")
        assert not again.changed


class TestHoistChainsL004:
    def test_repeated_chain_hoisted(self):
        res = run_pass(_fn("""
            def f(xs, out):
                for i, x in enumerate(xs):
                    out[i] = cfg.model.scale * x + cfg.model.scale
                return out
        """), "L004")
        assert res.changed
        out = _unparsed(res)
        assert "cfg_model_scale = cfg.model.scale" in out
        assert out.count("cfg.model.scale") == 1  # only the hoisted bind

    def test_single_shallow_chain_skipped_silently(self):
        res = run_pass(_fn("""
            def f(xs, out):
                for i, x in enumerate(xs):
                    out[i] = cfg.scale * x
                return out
        """), "L004")
        assert not res.changed and not res.refusals

    def test_refuses_rebound_root(self):
        res = run_pass(_fn("""
            def f(xs, out, cfg):
                cfg = load()
                for i, x in enumerate(xs):
                    out[i] = cfg.model.scale * x + cfg.model.scale
                return out
        """), "L004")
        assert not res.changed
        assert any("rebound" in r.reason for r in res.refusals)

    def test_idempotent(self):
        first = run_pass(_fn("""
            def f(xs, out):
                for i, x in enumerate(xs):
                    out[i] = cfg.model.scale * x + cfg.model.scale
                return out
        """), "L004")
        again = run_pass(first.node, "L004")
        assert not again.changed


class TestDotToMatmulL005:
    def test_rewrites_two_arg_dot(self):
        res = run_pass(_fn("""
            def f(a, b, c):
                c += np.dot(a, b)
                return c
        """), "L005")
        assert res.changed
        assert "c += a @ b" in _unparsed(res)

    def test_refuses_out_kwarg(self):
        res = run_pass(_fn("""
            def f(a, b, c):
                np.dot(a, b, out=c)
                return c
        """), "L005")
        assert not res.changed
        assert any("no @ equivalent" in r.reason for r in res.refusals)

    def test_idempotent(self):
        first = run_pass(_fn("""
            def f(a, b, c):
                c += np.dot(a, b)
                return c
        """), "L005")
        again = run_pass(first.node, "L005")
        assert not again.changed


class TestDispatch:
    def test_all_rules_have_passes(self):
        assert set(REWRITE_PASSES) == {"L001", "L002", "L003", "L004", "L005"}

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="no rewrite pass"):
            run_pass(_fn("def f():\n    pass"), "L999")

    def test_never_mutates_input(self):
        node = _registered_fn("stencil", "scalar")
        before = ast.unparse(node)
        run_pass(node, "L001")
        assert ast.unparse(node) == before
