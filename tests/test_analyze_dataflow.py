"""Dataflow tier: abstract interpretation, L007-L010, and the D001 crosscheck."""

import numpy as np
import pytest

from repro.analyze.dataflow import (
    DATAFLOW_RULES,
    DataflowEstimate,
    check_transform_facts,
    crosscheck_registry,
    crosscheck_variant,
    dataflow_app_points,
    dataflow_estimate,
    dataflow_registry,
    dataflow_variant,
    estimate_dataflow_registry,
)
from repro.analyze.workcount import ProbeSpec, estimate_variant
from repro.kernels import REGISTRY
from repro.kernels.base import KernelRegistry, KernelVariant
from repro.timing.metrics import WorkCount

N = 8


# -- fixture kernels --------------------------------------------------------

def triad_kernel(a, b, c):
    c[:] = a + 2.0 * b
    return c


def triad_fused(a, b, c):
    np.multiply(b, 2.0, out=c)
    c += a
    return c


def triad_work(n):
    return WorkCount(flops=2.0 * n, loads_bytes=16.0 * n, stores_bytes=8.0 * n)


def _probes(build=None):
    if build is None:
        def build(name):
            a = np.arange(float(N))
            b = np.ones(N)
            c = np.zeros(N)
            return (a, b, c), (N,)
    return {"fixture": ProbeSpec("fixture", build)}


def _variant(fn, work=triad_work, metadata=None, name="triad"):
    return KernelVariant(kernel="fixture", name=name, fn=fn, work=work,
                         metadata=metadata or {})


def _registry(*variants):
    reg = KernelRegistry()
    for v in variants:
        reg.add(v)
    return reg


def _estimate(fn, args, name="probe"):
    est, _ = dataflow_estimate(_variant(fn, name=name), args)
    return est


# -- the abstract interpreter -----------------------------------------------

class TestEstimate:
    def test_moved_traffic_exceeds_footprint_for_temp_chain(self):
        args = _probes()["fixture"].build("triad")[0]
        est, _ = dataflow_estimate(_variant(triad_kernel), args)
        assert est.analyzable
        assert est.flops == 2.0 * N
        # footprint = compulsory unique-cell traffic (matches the shadow
        # interpreter); moved adds the temporaries and re-reads on top
        assert est.footprint_loads_bytes == 16.0 * N
        assert est.footprint_stores_bytes == 8.0 * N
        assert est.moved_loads_bytes > est.footprint_loads_bytes
        assert est.moved_stores_bytes > est.footprint_stores_bytes
        assert est.bytes_total > est.footprint_bytes

    def test_footprint_matches_shadow_interpreter_exactly(self):
        variant = _variant(triad_kernel)
        args = _probes()["fixture"].build("triad")[0]
        shadow = estimate_variant(variant, _probes()["fixture"].build("x")[0])
        est, _ = dataflow_estimate(variant, args)
        assert est.footprint_loads_bytes == shadow.loads_bytes
        assert est.footprint_stores_bytes == shadow.stores_bytes
        assert est.flops == shadow.flops

    def test_out_variant_moves_less_and_lands_at_higher_intensity(self):
        args1 = _probes()["fixture"].build("x")[0]
        args2 = _probes()["fixture"].build("x")[0]
        chained = _estimate(triad_kernel, args1, name="chained")
        fused = _estimate(triad_fused, args2, name="fused")
        assert chained.flops == fused.flops
        assert fused.bytes_total < chained.bytes_total
        assert fused.intensity > chained.intensity
        # temporaries are the difference
        assert chained.temp_allocs > fused.temp_allocs

    def test_result_facts_and_dim_bindings(self):
        est = _estimate(triad_kernel, _probes()["fixture"].build("x")[0])
        assert est.result_dtype == "float64"
        assert est.result_shape == (N,)
        assert any("float64" in b and str(N) in b for b in est.dim_bindings)

    def test_per_statement_cost_attribution(self):
        est = _estimate(triad_kernel, _probes()["fixture"].build("x")[0])
        assert est.statements
        by_line = {s.lineno: s for s in est.statements}
        # the assignment statement carries the flops and the temp allocs
        hot = max(est.statements, key=lambda s: s.flops)
        assert hot.flops == 2.0 * N
        assert hot.temp_allocs >= 1
        assert hot.lineno in by_line

    def test_intensity_uses_moved_traffic(self):
        est = DataflowEstimate(
            variant="x", analyzable=True, flops=100.0, int_ops=0,
            footprint_loads_bytes=10.0, footprint_stores_bytes=10.0,
            moved_loads_bytes=30.0, moved_stores_bytes=20.0,
            temp_allocs=1, temp_bytes=8.0)
        assert est.bytes_total == 50.0
        assert est.intensity == pytest.approx(2.0)
        assert est.footprint_intensity == pytest.approx(5.0)


# -- the traffic lint rules -------------------------------------------------

class TestRules:
    def test_l007_fires_on_hidden_temp_chain(self):
        findings = dataflow_variant(_variant(triad_kernel), _probes())
        l7 = [f for f in findings if f.rule == "L007"]
        assert len(l7) == 1
        assert l7[0].slug == "hidden-temp-chain"
        assert l7[0].severity == "warning"
        assert l7[0].lineno > 0

    def test_l007_silent_on_out_chained_twin(self):
        findings = dataflow_variant(_variant(triad_fused, name="fused"),
                                    _probes())
        assert not [f for f in findings if f.rule == "L007"]

    def test_l008_fires_on_silent_upcast(self):
        def upcast(a, b, c):
            c[:] = a.astype(np.float32) * 1.0 + b
            return c
        findings = dataflow_variant(_variant(upcast, name="upcast"), _probes())
        l8 = [f for f in findings if f.rule == "L008"]
        assert l8 and l8[0].slug == "silent-upcast"

    def test_l008_silent_on_uniform_dtype(self):
        findings = dataflow_variant(_variant(triad_fused, name="fused"),
                                    _probes())
        assert not [f for f in findings if f.rule == "L008"]

    def test_l009_fires_on_gather_feeding_fresh_allocation(self):
        def gather(a, b, c):
            idx = np.arange(N - 1, -1, -1)
            c[:] = 2.0 * a[idx]
            return c
        findings = dataflow_variant(_variant(gather, name="gather"), _probes())
        assert any(f.rule == "L009" for f in findings)

    def test_l009_fires_on_redundant_copy_of_gather(self):
        def copycat(a, b, c):
            idx = np.arange(N)
            c[:] = a[idx].copy()
            return c
        findings = dataflow_variant(_variant(copycat, name="copycat"),
                                    _probes())
        assert any(f.rule == "L009" and f.slug == "copy-index"
                   for f in findings)

    def test_l010_fires_on_broadcast_blowup(self):
        def build(name):
            return (np.ones(16), np.ones(16)), (16,)

        def outer(a, b):
            return a[:, None] * b[None, :]
        findings = dataflow_variant(_variant(outer, name="outer"),
                                    _probes(build))
        l10 = [f for f in findings if f.rule == "L010"]
        assert l10 and l10[0].slug == "broadcast-blowup"

    def test_l010_silent_on_matching_shapes(self):
        findings = dataflow_variant(_variant(triad_fused, name="fused"),
                                    _probes())
        assert not [f for f in findings if f.rule == "L010"]

    def test_lint_expect_downgrades_to_expected(self):
        v = _variant(triad_kernel,
                     metadata={"lint_expect": ("hidden-temp-chain",)})
        findings = dataflow_variant(v, _probes())
        l7 = [f for f in findings if f.rule == "L007"]
        assert l7 and all(f.severity == "expected" for f in l7)

    def test_stale_dataflow_expect_reported(self):
        v = _variant(triad_fused, name="fused",
                     metadata={"lint_expect": ("broadcast-blowup",)})
        findings = dataflow_variant(v, _probes())
        stale = [f for f in findings if f.rule == "L000"]
        assert stale and "broadcast-blowup" in stale[0].message


# -- refusals and probe plumbing --------------------------------------------

class TestRefusals:
    def test_d000_on_data_dependent_branch(self):
        def branchy(a, b, c):
            if a[0] > 0:
                c[:] = a + b
            return c
        findings = dataflow_variant(_variant(branchy, name="branchy"),
                                    _probes())
        d0 = [f for f in findings if f.rule == "D000"]
        assert d0 and d0[0].severity == "info"
        est, _ = dataflow_estimate(_variant(branchy, name="branchy"),
                                   _probes()["fixture"].build("x")[0])
        assert not est.analyzable
        assert est.reason

    def test_d000_on_with_statement(self):
        def with_stmt(a, b, c):
            with open("/dev/null"):
                c[:] = a
            return c
        findings = dataflow_variant(_variant(with_stmt, name="ws"), _probes())
        assert any(f.rule == "D000" for f in findings)

    def test_d002_when_no_probe_covers_the_kernel(self):
        v = KernelVariant(kernel="uncovered", name="x", fn=triad_kernel,
                          work=triad_work)
        findings = dataflow_variant(v, _probes())
        assert [f.rule for f in findings] == ["D002"]


# -- static-vs-dynamic crosscheck -------------------------------------------

class TestCrosscheck:
    def test_agreement_yields_no_findings(self):
        assert crosscheck_variant(_variant(triad_kernel), _probes()) == []

    def test_coverage_mismatch_is_reported(self):
        def branchy(a, b, c):
            if a[0] > 0:
                c[:] = a + b
            return c
        findings = crosscheck_variant(_variant(branchy, name="branchy"),
                                      _probes())
        d1 = [f for f in findings if f.rule == "D001"]
        assert d1 and d1[0].severity == "info"

    def test_transform_fact_drift_is_an_error(self):
        def base(a, b, c):
            return a + b

        def drifted(a, b, c):
            return (a + b).astype(np.float32)
        findings = check_transform_facts(
            _variant(base, name="base"),
            _variant(drifted, name="base.auto_x"), _probes())
        assert findings and all(f.rule == "D001" for f in findings)
        assert any(f.severity == "error" for f in findings)
        assert any("float32" in f.message for f in findings)

    def test_transform_fact_agreement_is_silent(self):
        assert check_transform_facts(
            _variant(triad_kernel),
            _variant(triad_fused, name="triad.auto_x"), _probes()) == []


# -- the shipped registry ---------------------------------------------------

class TestShippedRegistry:
    def test_dataflow_gate_is_clean(self):
        report = dataflow_registry(REGISTRY)
        assert report.ok
        assert not report.by_severity("warning")

    def test_crosscheck_agrees_within_tolerance_everywhere(self):
        report = crosscheck_registry(REGISTRY)
        assert report.ok
        assert not report.findings  # exact agreement, not just within 2x

    def test_estimates_cover_every_analyzable_variant(self):
        ests = estimate_dataflow_registry(REGISTRY)
        analyzable = [e for e in ests.values() if e.analyzable]
        assert len(analyzable) >= 10
        for est in analyzable:
            assert est.bytes_total >= est.footprint_bytes

    def test_static_app_points_from_moved_traffic(self):
        points = dataflow_app_points(REGISTRY)
        names = {p.name for p in points}
        assert "spmv.csr_numpy (static)" in names
        assert "matmul.numpy (static)" in names
        for p in points:
            assert p.name.endswith("(static)")
            assert p.intensity > 0
            assert p.achieved_flops_per_s is None

    def test_rule_table_is_complete(self):
        for rule in ("L007", "L008", "L009", "L010", "D000", "D001", "D002"):
            assert rule in DATAFLOW_RULES
