"""Tests for variant comparison and significance testing."""

import time

import numpy as np
import pytest

from repro.timing import (
    ComparisonTable,
    compare_variants,
    significantly_faster,
)


class TestSignificance:
    def test_clear_separation_detected(self):
        fast = [1.0, 1.01, 0.99, 1.02, 0.98]
        slow = [2.0, 2.01, 1.99, 2.02, 1.98]
        assert significantly_faster(fast, slow)
        assert not significantly_faster(slow, fast)

    def test_identical_distributions_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(1.0, 0.1, 20).tolist()
        b = rng.normal(1.0, 0.1, 20).tolist()
        assert not significantly_faster(a, b)

    def test_small_samples_conservative(self):
        assert not significantly_faster([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])

    def test_overlapping_noise_rejected(self):
        rng = np.random.default_rng(1)
        a = rng.normal(1.00, 0.5, 6).tolist()
        b = (rng.normal(1.02, 0.5, 6)).tolist()
        # a 2% difference buried in 50% noise must not count as a win
        assert not significantly_faster([abs(x) for x in a],
                                        [abs(x) for x in b])

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            significantly_faster([1.0] * 5, [2.0] * 5, alpha=1.5)


class TestCompareVariants:
    def test_ranks_and_flags(self):
        table = compare_variants({
            "base": lambda: time.sleep(0.003),
            "opt": lambda: time.sleep(0.001),
        }, baseline="base", repetitions=6, warmup=1)
        assert table.best().name == "opt"
        assert [r.name for r in table.winners()] == ["opt"]
        opt = next(r for r in table.results if r.name == "opt")
        assert opt.speedup_vs_baseline > 2.0

    def test_baseline_has_unit_speedup(self):
        table = compare_variants({
            "base": lambda: time.sleep(0.001),
            "other": lambda: time.sleep(0.001),
        }, baseline="base", repetitions=5, warmup=0)
        base = next(r for r in table.results if r.name == "base")
        assert base.speedup_vs_baseline == 1.0

    def test_equal_variants_produce_no_meaningful_winner(self):
        # identical workloads: any "winner" from timer jitter must be a
        # hair's breadth, never a real speedup
        table = compare_variants({
            "a": lambda: time.sleep(0.002),
            "b": lambda: time.sleep(0.002),
        }, baseline="a", repetitions=6, warmup=1)
        for r in table.winners():
            assert r.speedup_vs_baseline < 1.1

    def test_report_marks_baseline(self):
        table = compare_variants({
            "a": lambda: None,
            "b": lambda: None,
        }, baseline="a", repetitions=4, warmup=0)
        assert "(baseline)" in table.report()

    def test_unknown_baseline(self):
        with pytest.raises(ValueError):
            compare_variants({"a": lambda: None, "b": lambda: None},
                             baseline="c")

    def test_needs_two_variants(self):
        with pytest.raises(ValueError):
            compare_variants({"a": lambda: None}, baseline="a")

    def test_on_real_kernels(self):
        from repro.kernels import life_step_numpy, life_step_scalar, random_board

        board = random_board(48, seed=1)
        table = compare_variants({
            "scalar": lambda: life_step_scalar(board),
            "numpy": lambda: life_step_numpy(board),
        }, baseline="scalar", repetitions=5, warmup=1)
        assert table.best().name == "numpy"
        assert table.winners()[0].name == "numpy"


class TestComparisonObservability:
    def run_table(self):
        from repro.observe import MetricsRegistry, Tracer

        tracer = Tracer(metrics=MetricsRegistry())
        table = compare_variants({
            "fast": lambda: None,
            "slow": lambda: time.sleep(0.002),
        }, baseline="fast", repetitions=5, warmup=1, tracer=tracer)
        return table, tracer

    def test_emits_table_and_variant_spans(self):
        table, tracer = self.run_table()
        names = [s.name for s in tracer.spans]
        assert names.count("timing.compare_variants") == 1
        assert names.count("timing.variant") == 2
        assert names.count("timing.measure") == 2

    def test_span_attributes_carry_verdict(self):
        table, tracer = self.run_table()
        (cspan,) = [s for s in tracer.spans
                    if s.name == "timing.compare_variants"]
        assert cspan.attrs["baseline"] == "fast"
        assert cspan.attrs["variants"] == 2
        assert cspan.attrs["best"] == table.best().name
        variant_spans = [s for s in tracer.spans if s.name == "timing.variant"]
        assert {s.attrs["variant"] for s in variant_spans} == {"fast", "slow"}
        assert all(s.attrs["median_seconds"] > 0 for s in variant_spans)

    def test_significance_counters(self):
        _, tracer = self.run_table()
        snap = tracer.metrics.snapshot()["counters"]
        total = (snap.get("timing.variants_significant", 0)
                 + snap.get("timing.variants_not_significant", 0))
        assert total == 1  # one non-baseline variant got a verdict

    def test_measure_spans_nest_inside_variant(self):
        _, tracer = self.run_table()
        variant_ids = {s.span_id for s in tracer.spans
                       if s.name == "timing.variant"}
        measure_spans = [s for s in tracer.spans if s.name == "timing.measure"]
        assert all(s.parent_id in variant_ids for s in measure_spans)
