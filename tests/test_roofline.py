"""Tests for repro.roofline (model + plot)."""

import pytest

from repro.kernels import matmul_work, triad_work
from repro.machine import gpu_cc60
from repro.roofline import (
    AppPoint,
    BandwidthCeiling,
    ComputeCeiling,
    RooflineModel,
    ascii_roofline,
    cpu_roofline,
    gpu_roofline,
    log_space,
    roofline_csv,
)


@pytest.fixture(scope="module")
def model(cpu):
    return cpu_roofline(cpu)


class TestModel:
    def test_ridge_point(self, model, cpu):
        assert model.ridge_point() == pytest.approx(
            cpu.peak_flops() / cpu.stream_bandwidth)

    def test_attainable_below_ridge_is_bandwidth_limited(self, model):
        i = model.ridge_point() / 10
        assert model.attainable(i) == pytest.approx(model.peak_bandwidth * i)

    def test_attainable_above_ridge_is_compute_limited(self, model):
        assert model.attainable(10 * model.ridge_point()) == model.peak_flops

    def test_attainable_continuous_at_ridge(self, model):
        r = model.ridge_point()
        assert model.attainable(r) == pytest.approx(model.peak_flops)

    def test_classification(self, model):
        assert model.classify(0.01 * model.ridge_point()) == "memory-bound"
        assert model.classify(100 * model.ridge_point()) == "compute-bound"

    def test_triad_is_memory_bound(self, model):
        p = AppPoint.from_work("triad", triad_work(1_000_000))
        assert model.classify(p.intensity) == "memory-bound"

    def test_large_matmul_is_compute_bound(self, model):
        p = AppPoint.from_work("matmul", matmul_work(512))
        assert model.classify(p.intensity) == "compute-bound"

    def test_secondary_ceilings_ordered(self, model):
        peaks = [c.flops_per_s for c in model.compute]
        assert peaks[0] == max(peaks)
        names = [c.name for c in model.compute]
        assert "scalar" in names  # the no-SIMD-no-FMA teaching ceiling

    def test_primary_bandwidth_is_dram(self, model):
        assert model.bandwidth[0].name == "DRAM"
        assert model.bounding_ceiling(0.01) == "DRAM"

    def test_cache_bandwidth_ceilings_above_dram(self, model):
        dram = model._bandwidth("DRAM").bytes_per_s
        for name in ("L1", "L2"):
            assert model._bandwidth(name).bytes_per_s > dram

    def test_efficiency_of_perfect_point(self, model):
        i = 0.05
        p = AppPoint("x", i, achieved_flops_per_s=model.attainable(i))
        assert model.efficiency(p) == pytest.approx(1.0)

    def test_efficiency_none_when_unmeasured(self, model):
        assert model.efficiency(AppPoint("x", 1.0)) is None

    def test_measured_bandwidth_overrides_spec(self, cpu):
        m = cpu_roofline(cpu, measured_bandwidth=10e9)
        assert m.peak_bandwidth == 10e9

    def test_core_scaling(self, cpu):
        one = cpu_roofline(cpu, cores=1)
        allc = cpu_roofline(cpu)
        assert one.peak_flops == pytest.approx(allc.peak_flops / cpu.cores)

    def test_rejects_empty_ceilings(self):
        with pytest.raises(ValueError):
            RooflineModel("bad", [], [BandwidthCeiling("DRAM", 1e9)])

    def test_unknown_ceiling_lookup(self, model):
        with pytest.raises(KeyError):
            model.attainable(1.0, compute_name="quantum")


class TestAppPoint:
    def test_from_work_with_time(self):
        w = triad_work(1000)
        p = AppPoint.from_work("t", w, seconds=1e-6)
        assert p.achieved_flops_per_s == pytest.approx(w.flops / 1e-6)

    def test_from_traffic_effective_intensity(self):
        p = AppPoint.from_traffic("m", flops=1000, traffic_bytes=4000)
        assert p.intensity == 0.25

    def test_rejects_zero_intensity(self):
        with pytest.raises(ValueError):
            AppPoint("x", 0.0)


class TestGPURoofline:
    def test_pcie_roof_below_hbm(self):
        m = gpu_roofline(gpu_cc60())
        assert (m._bandwidth("PCIe").bytes_per_s
                < m._bandwidth("HBM").bytes_per_s)

    def test_pcie_ridge_much_higher(self):
        m = gpu_roofline(gpu_cc60())
        assert (m.ridge_point(bandwidth_name="PCIe")
                > 10 * m.ridge_point(bandwidth_name="HBM"))

    def test_fp64_peak_lower(self):
        g = gpu_cc60()
        assert (gpu_roofline(g, dtype_bytes=8).peak_flops
                < gpu_roofline(g, dtype_bytes=4).peak_flops)


class TestRendering:
    def test_report_mentions_every_point(self, model):
        pts = [AppPoint.from_work("triad", triad_work(1000), 1e-5),
               AppPoint.from_work("matmul", matmul_work(64))]
        text = model.report(pts)
        assert "triad" in text and "matmul" in text
        assert "ridge point" in text

    def test_ascii_chart_renders(self, model):
        p = AppPoint("kernel-A", 0.1, achieved_flops_per_s=5e9)
        chart = ascii_roofline(model, [p], width=40, height=10)
        assert "A" in chart
        assert chart.count("\n") >= 10

    def test_csv_has_header_and_rows(self, model):
        csv = roofline_csv(model, n_samples=8)
        lines = csv.splitlines()
        assert lines[0].startswith("intensity_flop_per_byte")
        assert len(lines) == 9

    def test_log_space_endpoints(self):
        pts = log_space(1.0, 100.0, 3)
        assert pts[0] == pytest.approx(1.0)
        assert pts[1] == pytest.approx(10.0)
        assert pts[2] == pytest.approx(100.0)
