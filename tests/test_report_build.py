"""Tests for `python -m repro.report build` — fusion, determinism, safety."""

import json

import pytest

from repro.observe.export import chrome_trace
from repro.observe.spans import Span
from repro.perfdb.record import RunRecord
from repro.perfdb.report import mode_split, report_text
from repro.perfdb.store import PerfStore
from repro.report import build_report
from repro.report.__main__ import main as report_main
from repro.report.sections import spans_from_chrome_trace
from repro.tuning.harness import Evaluation, TuningResult

NASTY = 'evil.<script>&"x"[n=4]'


def _store(tmp_path, n_runs=3, slowdown_at=None, bimodal=False):
    store = PerfStore(tmp_path / "perfdb")
    for i in range(n_runs):
        scale = 3.0 if (slowdown_at is not None and i >= slowdown_at) else 1.0
        times = [1e-3 * scale * (1 + 0.001 * k) for k in range(10)]
        if bimodal:
            times = times[:5] + [2.5e-3 * (1 + 0.001 * k) for k in range(5)]
        samples = {"matmul.ijk[n=16]": times,
                   NASTY: [5e-4 * (1 + 0.001 * k) for k in range(10)]}
        store.append(RunRecord.new(samples, label=f"run{i}",
                                   created=1000.0 + i))
    return store


def _trace_doc():
    spans = [Span(name="tune", start=0.0, end=0.01, category="tune",
                  pid=1, tid=1, span_id=1, parent_id=None),
             Span(name="measure", start=0.002, end=0.006, category="measure",
                  pid=1, tid=2, span_id=2, parent_id=1, attrs={"rank": 0})]
    return chrome_trace(spans)


def _tuning_result():
    return TuningResult(
        kernel="matmul", problem="n=16", strategy="random",
        history=[Evaluation(0, {"block": 8}, 2e-3),
                 Evaluation(1, {"block": 16}, 1e-3),
                 Evaluation(2, {"block": 8}, 2e-3, cached=True)])


class TestBuildFusion:
    def test_all_sections_present(self, tmp_path):
        html = build_report(_store(tmp_path), traces=[("t", _trace_doc())],
                            tuning=[_tuning_result()],
                            analyze_kernel="matmul", now=1.7e9)
        assert "Benchmark history (perfdb)" in html
        assert "Execution traces (observe)" in html
        assert "Roofline placements" in html
        assert "Tuning search trajectories" in html
        assert "Static analysis findings" in html
        # content, not just headings
        assert 'class="spark"' in html            # sparklines
        assert 'class="gantt"' in html            # span gantt
        assert "rank 0" in html                   # reconciled track name
        assert 'class="roofline"' in html
        assert "(static)" in html                 # static_app_points placed
        assert 'class="traj"' in html
        assert "block=16" in html                 # best tuning config

    def test_missing_sources_render_notes_not_errors(self):
        html = build_report(None, include_roofline=False,
                            include_analyze=False, now=0.0)
        assert "no perfdb store" in html
        assert "no traces supplied" in html
        assert "no tuning results supplied" in html

    def test_change_point_markers_in_sparkline(self, tmp_path):
        store = _store(tmp_path, n_runs=8, slowdown_at=4)
        html = build_report(store, include_roofline=False,
                            include_analyze=False, now=0.0)
        assert "stroke-dasharray" in html  # drift marker drawn
        assert "! shift" in html

    def test_tenant_filter_restricts_history(self, tmp_path):
        store = PerfStore(tmp_path / "perfdb")
        store.append(RunRecord.new({"a.x": [1e-3] * 8}, created=1.0),
                     tenant="alice")
        store.append(RunRecord.new({"b.y": [1e-3] * 8}, created=2.0),
                     tenant="bob")
        html = build_report(store, tenant="alice", include_roofline=False,
                            include_analyze=False, now=0.0)
        assert "a.x" in html and "b.y" not in html


class TestDeterminismAndSafety:
    def test_byte_identical_on_identical_inputs(self, tmp_path):
        store = _store(tmp_path)
        kw = dict(traces=[("t", _trace_doc())], tuning=[_tuning_result()],
                  analyze_kernel="matmul", now=1.7e9)
        assert build_report(store, **kw) == build_report(store, **kw)

    def test_cli_byte_identical_with_explicit_now(self, tmp_path, monkeypatch):
        _store(tmp_path)
        monkeypatch.chdir(tmp_path)
        for out in ("a.html", "b.html"):
            rc = report_main(["--store", str(tmp_path / "perfdb"), "build",
                              "-o", out, "--now", "1700000000",
                              "--no-roofline", "--no-analyze"])
            assert rc == 0
        assert (tmp_path / "a.html").read_bytes() \
            == (tmp_path / "b.html").read_bytes()

    def test_nasty_names_escaped_everywhere(self, tmp_path):
        html = build_report(_store(tmp_path), include_roofline=False,
                            include_analyze=False, now=0.0)
        assert NASTY not in html                       # raw form never leaks
        assert "&lt;script&gt;" in html
        assert "&quot;x&quot;" in html
        assert "<script" not in html.lower()

    def test_nasty_tenant_name_escaped(self, tmp_path):
        store = PerfStore(tmp_path / "perfdb")
        store.append(RunRecord.new({"k.v": [1e-3] * 8}, created=1.0),
                     tenant="t&<x>")
        html = build_report(store, tenant="t&<x>", include_roofline=False,
                            include_analyze=False, now=0.0)
        assert "t&amp;&lt;x&gt;" in html
        assert "<x>" not in html

    def test_self_contained(self, tmp_path):
        html = build_report(_store(tmp_path), analyze_kernel="matmul",
                            now=0.0)
        assert "<script" not in html.lower()
        assert "src=" not in html.replace("src=&", "")  # no external assets
        assert 'href="#' in html  # only fragment links


class TestModeSplits:
    """Satellite: per-mode medians surface in HTML and the perfdb table."""

    def test_bimodal_run_flagged_in_html_with_per_mode_medians(
            self, tmp_path):
        store = _store(tmp_path, bimodal=True)
        html = build_report(store, include_roofline=False,
                            include_analyze=False, now=0.0)
        assert "~ multimodal" in html
        # both mode medians with their weights, not one pooled number
        assert "1.002e-03s×50%" in html
        assert "2.505e-03s×50%" in html

    def test_bimodal_run_flagged_in_perfdb_report_table(self, tmp_path):
        store = _store(tmp_path, bimodal=True)
        text = report_text(store)
        assert "~ multimodal (2 modes in latest run:" in text
        assert "1.002e-03s×50%" in text and "2.505e-03s×50%" in text
        assert "per-mode medians" in text  # legend explains the split

    def test_unimodal_run_not_flagged(self, tmp_path):
        store = _store(tmp_path, bimodal=False)
        assert "~ multimodal" not in report_text(store)
        html = build_report(store, include_roofline=False,
                            include_analyze=False, now=0.0)
        assert "~ multimodal" not in html

    def test_mode_split_formats_median_by_weight(self):
        from repro.timing.adaptive import detect_modes
        samples = tuple([1e-3] * 6 + [2e-3] * 6)
        modes = detect_modes(samples)
        assert len(modes) == 2
        out = mode_split(modes)
        assert "1.000e-03s×50%" in out and "2.000e-03s×50%" in out


class TestTraceReconciliation:
    def test_thread_name_metadata_names_tracks(self):
        tracks, kinds, t0, t1 = spans_from_chrome_trace(_trace_doc())
        labels = [label for label, _ in tracks]
        assert "rank 0" in labels
        assert any(label.startswith("pid ") for label in labels)
        assert kinds == ["measure", "tune"]
        assert t1 > t0

    def test_empty_document(self):
        assert spans_from_chrome_trace({"traceEvents": []}) \
            == ([], [], 0.0, 0.0)


class TestCli:
    def test_build_exit_zero_and_writes_file(self, tmp_path):
        _store(tmp_path)
        out = tmp_path / "report.html"
        rc = report_main(["--store", str(tmp_path / "perfdb"), "build",
                          "-o", str(out), "--now", "0", "--kernel", "matmul"])
        assert rc == 0
        html = out.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "Roofline placements" in html

    def test_build_with_trace_and_tuning_files(self, tmp_path):
        _store(tmp_path)
        trace = tmp_path / "t.trace.json"
        trace.write_text(json.dumps(_trace_doc()), encoding="utf-8")
        tune = tmp_path / "tune.json"
        tune.write_text(_tuning_result().to_json(), encoding="utf-8")
        out = tmp_path / "report.html"
        rc = report_main(["--store", str(tmp_path / "perfdb"), "build",
                          "-o", str(out), "--now", "0", "--no-roofline",
                          "--no-analyze", "--trace", str(trace),
                          "--tuning", str(tune)])
        assert rc == 0
        html = out.read_text(encoding="utf-8")
        assert "rank 0" in html and "block=16" in html

    def test_build_missing_trace_file_exits_2(self, tmp_path, capsys):
        rc = report_main(["--store", str(tmp_path / "perfdb"), "build",
                          "--trace", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "report build:" in capsys.readouterr().err

    def test_build_to_stdout(self, tmp_path, capsys):
        _store(tmp_path)
        rc = report_main(["--store", str(tmp_path / "perfdb"), "build",
                          "-o", "-", "--now", "0", "--no-roofline",
                          "--no-analyze"])
        assert rc == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")


@pytest.mark.parametrize("flag,heading", [
    ("--no-roofline", "Roofline placements"),
    ("--no-analyze", "Static analysis findings"),
])
def test_section_opt_outs(tmp_path, flag, heading):
    _store(tmp_path)
    out = tmp_path / "r.html"
    rc = report_main(["--store", str(tmp_path / "perfdb"), "build",
                      "-o", str(out), "--now", "0", "--no-roofline",
                      "--no-analyze"])
    assert rc == 0
    assert heading not in out.read_text(encoding="utf-8")
