"""Tests for repro.parallel.gpu."""

import pytest

from repro.kernels import matmul_work, triad_work
from repro.machine import gpu_cc30, gpu_cc60
from repro.parallel import (
    KernelConfig,
    gpu_kernel_time,
    occupancy,
    offload_analysis,
)


class TestOccupancy:
    def test_full_occupancy_small_blocks(self):
        occ = occupancy(gpu_cc60(), KernelConfig(256, registers_per_thread=32))
        assert occ.occupancy == pytest.approx(1.0)
        assert occ.blocks_per_sm == 8

    def test_register_pressure_limits(self):
        occ = occupancy(gpu_cc60(), KernelConfig(256, registers_per_thread=128))
        assert occ.limiter == "registers"
        assert occ.occupancy < 0.5

    def test_shared_memory_limits(self):
        occ = occupancy(gpu_cc60(), KernelConfig(
            64, registers_per_thread=16, shared_mem_per_block_bytes=48 * 1024))
        assert occ.limiter == "shared-memory"
        assert occ.blocks_per_sm == 1

    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError):
            occupancy(gpu_cc60(), KernelConfig(2048))

    def test_zero_occupancy_possible(self):
        occ = occupancy(gpu_cc60(), KernelConfig(
            1024, shared_mem_per_block_bytes=128 * 1024))
        assert occ.occupancy == 0.0

    def test_partial_warp_rounded_up(self):
        occ = occupancy(gpu_cc60(), KernelConfig(33))  # 2 warps per block
        assert occ.warps_per_sm % 2 == 0


class TestKernelTime:
    def test_memory_bound_kernel_time(self):
        g = gpu_cc60()
        w = triad_work(10_000_000)
        t = gpu_kernel_time(g, w, KernelConfig(256), dtype_bytes=4)
        expected = g.kernel_launch_latency_s + w.bytes_total / g.memory_bandwidth_bytes_per_s
        assert t == pytest.approx(expected)

    def test_launch_latency_dominates_tiny_kernels(self):
        g = gpu_cc60()
        t = gpu_kernel_time(g, triad_work(64), KernelConfig(64))
        assert t == pytest.approx(g.kernel_launch_latency_s, rel=0.05)

    def test_low_occupancy_derates_compute(self):
        g = gpu_cc60()
        w = matmul_work(2048)
        fast = gpu_kernel_time(g, w, KernelConfig(256, registers_per_thread=32))
        slow = gpu_kernel_time(g, w, KernelConfig(256, registers_per_thread=160))
        assert slow > fast

    def test_unlaunchable_config_rejected(self):
        g = gpu_cc60()
        with pytest.raises(ValueError):
            gpu_kernel_time(g, triad_work(100), KernelConfig(
                1024, shared_mem_per_block_bytes=128 * 1024))


class TestOffload:
    def test_big_matmul_worth_offloading(self, cpu):
        decision = offload_analysis(cpu, gpu_cc60(), matmul_work(4096),
                                    transfer_bytes=3 * 4096 * 4096 * 8,
                                    config=KernelConfig(256))
        assert decision.worthwhile
        assert decision.speedup > 1

    def test_small_kernel_not_worth_it(self, cpu):
        decision = offload_analysis(cpu, gpu_cc60(), matmul_work(64),
                                    transfer_bytes=3 * 64 * 64 * 8,
                                    config=KernelConfig(256))
        assert not decision.worthwhile

    def test_breakeven_reuses(self, cpu):
        decision = offload_analysis(cpu, gpu_cc60(), matmul_work(2048),
                                    transfer_bytes=3 * 2048 * 2048 * 8,
                                    config=KernelConfig(256))
        assert 0 < decision.breakeven_reuses < float("inf")

    def test_weak_gpu_less_attractive(self, cpu):
        w = matmul_work(1024)
        transfer = 3 * 1024 * 1024 * 8
        strong = offload_analysis(cpu, gpu_cc60(), w, transfer, KernelConfig(256))
        weak = offload_analysis(cpu, gpu_cc30(), w, transfer, KernelConfig(256))
        assert weak.gpu_total_seconds > strong.gpu_total_seconds
