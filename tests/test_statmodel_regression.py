"""Tests for repro.statmodel.regression."""

import numpy as np
import pytest

from repro.statmodel import (
    DecisionTreeRegressor,
    KNNRegressor,
    LinearRegressor,
    PolynomialRegressor,
    RandomForestRegressor,
    r_squared,
)


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(1)
    X = rng.random((150, 3))
    y = 2.0 + 3.0 * X[:, 0] - 1.5 * X[:, 2] + 0.01 * rng.standard_normal(150)
    return X, y


@pytest.fixture(scope="module")
def nonlinear_data():
    rng = np.random.default_rng(2)
    X = rng.random((200, 2)) * 4 - 2
    y = np.sin(X[:, 0] * 2) + X[:, 1] ** 2 + 0.05 * rng.standard_normal(200)
    return X, y


class TestLinear:
    def test_recovers_coefficients(self, linear_data):
        X, y = linear_data
        model = LinearRegressor().fit(X, y)
        assert model.intercept == pytest.approx(2.0, abs=0.05)
        assert model.coefficients[0] == pytest.approx(3.0, abs=0.05)
        assert model.coefficients[1] == pytest.approx(0.0, abs=0.05)
        assert model.coefficients[2] == pytest.approx(-1.5, abs=0.05)

    def test_ridge_shrinks_coefficients(self, linear_data):
        X, y = linear_data
        plain = LinearRegressor().fit(X, y)
        ridge = LinearRegressor(ridge=100.0).fit(X, y)
        assert (np.abs(ridge.coefficients).sum()
                < np.abs(plain.coefficients).sum())

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(20), np.arange(20.0)])
        y = 2 * np.arange(20.0) + 1
        model = LinearRegressor().fit(X, y)
        assert r_squared(y, model.predict(X)) > 0.999

    def test_explain_readable(self, linear_data):
        X, y = linear_data
        model = LinearRegressor().fit(X, y)
        text = model.explain(["a", "b", "c"])
        assert text.startswith("y = ") and "*a" in text

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegressor().predict(np.zeros((1, 2)))

    def test_wrong_width_rejected(self, linear_data):
        X, y = linear_data
        model = LinearRegressor().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 5)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressor().fit(np.array([[np.nan]]), np.array([1.0]))


class TestPolynomial:
    def test_fits_quadratic_exactly(self):
        X = np.linspace(-2, 2, 50).reshape(-1, 1)
        y = 1 + 2 * X[:, 0] + 3 * X[:, 0] ** 2
        model = PolynomialRegressor(degree=2).fit(X, y)
        assert r_squared(y, model.predict(X)) > 0.9999

    def test_captures_interaction(self):
        rng = np.random.default_rng(3)
        X = rng.random((100, 2))
        y = X[:, 0] * X[:, 1]
        model = PolynomialRegressor(degree=2).fit(X, y)
        assert r_squared(y, model.predict(X)) > 0.999

    def test_beats_linear_on_nonlinear(self, nonlinear_data):
        X, y = nonlinear_data
        lin = LinearRegressor().fit(X, y)
        poly = PolynomialRegressor(degree=3).fit(X, y)
        assert (r_squared(y, poly.predict(X))
                > r_squared(y, lin.predict(X)))

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            PolynomialRegressor(degree=0)


class TestKNN:
    def test_interpolates_training_points(self):
        X = np.arange(10.0).reshape(-1, 1)
        y = X[:, 0] * 2
        model = KNNRegressor(k=1).fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_k_larger_than_data_clamped(self):
        X = np.arange(3.0).reshape(-1, 1)
        y = np.array([1.0, 2.0, 3.0])
        model = KNNRegressor(k=10).fit(X, y)
        assert model.predict(np.array([[1.0]]))[0] == pytest.approx(2.0)

    def test_standardization_matters(self):
        # one feature with huge scale must not drown the informative one
        rng = np.random.default_rng(4)
        X = np.column_stack([rng.random(100), rng.random(100) * 1e6])
        y = X[:, 0]  # only the small-scale feature matters... but distance
        model = KNNRegressor(k=3).fit(X, y)
        pred = model.predict(X)
        assert r_squared(y, pred) > 0.5


class TestTreeAndForest:
    def test_tree_fits_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        model = DecisionTreeRegressor(max_depth=2, min_samples_leaf=1).fit(X, y)
        assert r_squared(y, model.predict(X)) > 0.99

    def test_tree_depth_respected(self):
        X = np.random.default_rng(5).random((200, 2))
        y = X[:, 0] + X[:, 1]
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.depth() <= 3

    def test_tree_constant_target_single_leaf(self):
        X = np.random.default_rng(6).random((20, 2))
        model = DecisionTreeRegressor().fit(X, np.full(20, 7.0))
        assert model.depth() == 0
        assert np.allclose(model.predict(X), 7.0)

    def test_forest_beats_single_tree_on_nonlinear(self, nonlinear_data):
        X, y = nonlinear_data
        rng = np.random.default_rng(7)
        idx = rng.permutation(len(y))
        train, test = idx[:150], idx[150:]
        tree = DecisionTreeRegressor(max_depth=4, seed=0).fit(X[train], y[train])
        forest = RandomForestRegressor(n_trees=30, max_depth=6, seed=0).fit(
            X[train], y[train])
        assert (r_squared(y[test], forest.predict(X[test]))
                >= r_squared(y[test], tree.predict(X[test])) - 0.02)

    def test_forest_deterministic_by_seed(self, nonlinear_data):
        X, y = nonlinear_data
        a = RandomForestRegressor(n_trees=5, seed=9).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(n_trees=5, seed=9).fit(X, y).predict(X[:10])
        assert np.array_equal(a, b)

    def test_forest_rejects_zero_trees(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)
