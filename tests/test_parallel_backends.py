"""Execution backends: API contract, zero-copy sharing, resource hygiene."""

import multiprocessing
import pickle
import time

import numpy as np
import pytest

from repro.parallel import (
    BACKENDS,
    LocalArray,
    ProcessBackend,
    SerialBackend,
    SharedArray,
    ThreadBackend,
    chunk_bounds,
    compare_backends,
    default_chunk,
    make_backend,
    open_backend,
    parallel_map,
)
from multiprocessing import shared_memory


def _double(x):
    return 2 * x


def _span(lo, hi):
    return (lo, hi)


def _boom(x):
    raise RuntimeError(f"worker failure on {x}")


def _write_row(args):
    handle, row, value = args
    handle.array[row, :] = value


def _no_children(timeout=5.0):
    """True once no worker processes remain (joins may lag shutdown)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


def _segment_gone(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    shm.close()
    return False


class TestChunkBounds:
    def test_covers_range_in_order(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_chunk_when_oversized(self):
        assert chunk_bounds(4, 100) == [(0, 4)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            chunk_bounds(0, 1)
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)

    def test_default_chunk_one_per_worker(self):
        assert default_chunk(10, 3) == 4
        assert default_chunk(2, 8) == 1


class TestBackendContract:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_map_preserves_input_order(self, name):
        with make_backend(name, 3) as backend:
            assert backend.map(_double, list(range(20))) == [2 * i for i in range(20)]

    @pytest.mark.parametrize("name", BACKENDS)
    def test_share_and_gather_roundtrip(self, name):
        a = np.arange(12.0).reshape(3, 4)
        out = np.zeros_like(a)
        with make_backend(name, 2) as backend:
            handle = backend.share(a)
            backend.gather(handle, out)
        assert np.array_equal(out, a)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", 2)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)

    def test_map_after_close_rejected(self):
        backend = SerialBackend()
        backend.close()
        with pytest.raises(RuntimeError, match="closed"):
            backend.map(_double, [1])

    def test_close_is_idempotent(self):
        backend = ThreadBackend(2)
        backend.close()
        backend.close()

    def test_open_backend_borrows_instances(self):
        with ThreadBackend(2) as backend:
            with open_backend(backend, 4) as ex:
                assert ex is backend
            # borrowed: still usable after the inner context exits
            assert backend.map(_double, [3]) == [6]

    def test_serial_share_is_the_array_itself(self):
        a = np.zeros(4)
        with SerialBackend() as backend:
            assert backend.share(a).array is a


class TestSharedArray:
    def test_handle_pickles_by_name_not_contents(self):
        a = np.random.default_rng(0).standard_normal((64, 64))
        handle = SharedArray.wrap(a)
        try:
            blob = pickle.dumps(handle)
            assert len(blob) < 512  # a few dozen bytes of metadata, not 32 KiB
            clone = pickle.loads(blob)
            assert np.array_equal(clone.array, a)
        finally:
            handle.release()

    def test_wrap_copies_and_release_unlinks(self):
        handle = SharedArray.wrap(np.arange(5.0))
        name = handle.name
        assert not _segment_gone(name)
        handle.release()
        assert _segment_gone(name)
        handle.release()  # idempotent

    def test_array_access_after_release_rejected(self):
        handle = SharedArray.wrap(np.arange(3.0))
        handle.release()
        with pytest.raises(RuntimeError, match="released"):
            handle.array

    def test_empty_array_roundtrip(self):
        handle = SharedArray.wrap(np.empty(0))
        try:
            assert handle.array.size == 0
        finally:
            handle.release()

    def test_local_array_is_always_released(self):
        assert LocalArray(np.zeros(1)).released


class TestProcessZeroCopy:
    def test_workers_write_into_shared_pages(self):
        a = np.zeros((4, 8))
        with ProcessBackend(2) as backend:
            handle = backend.share(a)
            backend.map(_write_row, [(handle, r, float(r + 1)) for r in range(4)])
            backend.gather(handle, a)
        assert np.array_equal(a, np.outer(np.arange(1.0, 5.0), np.ones(8)))


class TestResourceHygiene:
    def test_normal_exit_leaks_nothing(self):
        with ProcessBackend(2) as backend:
            handle = backend.share(np.arange(16.0))
            name = handle.name
            backend.map(_double, [1, 2, 3])
        assert _segment_gone(name)
        assert _no_children()

    def test_worker_raise_leaks_nothing(self):
        name = None
        with pytest.raises(RuntimeError, match="worker failure"):
            with ProcessBackend(2) as backend:
                handle = backend.share(np.arange(16.0))
                name = handle.name
                backend.map(_boom, [1, 2])
        assert name is not None and _segment_gone(name)
        assert _no_children()

    def test_thread_backend_worker_raise_propagates(self):
        with pytest.raises(RuntimeError, match="worker failure"):
            with ThreadBackend(2) as backend:
                backend.map(_boom, [1])

    def test_backend_close_releases_unreleased_handles(self):
        backend = ProcessBackend(2)
        handle = backend.share(np.arange(4.0))
        backend.close()
        assert handle.released and _segment_gone(handle.name)


class TestParallelMapWrapper:
    def test_signature_and_chunking_preserved(self):
        out = parallel_map(lambda lo, hi: (lo, hi), 100, workers=3, chunk=30)
        assert out == [(0, 30), (30, 60), (60, 90), (90, 100)]

    def test_chunk_size_alias(self):
        out = parallel_map(lambda lo, hi: (lo, hi), 10, workers=2, chunk_size=4)
        assert out == [(0, 4), (4, 8), (8, 10)]

    def test_conflicting_chunk_spellings_rejected(self):
        with pytest.raises(ValueError, match="conflicts"):
            parallel_map(lambda lo, hi: None, 10, workers=2, chunk=3, chunk_size=4)

    def test_results_in_input_order_despite_skew(self):
        def slow_first(lo, hi):
            if lo == 0:
                time.sleep(0.02)
            return lo
        assert parallel_map(slow_first, 8, workers=4, chunk_size=2) == [0, 2, 4, 6]

    def test_process_backend_via_wrapper(self):
        out = parallel_map(_span, 4, workers=2, chunk_size=1, backend="process")
        assert out == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_borrowed_backend_instance(self):
        with ThreadBackend(2) as backend:
            first = parallel_map(lambda lo, hi: hi - lo, 6, workers=2,
                                 backend=backend)
            second = parallel_map(lambda lo, hi: hi - lo, 6, workers=2,
                                  backend=backend)
        assert first == second == [3, 3]


class TestCompareBackends:
    def test_reports_serial_baseline_and_speedups(self):
        def run(backend):
            return backend.map(_double, list(range(8)))

        timings = compare_backends(run, workers=2, backends=("serial", "thread"),
                                   repetitions=1, warmup=0)
        assert [t.backend for t in timings] == ["serial", "thread"]
        assert timings[0].speedup == pytest.approx(1.0)
        assert all(t.seconds > 0 for t in timings)
