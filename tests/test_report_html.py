"""Tests for repro.report.html — escaping, SVG primitives, page shell."""

import pytest

from repro.report.html import (attr, escape, render_page, svg_gantt,
                               svg_roofline, svg_sparkline, svg_trajectory,
                               table, tag)


class TestEscape:
    def test_escapes_every_html_metacharacter(self):
        nasty = '<script>&"dangerous"&\'x\'</script>'
        out = escape(nasty)
        assert "<" not in out and ">" not in out
        assert '"' not in out and "'" not in out
        assert "&lt;script&gt;" in out
        assert "&quot;dangerous&quot;" in out
        assert "&#x27;x&#x27;" in out

    def test_ampersand_escaped_first_not_double_escaped(self):
        assert escape("&lt;") == "&amp;lt;"

    def test_non_string_input_is_stringified(self):
        assert escape(42) == "42"
        assert escape(None) == "None"

    def test_attr_sorted_and_escaped(self):
        out = attr({"b": 'x"y', "a": 1})
        assert out == ' a="1" b="x&quot;y"'

    def test_tag_self_closes_without_content(self):
        assert tag("br") == "<br/>"
        assert tag("p", "hi", cls="note") == '<p class="note">hi</p>'
        assert 'stroke-width="2"' in tag("line", stroke_width=2)


class TestTable:
    def test_rows_and_headers_render(self):
        out = table(("a", "b"), [("1", "2"), ("3", "4")])
        assert out.count("<tr>") == 3  # header row + two body rows
        assert "<th>a</th>" in out and "<td>4</td>" in out


class TestSparkline:
    def test_empty_series_renders_empty_svg(self):
        assert svg_sparkline([]).startswith("<svg")

    def test_polyline_and_last_point_marker(self):
        out = svg_sparkline([1.0, 2.0, 1.5])
        assert "<polyline" in out and "<circle" in out

    def test_change_points_draw_dashed_markers(self):
        clean = svg_sparkline([1.0, 1.0, 2.0, 2.0])
        marked = svg_sparkline([1.0, 1.0, 2.0, 2.0], change_points=[2])
        assert "stroke-dasharray" not in clean
        assert marked.count("stroke-dasharray") == 1

    def test_out_of_range_change_points_ignored(self):
        out = svg_sparkline([1.0, 2.0], change_points=[-1, 99])
        assert "stroke-dasharray" not in out

    def test_flat_series_renders_midline(self):
        out = svg_sparkline([3.0, 3.0, 3.0])
        assert "<polyline" in out  # no division by zero


class TestGantt:
    def test_tracks_and_legend(self):
        tracks = [("rank 0", [(0.0, 0.5, "compute"), (0.5, 0.6, "comm")]),
                  ("rank 1", [(0.1, 0.4, "compute")])]
        out = svg_gantt(tracks, ["comm", "compute"], 0.0, 1.0)
        assert out.count("<rect") == 3
        assert "rank 0" in out and "rank 1" in out
        assert "compute" in out  # legend

    def test_empty_extent_degrades(self):
        assert "empty" in svg_gantt([], [], 0.0, 0.0)

    def test_track_labels_escaped(self):
        out = svg_gantt([("<evil>", [(0.0, 1.0, "k")])], ["k"], 0.0, 1.0)
        assert "<evil>" not in out and "&lt;evil&gt;" in out


class TestRoofline:
    def test_ceilings_and_points(self):
        series = {"peak|dram": [(0.1, 1e9), (1.0, 1e10), (10.0, 1e10)]}
        out = svg_roofline(series, [("app", 0.5, 2e9), ("static", 2.0, None)])
        assert out.count("<polyline") == 1
        assert out.count("<circle") == 2
        assert 'fill="none"' in out  # hollow static marker

    def test_no_data_degrades(self):
        assert "no roofline" in svg_roofline({}, [])


class TestTrajectory:
    def test_best_so_far_step_and_markers(self):
        out = svg_trajectory([(0, 2e-3, False), (1, 1e-3, False),
                              (2, 2e-3, True)])
        assert out.count("<circle") == 3
        assert "cache hit" in out
        assert "<polyline" in out

    def test_empty_history_degrades(self):
        assert "empty search" in svg_trajectory([])


class TestRenderPage:
    def test_deterministic_with_pinned_now(self):
        sections = [("One", "<p>x</p>"), ("Two", "<p>y</p>")]
        a = render_page("t", sections, now=1.7e9)
        b = render_page("t", sections, now=1.7e9)
        assert a == b

    def test_now_changes_only_the_stamp(self):
        a = render_page("t", [("S", "c")], now=0.0)
        b = render_page("t", [("S", "c")], now=86400.0)
        assert a != b
        assert "1970-01-01" in a and "1970-01-02" in b

    def test_self_contained_no_external_assets_no_scripts(self):
        out = render_page("t", [("S", "<p>c</p>")], now=0.0)
        assert "<script" not in out.lower()
        assert "http://" not in out and "https://" not in out
        assert "<style>" in out

    def test_title_escaped(self):
        out = render_page('<img src="x">', [], now=0.0)
        assert "<img" not in out


@pytest.mark.parametrize("renderer,args", [
    (svg_sparkline, ([1.0, 2.0, 3.0],)),
    (svg_trajectory, ([(0, 1e-3, False)],)),
])
def test_svg_coordinates_use_fixed_notation(renderer, args):
    # scientific notation in coordinates breaks some SVG consumers
    out = renderer(*args)
    for chunk in out.split('"'):
        if chunk.replace(".", "").replace(",", "").replace(" ", "") \
                .replace("-", "").isdigit():
            assert "e" not in chunk
