"""Cross-module integration tests: full assignment pipelines in miniature."""

import numpy as np
import pytest

from repro.core import EngineeringProcess, Metric, Requirement, Toolbox
from repro.kernels import (
    matmul_work,
    random_sparse,
    matrix_features,
    spmv_csr_numpy,
    triad_work,
)
from repro.roofline import AppPoint, cpu_roofline, hierarchical_traffic
from repro.simulator import (
    CPUModel,
    matmul_tiled_trace,
    matmul_trace,
    matmul_inner_body,
    stream_trace,
    triad_body,
)
from repro.statmodel import (
    LinearRegressor,
    RandomForestRegressor,
    mape,
    spmv_feature_pipeline,
    train_test_split,
)
from repro.timing import Factor, full_factorial, run_design


class TestAssignment1Pipeline:
    """Roofline of matmul versions on the simulated plane."""

    def test_tiling_improves_effective_intensity(self, cpu, table):
        n = 48
        model = CPUModel(cpu, table, prefetch=False)
        body = matmul_inner_body()
        naive = model.run(matmul_trace(n, "ijk"), body, n ** 3)
        tiled = model.run(matmul_tiled_trace(n, 16), body, n ** 3)
        flops = matmul_work(n).flops
        ai_naive = flops / naive.counters.dram_bytes
        ai_tiled = flops / tiled.counters.dram_bytes
        # both should be classified correctly and tiling must not hurt
        assert ai_tiled >= ai_naive

    def test_roofline_places_triad_and_matmul_correctly(self, cpu):
        roofline = cpu_roofline(cpu)
        triad = AppPoint.from_work("triad", triad_work(10 ** 6))
        mm = AppPoint.from_work("matmul-512", matmul_work(512))
        assert roofline.classify(triad.intensity) == "memory-bound"
        assert roofline.classify(mm.intensity) == "compute-bound"

    def test_hierarchical_roofline_binds_streaming_at_dram(self, cpu):
        n = 30000
        traffic = hierarchical_traffic(cpu, stream_trace(n, "triad"))
        from repro.roofline import hierarchical_bound

        _, level = hierarchical_bound(cpu, 2.0 * n, traffic)
        assert level == "DRAM"


class TestAssignment2Pipeline:
    """Analytical models calibrated by the (simulated) microbench suite."""

    def test_function_model_predicts_simulated_triad(self, cpu, table):
        from repro.analytical import FunctionLevelModel
        from repro.microbench import characterize_simulated

        n = 40000
        truth = CPUModel(cpu, table).run(
            stream_trace(n, "triad"), triad_body(True), n // 4).seconds
        single = characterize_simulated(cpu.with_cores(1), table)
        model = FunctionLevelModel(single)
        predicted = model.predict_seconds(triad_work(n))
        assert predicted == pytest.approx(truth, rel=0.75)

    def test_ecm_and_roofline_agree_on_memory_bound(self, cpu, table):
        from repro.analytical import ECMModel

        ecm = ECMModel(cpu, table)
        pred = ecm.predict(triad_body(True), 2, 1)
        # ECM says saturation well below core count == memory bound
        assert pred.saturation_cores() < cpu.cores


class TestAssignment3Pipeline:
    """Statistical SpMV model trained on simulated measurements."""

    @pytest.fixture(scope="class")
    def dataset(self, cpu, table):
        from repro.simulator import spmv_csr_trace, spmv_inner_body

        model = CPUModel(cpu, table)
        descriptors, times = [], []
        rng = np.random.default_rng(0)
        for i in range(24):
            n = int(rng.integers(40, 140))
            density = float(rng.uniform(0.02, 0.12))
            coo = random_sparse(n, density=density, seed=i)
            sim = model.run(spmv_csr_trace(coo), spmv_inner_body(),
                            max(coo.nnz, 1))
            descriptors.append(matrix_features(coo))
            times.append(sim.seconds)
        X = spmv_feature_pipeline().transform(descriptors)
        return X, np.asarray(times)

    def test_statistical_model_predicts_held_out(self, dataset):
        X, y = dataset
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.25, seed=1)
        model = LinearRegressor().fit(Xtr, ytr)
        assert mape(yte, model.predict(Xte)) < 0.5

    def test_nnz_is_dominant_feature(self, dataset):
        X, y = dataset
        model = LinearRegressor().fit(X, y)
        names = spmv_feature_pipeline().names
        contributions = np.abs(model.coefficients) * X.std(axis=0)
        assert names[int(np.argmax(contributions))] in ("nnz", "log_nnz", "row_mean")


class TestAssignment4Pipeline:
    def test_counters_identify_spmv_as_irregular(self, cpu, table):
        from repro.counters import CounterSession, derived_metrics
        from repro.kernels import banded_sparse
        from repro.simulator import spmv_csr_trace, spmv_inner_body

        # x must exceed L1 (n=12000 -> 96 KiB) for the gathers to miss
        n = 12_000
        coo = banded_sparse(n, n - 1, fill=6.0 / (2 * n), seed=5)
        session = CounterSession(cpu, table)
        reading = session.count(spmv_csr_trace(coo), spmv_inner_body(), coo.nnz)
        metrics = derived_metrics(reading, cpu)
        # the x-gathers are unprefetchable: L1 misses far above streaming's
        from repro.simulator import stream_trace, triad_body

        stream_reading = session.count(stream_trace(20000, "triad"),
                                       triad_body(), 20000)
        stream_metrics = derived_metrics(stream_reading, cpu)
        assert metrics["l1_miss_ratio"] > 20 * stream_metrics["l1_miss_ratio"]
        assert metrics["l1_miss_ratio"] > 0.1


class TestFullProcess:
    def test_process_driven_by_toolbox_models(self):
        """Stage 1-7 walkthrough with model-derived bound and predictions."""
        tb = Toolbox.default()
        n = 256
        work = matmul_work(n)
        roofline = tb.roofline(cores=1)
        bound_seconds = work.flops / roofline.attainable(work.intensity)

        proc = EngineeringProcess(f"matmul-{n}")
        proc.set_requirement(Requirement("10x over naive", Metric.SPEEDUP, 10.0))
        baseline = 50 * bound_seconds  # pretend-naive measurement
        proc.record_baseline(baseline, "scalar ijk")
        verdict = proc.assess_feasibility(bound_seconds)
        assert verdict.value in ("feasible", "marginal")
        proc.propose("tiled+simd", "per roofline", predicted_seconds=baseline / 12)
        proc.apply("tiled+simd", baseline / 11)
        assert proc.assess() is True
        assert "MET" in proc.report()


class TestExperimentToModel:
    def test_design_table_feeds_regression(self):
        design = full_factorial([Factor("n", (50, 100, 150, 200, 400))])
        table = run_design(design, lambda n: 1e-9 * n ** 2 + 1e-6, replicates=2)
        X, y, _ = table.to_arrays()
        from repro.statmodel import PolynomialRegressor

        model = PolynomialRegressor(degree=2).fit(X, y)
        pred = model.predict(np.array([[300.0]]))[0]
        assert pred == pytest.approx(1e-9 * 300 ** 2 + 1e-6, rel=0.05)
