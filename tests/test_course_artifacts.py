"""Tests for curriculum (Table 1), figures (SW-2/SW-3), artifact graph (Fig. 2)."""

import pytest

from repro.course import (
    MILESTONES,
    OBJECTIVES,
    PREREQUISITES,
    STAGES,
    TIMELINE,
    TOPICS,
    artifact_graph,
    coverage_matrix,
    figure1_series,
    figure1_text,
    figure2_text,
    inputs_for,
    reproduction_order,
    table1_text,
    table2_text,
    table2a_rows,
    table2b_rows,
    topic_by_name,
    topics_for_objective,
    topics_for_stage,
    validate_graph,
)


class TestCurriculum:
    def test_structure_counts_exact(self):
        assert len(STAGES) == 7        # §2.3
        assert len(OBJECTIVES) == 8    # §3.1
        assert len(PREREQUISITES) == 5  # §3.2
        assert len(MILESTONES) == 4    # §3.3
        assert len(TOPICS) == 11       # Table 1 rows
        assert len(TIMELINE) == 8      # 8-week block

    def test_topic_names_match_table1(self):
        names = [t.name for t in TOPICS]
        assert names == [
            "Basics of performance",
            "Code tuning and optimization",
            "Roofline model and extensions",
            "Analytical modeling",
            "(Micro)benchmarking",
            "Data-driven and stat. modeling",
            "Simulation and simulators",
            "Perf. counters and patterns",
            "Scale-out to distributed systems",
            "Queuing theory",
            "Polyhedral model",
        ]

    def test_every_topic_maps_to_importable_module(self):
        import importlib

        for topic in TOPICS:
            assert importlib.import_module(topic.module)

    def test_every_stage_covered_except_reporting(self):
        # stages 2-6 are the practical ones (§2.3); they must be covered
        for stage in range(2, 7):
            assert topics_for_stage(stage), f"stage {stage} uncovered"

    def test_every_objective_served(self):
        for objective in range(1, 9):
            assert topics_for_objective(objective), f"objective {objective} unserved"

    def test_coverage_matrix_shape(self):
        matrix = coverage_matrix()
        assert len(matrix) == 11
        row = matrix["Roofline model and extensions"]
        assert len(row) == 15  # 7 stages + 8 objectives
        assert row["O2"] is True

    def test_lookup(self):
        assert topic_by_name("Queuing theory").module == "repro.queueing"
        with pytest.raises(KeyError):
            topic_by_name("Quantum computing")

    def test_table1_text_renders_all_topics(self):
        text = table1_text()
        for topic in TOPICS:
            assert topic.name in text


class TestFigure1:
    def test_series_lengths(self):
        series = figure1_series()
        assert len(series["year"]) == 7
        assert series["year"][0] == 2017
        assert sum(series["total_enrolled"]) == 146

    def test_missing_respondents_are_none(self):
        series = figure1_series()
        assert series["evaluation_respondents"][2] is None  # 2019

    def test_text_rendering(self):
        text = figure1_text()
        assert "2017" in text and "2023" in text
        assert "n/a" in text  # missing evaluations


class TestTable2:
    def test_2a_rows_carry_means(self):
        rows = table2a_rows()
        assert len(rows) == 13
        for row in rows:
            assert row["mean"] == pytest.approx(row["paper_mean"])

    def test_2b_rows(self):
        rows = table2b_rows()
        assert [r["statement"] for r in rows] == ["Workload", "Level"]

    def test_text_layout(self):
        text = table2_text()
        assert "Taught me a lot" in text
        assert "Assignment 4" in text
        assert "Workload" in text


class TestFigure2:
    def test_graph_is_dag_and_valid(self):
        assert validate_graph() == []

    def test_reproduction_order_topological(self):
        order = reproduction_order()
        g = artifact_graph()
        position = {node: i for i, node in enumerate(order)}
        for u, v in g.edges:
            assert position[u] < position[v]

    def test_figure_dependencies_match_paper(self):
        assert inputs_for("Figure 1") == {"DATA-1", "SW-2"}
        assert inputs_for("Table 2") == {"DATA-2", "SW-3"}
        assert {"Figure 1", "Table 2", "DOC-1", "DOC-2"} <= inputs_for("LaTeX Paper")

    def test_unknown_artifact(self):
        with pytest.raises(KeyError):
            inputs_for("Figure 99")

    def test_text_rendering_shows_availability(self):
        text = figure2_text()
        assert "[solid]" in text and "[dashed]" in text and "[dotted]" in text
