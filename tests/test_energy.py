"""Tests for repro.energy."""

import pytest

from repro.energy import (
    EnergyReport,
    PowerModel,
    dvfs_energy_curve,
    energy_of_run,
    energy_optimal_cores,
)
from repro.machine import generic_server_cpu


class TestPowerModel:
    def test_idle_power_is_static(self):
        pm = PowerModel(static_watts=40)
        assert pm.power(0) == 40.0

    def test_dynamic_scales_with_cores_and_utilization(self):
        pm = PowerModel(static_watts=0, core_watts=5)
        assert pm.power(4) == 20.0
        assert pm.power(4, utilization=0.5) == 10.0

    def test_dram_term(self):
        pm = PowerModel(static_watts=0, core_watts=0, dram_watts_per_gbs=0.5)
        assert pm.power(0, dram_gbs=50.0) == 25.0

    def test_frequency_cubes(self):
        pm = PowerModel(static_watts=0, core_watts=8, frequency_exponent=3.0)
        assert pm.power(1, frequency_scale=2.0) == pytest.approx(64.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(static_watts=-1)
        with pytest.raises(ValueError):
            PowerModel().power(1, utilization=1.5)


class TestEnergyReport:
    def test_derived_metrics(self):
        rep = EnergyReport(seconds=2.0, joules=100.0, flops=1e9)
        assert rep.watts == 50.0
        assert rep.joules_per_flop == pytest.approx(1e-7)
        assert rep.gflops_per_watt == pytest.approx(0.5 / 50.0)
        assert rep.edp == 200.0
        assert rep.ed2p == 400.0

    def test_flopless_report_rejects_flop_metrics(self):
        rep = EnergyReport(seconds=1.0, joules=10.0)
        with pytest.raises(ValueError):
            _ = rep.joules_per_flop

    def test_energy_of_run_composes(self):
        pm = PowerModel(static_watts=10, core_watts=5, dram_watts_per_gbs=1.0)
        rep = energy_of_run(pm, seconds=2.0, active_cores=2, dram_bytes=4e9)
        # dram 4 GB over 2 s = 2 GB/s -> 2 W; total 10 + 10 + 2 = 22 W
        assert rep.joules == pytest.approx(44.0)


class TestDVFS:
    def test_memory_bound_prefers_low_frequency(self):
        pm = PowerModel(static_watts=40, core_watts=6)
        curve = dvfs_energy_curve(pm, 10.0, 16, compute_bound_fraction=0.1)
        assert curve[0.6].joules < curve[1.0].joules < curve[1.2].joules

    def test_compute_bound_with_high_static_prefers_racing(self):
        # static power dominates one busy core: finish fast, shut down
        pm = PowerModel(static_watts=80, core_watts=3)
        curve = dvfs_energy_curve(pm, 10.0, 1, compute_bound_fraction=1.0)
        assert curve[1.2].joules < curve[0.6].joules

    def test_memory_bound_runtime_frequency_insensitive(self):
        pm = PowerModel()
        curve = dvfs_energy_curve(pm, 10.0, 8, compute_bound_fraction=0.0)
        assert curve[0.6].seconds == curve[1.2].seconds == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dvfs_energy_curve(PowerModel(), -1.0, 4)


class TestEnergyOptimalCores:
    def test_optimum_at_saturation_for_streaming(self, cpu):
        pm = PowerModel(static_watts=40, core_watts=6)
        # ECM-like triad: saturates around 27/7 ~ 4 cores
        best, reports = energy_optimal_cores(pm, cpu, 27.0, 7.0, lines=1e8)
        assert best == pytest.approx(round(27.0 / 7.0), abs=1)
        # beyond saturation: same time, more power
        assert reports[16].joules > reports[best].joules
        assert reports[16].seconds == pytest.approx(reports[best].seconds,
                                                    rel=0.05)

    def test_compute_bound_prefers_all_cores(self, cpu):
        pm = PowerModel(static_watts=100, core_watts=1)
        best, _ = energy_optimal_cores(pm, cpu, 32.0, 0.0, lines=1e8)
        assert best == cpu.cores

    def test_validation(self, cpu):
        with pytest.raises(ValueError):
            energy_optimal_cores(PowerModel(), cpu, -1.0, 1.0, 10.0)
