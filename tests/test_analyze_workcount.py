"""Work-count verifier: shadow-interpreted estimates vs declared models."""

import numpy as np
import pytest

from repro.analyze import (
    WorkEstimate,
    estimate_registry,
    estimate_variant,
    static_app_points,
    verify_workcounts,
)
from repro.analyze.workcount import ProbeSpec, default_probes
from repro.kernels import REGISTRY
from repro.kernels.base import KernelRegistry, KernelVariant
from repro.roofline import AppPoint
from repro.timing.metrics import WorkCount

N = 8


# -- fixture kernels --------------------------------------------------------

def triad_kernel(a, b, c):
    c[:] = a + 2.0 * b
    return c


def triad_work(n):
    return WorkCount(flops=2.0 * n, loads_bytes=16.0 * n, stores_bytes=8.0 * n)


def triad_work_wrong(n):
    # flops off by 4x — must trip the 2x tolerance
    return WorkCount(flops=8.0 * n, loads_bytes=16.0 * n, stores_bytes=8.0 * n)


def _probes():
    def build(name):
        a = np.arange(float(N))
        b = np.ones(N)
        c = np.zeros(N)
        return (a, b, c), (N,)
    return {"fixture": ProbeSpec("fixture", build)}


def _variant(fn, work, metadata=None, name="triad"):
    return KernelVariant(kernel="fixture", name=name, fn=fn, work=work,
                        metadata=metadata or {})


def _registry(*variants):
    reg = KernelRegistry()
    for v in variants:
        reg.add(v)
    return reg


# -- the interpreter itself -------------------------------------------------

class TestEstimate:
    def test_exact_counts_for_streaming_kernel(self):
        est = estimate_variant(_variant(triad_kernel, triad_work),
                               _probes()["fixture"].build("triad")[0])
        assert est.countable
        assert est.flops == 2.0 * N          # one mul + one add per element
        assert est.loads_bytes == 16.0 * N   # a and b, once each
        assert est.stores_bytes == 8.0 * N   # c, once

    def test_unique_cell_traffic_not_double_counted(self):
        def reread(a, c):
            c[:] = a + a + a  # a read three times, but compulsory once
            return c
        est = estimate_variant(_variant(reread, triad_work, name="reread"),
                               (np.ones(N), np.zeros(N)))
        assert est.loads_bytes == 8.0 * N

    def test_uncountable_source_reports_reason(self):
        def with_stmt(a, c):
            with open("/dev/null"):
                c[:] = a
            return c
        est = estimate_variant(_variant(with_stmt, triad_work, name="ws"),
                               (np.ones(N), np.zeros(N)))
        assert not est.countable
        assert "with-statement" in est.reason

    def test_intensity_property(self):
        est = WorkEstimate(variant="x", countable=True, flops=10.0,
                           loads_bytes=4.0, stores_bytes=1.0)
        assert est.bytes_total == 5.0
        assert est.intensity == 2.0


# -- verification -----------------------------------------------------------

class TestVerify:
    def test_accurate_model_passes(self):
        report = verify_workcounts(_registry(_variant(triad_kernel, triad_work)),
                                   probes=_probes())
        assert report.ok and len(report) == 0

    def test_model_off_by_2x_flagged_with_rule_id(self):
        report = verify_workcounts(
            _registry(_variant(triad_kernel, triad_work_wrong)),
            probes=_probes())
        assert not report.ok
        assert [f.rule for f in report.errors] == ["W001"]
        assert "flops" in report.errors[0].message

    def test_workcount_expect_downgrades_to_info(self):
        report = verify_workcounts(
            _registry(_variant(triad_kernel, triad_work_wrong,
                               metadata={"workcount_expect": "fixture reason"})),
            probes=_probes())
        assert report.ok
        infos = report.by_severity("info")
        assert infos and "fixture reason" in infos[0].message

    def test_missing_probe_is_info_not_error(self):
        report = verify_workcounts(_registry(_variant(triad_kernel, triad_work)),
                                   probes={})
        assert report.ok
        assert [f.rule for f in report.findings] == ["W002"]

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            verify_workcounts(_registry(), probes={}, tolerance=1.0)


# -- acceptance: shipped registry -------------------------------------------

class TestShippedRegistry:
    def test_no_unsuppressed_divergence(self):
        report = verify_workcounts(REGISTRY)
        assert report.ok, report.render_text()

    @pytest.mark.parametrize("kernel", ["matmul", "spmv", "stencil"])
    def test_static_intensity_agrees_with_declared(self, kernel):
        """Acceptance: static AI within tolerance of the declared model."""
        probes = default_probes()
        spec = probes[kernel]
        for variant in REGISTRY.variants_of(kernel):
            est = estimate_registry(REGISTRY, probes,
                                    kernel=kernel).get(variant.qualified_name)
            if est is None or not est.countable:
                continue
            if "workcount_expect" in variant.metadata:
                # the variant itself declares the shadow count is off
                # (e.g. matmul.dot: BLAS flops opaque to the interpreter)
                continue
            _, work_args = spec.build(variant.name)
            declared = variant.work(*work_args)
            # the verifier's tolerance applies per quantity; intensity is
            # their quotient, so its window is the product of the two
            if declared.flops > 0:
                f = max(est.flops / declared.flops, declared.flops / est.flops)
                assert f < 2.0, f"{variant.qualified_name}: flops {f:.2f}x off"
            b = max(est.bytes_total / declared.bytes_total,
                    declared.bytes_total / est.bytes_total)
            assert b < 2.0, f"{variant.qualified_name}: bytes {b:.2f}x off"
            ratio = est.intensity / declared.intensity
            assert 0.25 <= ratio <= 4.0, \
                f"{variant.qualified_name}: static {est.intensity:.3f} " \
                f"vs declared {declared.intensity:.3f}"

    def test_csr_scalar_estimate_is_countable(self):
        probes = default_probes()
        ests = estimate_registry(REGISTRY, probes, kernel="spmv")
        assert ests["spmv.csr_scalar"].countable

    def test_deterministic(self):
        a = verify_workcounts(REGISTRY).to_json()
        b = verify_workcounts(REGISTRY).to_json()
        assert a == b


# -- roofline placement without execution -----------------------------------

class TestStaticRoofline:
    def test_points_plot_without_running_kernels(self):
        points = static_app_points(REGISTRY, kernel="matmul")
        assert points
        for p in points:
            assert isinstance(p, AppPoint)
            assert p.intensity > 0
            assert p.achieved_flops_per_s is None  # model-only: never ran

    def test_from_estimate_matches_from_traffic(self):
        est = WorkEstimate(variant="x", countable=True, flops=100.0,
                           loads_bytes=40.0, stores_bytes=10.0)
        p = AppPoint.from_estimate("x", est)
        assert p.intensity == pytest.approx(2.0)

    def test_points_land_on_a_roofline_model(self):
        from repro.machine import generic_server_cpu
        from repro.roofline import cpu_roofline
        model = cpu_roofline(generic_server_cpu())
        for p in static_app_points(REGISTRY, kernel="stencil"):
            assert model.attainable(p.intensity) > 0
