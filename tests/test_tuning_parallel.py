"""Backend-parallel tuning must be indistinguishable from serial tuning.

The harness promise: a search run with an execution backend attached
produces the *byte-identical* TuningResult (same best config, same history
order, same cached flags, same cache keys) as the serial harness under the
same seed, for any deterministic objective.
"""

import numpy as np
import pytest

from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.tuning import (
    Budget,
    BudgetExhausted,
    CoordinateDescent,
    EvaluationHarness,
    GridSearch,
    IntegerParam,
    RandomSearch,
    SearchSpace,
    SimulatedAnnealing,
    tune,
)


def _objective(config):
    """Deterministic bowl with a unique minimum at (5, 2); module-level so
    the process backend can pickle it."""
    return 1e-3 * ((config["x"] - 5) ** 2 + (config["y"] - 2) ** 2 + 1)


def _space():
    return SearchSpace([IntegerParam("x", low=0, high=8, default_value=4),
                        IntegerParam("y", low=0, high=4, default_value=2)])


def _harness(backend=None, budget=None, cache=None):
    return EvaluationHarness(_objective, kernel="bowl", problem="unit",
                             budget=budget, cache=cache, backend=backend)


STRATEGIES = [GridSearch(), RandomSearch(seed=11, max_samples=15),
              CoordinateDescent(), CoordinateDescent(seed=3),
              SimulatedAnnealing(seed=5, steps=12)]


class TestSerialEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES,
                             ids=lambda s: s.name + str(id(s) % 7))
    def test_thread_backend_history_byte_identical(self, strategy):
        serial = strategy.run(_space(), _harness())
        with ThreadBackend(4) as backend:
            parallel = strategy.run(_space(), _harness(backend=backend))
        assert serial.to_json() == parallel.to_json()
        assert serial.best_config == parallel.best_config

    def test_process_backend_history_byte_identical(self):
        serial = GridSearch().run(_space(), _harness())
        with ProcessBackend(2) as backend:
            parallel = GridSearch().run(_space(), _harness(backend=backend))
        assert serial.to_json() == parallel.to_json()

    def test_tune_entry_point_accepts_backend(self):
        serial = tune(_objective, _space(), GridSearch(), kernel="bowl")
        with ThreadBackend(3) as backend:
            parallel = tune(_objective, _space(), GridSearch(), kernel="bowl",
                            backend=backend)
        assert serial.to_json() == parallel.to_json()
        assert parallel.best_config == {"x": 5, "y": 2}


class TestBudgetSemantics:
    def test_exhaustion_point_identical_to_serial(self):
        serial = GridSearch().run(_space(), _harness(budget=Budget(max_evaluations=7)))
        with ThreadBackend(3) as backend:
            parallel = GridSearch().run(
                _space(), _harness(backend=backend, budget=Budget(max_evaluations=7)))
        assert serial.to_json() == parallel.to_json()
        assert parallel.measurements == 7

    def test_evaluate_many_raises_after_recording_prefix(self):
        with ThreadBackend(2) as backend:
            harness = _harness(backend=backend, budget=Budget(max_evaluations=2))
            with pytest.raises(BudgetExhausted):
                harness.evaluate_many([{"x": i, "y": 0} for i in range(5)])
        assert harness.measurements == 2
        assert len(harness.history) == 2

    def test_cache_hits_are_free_in_batches(self):
        cache = {}
        with ThreadBackend(2) as backend:
            first = _harness(backend=backend, cache=cache)
            GridSearch().run(_space(), first)
            second = _harness(backend=backend, cache=cache,
                              budget=Budget(max_evaluations=1))
            result = GridSearch().run(_space(), second)
        # warm cache: the whole re-search costs zero measurements
        assert second.measurements == 0
        assert result.cache_hits == len(result.history)


class TestBatchSemantics:
    def test_duplicates_within_batch_replay_as_hits(self):
        harness = _harness(backend=SerialBackend())
        config = {"x": 1, "y": 1}
        seconds = harness.evaluate_many([config, config, {"x": 2, "y": 2}])
        assert seconds[0] == seconds[1]
        assert [e.cached for e in harness.history] == [False, True, False]
        assert harness.measurements == 2

    def test_empty_batch_is_a_no_op(self):
        harness = _harness(backend=SerialBackend())
        assert harness.evaluate_many([]) == []
        assert harness.history == []

    def test_without_backend_delegates_to_evaluate(self):
        harness = _harness()
        harness.evaluate_many([{"x": 0, "y": 0}, {"x": 1, "y": 0}])
        assert harness.measurements == 2
        assert [e.cached for e in harness.history] == [False, False]

    def test_nonpositive_objective_rejected_in_batch(self):
        def bad(config):
            return 0.0
        harness = EvaluationHarness(bad, backend=SerialBackend())
        with pytest.raises(ValueError, match="positive"):
            harness.evaluate_many([{"x": 1}])

    def test_result_ordering_deterministic_under_skew(self):
        """Slow evaluations must not reorder the recorded history."""
        import time

        def skewed(config):
            if config["x"] == 0:
                time.sleep(0.02)
            return float(config["x"] + 1)

        with ThreadBackend(4) as backend:
            harness = EvaluationHarness(skewed, backend=backend)
            harness.evaluate_many([{"x": x} for x in range(4)])
        assert [e.config["x"] for e in harness.history] == [0, 1, 2, 3]
        assert [e.seconds for e in harness.history] == [1.0, 2.0, 3.0, 4.0]
