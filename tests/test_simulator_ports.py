"""Tests for repro.simulator.ports and bodies."""

import pytest

from repro.simulator import (
    Instr,
    LoopBody,
    analyze_loop,
    daxpy_body,
    histogram_body,
    matmul_inner_body,
    matmul_inner_unrolled,
    pointer_chase_body,
    reduction_body,
    schedule,
    spmv_inner_body,
    stencil_body,
    triad_body,
)


class TestLoopBodyValidation:
    def test_forward_same_iteration_dep_rejected(self):
        with pytest.raises(ValueError):
            LoopBody((Instr("load", deps=((1, 0),)), Instr("add")))

    def test_out_of_range_dep_rejected(self):
        with pytest.raises(ValueError):
            LoopBody((Instr("load", deps=((5, 1),)),))

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            LoopBody((Instr("load", deps=((0, -1),)),))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoopBody(())

    def test_opcode_mix(self):
        body = triad_body()
        mix = body.opcode_mix()
        assert mix["load"] == 2
        assert mix["store"] == 1


class TestBounds:
    def test_throughput_bound_is_busiest_port(self, table):
        # 4 independent fmadds over 2 FP ports -> 2 cycles/iteration
        body = LoopBody(tuple(Instr("fmadd") for _ in range(4)))
        pa = analyze_loop(body, table)
        assert pa.throughput_cycles == pytest.approx(2.0)

    def test_latency_bound_from_carried_chain(self, table):
        pa = analyze_loop(reduction_body(), table)
        assert pa.latency_cycles == pytest.approx(table.latency("add"))
        assert pa.bound == "latency"

    def test_pointer_chase_latency_bound(self, table):
        pa = analyze_loop(pointer_chase_body(), table)
        assert pa.latency_cycles == pytest.approx(table.latency("load"))

    def test_independent_stream_throughput_bound(self, table):
        pa = analyze_loop(triad_body(), table)
        assert pa.bound == "throughput"

    def test_scheduled_between_bounds(self, table):
        for body in (triad_body(), matmul_inner_body(), spmv_inner_body(),
                     histogram_body(), stencil_body(), daxpy_body()):
            pa = analyze_loop(body, table)
            assert pa.cycles_per_iteration >= pa.throughput_cycles - 1e-9
            assert pa.cycles_per_iteration >= pa.latency_cycles - 0.5

    def test_schedule_monotone_in_iterations(self, table):
        body = matmul_inner_body()
        assert schedule(body, table, 64) > schedule(body, table, 32)


class TestUnrolling:
    def test_unrolling_hides_fma_latency(self, table):
        base = analyze_loop(matmul_inner_body(), table)
        unrolled = analyze_loop(matmul_inner_unrolled(8), table)
        per_elem_base = base.cycles_per_iteration
        per_elem_unrolled = unrolled.cycles_per_iteration / 8
        assert per_elem_unrolled < per_elem_base
        assert base.bound == "latency"
        assert unrolled.bound == "throughput"

    def test_unrolling_converges_to_port_throughput(self, table):
        unrolled = analyze_loop(matmul_inner_unrolled(16), table)
        # 16 fmadds over 2 ports -> 8 cycles... but 32 loads over 2 load
        # ports -> 16 cycles dominate; either way = throughput bound
        assert unrolled.cycles_per_iteration == pytest.approx(
            unrolled.throughput_cycles, rel=0.15)


class TestMicroarchSensitivity:
    def test_narrow_core_slower(self, table, mobile_table):
        for body in (triad_body(), matmul_inner_body()):
            fast = analyze_loop(body, table).cycles_per_iteration
            slow = analyze_loop(body, mobile_table).cycles_per_iteration
            assert slow > fast

    def test_gather_cost_dominates_spmv_on_mobile(self, mobile_table):
        pa = analyze_loop(spmv_inner_body(), mobile_table)
        assert pa.bottleneck_port == "ls"


class TestIssueWidth:
    def test_narrow_issue_slows_schedule(self, table):
        body = LoopBody(tuple(Instr("iadd") for _ in range(8)))
        wide = schedule(body, table, 32)
        narrow = schedule(body, table, 32, issue_width=2)
        assert narrow > wide

    def test_invalid_issue_width(self, table):
        with pytest.raises(ValueError):
            schedule(triad_body(), table, 8, issue_width=0)
