"""Tests for repro.tuning.space."""

import numpy as np
import pytest

from repro.tuning import (
    ChoiceParam,
    Constraint,
    IntegerParam,
    PowerOfTwoParam,
    SearchSpace,
    config_key,
    tiles_fit_cache,
)


class TestParameters:
    def test_integer_values_and_default(self):
        p = IntegerParam("workers", low=1, high=8, step=1)
        assert p.values() == tuple(range(1, 9))
        assert p.default == 1

    def test_integer_step(self):
        p = IntegerParam("n", low=2, high=10, step=4)
        assert p.values() == (2, 6, 10)

    def test_integer_explicit_default(self):
        p = IntegerParam("n", low=1, high=4, default_value=2)
        assert p.default == 2

    def test_integer_default_off_axis_rejected(self):
        with pytest.raises(ValueError):
            IntegerParam("n", low=2, high=10, step=4, default_value=3)

    def test_integer_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            IntegerParam("n", low=5, high=1)

    def test_pow2_values(self):
        p = PowerOfTwoParam("tile", low=4, high=64)
        assert p.values() == (4, 8, 16, 32, 64)

    def test_pow2_rejects_non_power(self):
        with pytest.raises(ValueError):
            PowerOfTwoParam("tile", low=3, high=64)

    def test_choice_order_preserved(self):
        p = ChoiceParam("order", choices=("ikj", "ijk", "jki"))
        assert p.values() == ("ikj", "ijk", "jki")
        assert p.default == "ikj"

    def test_choice_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ChoiceParam("order", choices=("a", "a"))

    def test_index_of(self):
        p = PowerOfTwoParam("tile", low=4, high=16)
        assert p.index_of(8) == 1
        with pytest.raises(ValueError):
            p.index_of(5)


class TestSearchSpace:
    def space(self):
        return SearchSpace([
            PowerOfTwoParam("tile", low=4, high=32),
            IntegerParam("workers", low=1, high=2),
        ])

    def test_enumeration_is_odometer_ordered(self):
        cfgs = list(self.space().configs())
        assert cfgs[0] == {"tile": 4, "workers": 1}
        assert cfgs[1] == {"tile": 4, "workers": 2}
        assert len(cfgs) == 4 * 2

    def test_size_counts_valid_only(self):
        constrained = SearchSpace(
            [PowerOfTwoParam("tile", low=4, high=32)],
            [Constraint("tile <= 16", lambda c: c["tile"] <= 16)],
        )
        assert constrained.size() == 3

    def test_unsatisfiable_constraints_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([IntegerParam("n", low=1, high=3)],
                        [Constraint("impossible", lambda c: False)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([IntegerParam("n", low=1, high=2),
                         IntegerParam("n", low=1, high=2)])

    def test_is_valid(self):
        sp = self.space()
        assert sp.is_valid({"tile": 8, "workers": 2})
        assert not sp.is_valid({"tile": 5, "workers": 2})   # off-axis
        assert not sp.is_valid({"tile": 8})                 # missing param
        assert not sp.is_valid({"tile": 8, "workers": 2, "x": 1})

    def test_default_config_repairs_to_valid(self):
        sp = SearchSpace(
            [PowerOfTwoParam("tile", low=4, high=32, default_value=32)],
            [Constraint("tile <= 8", lambda c: c["tile"] <= 8)],
        )
        assert sp.default_config() == {"tile": 4}

    def test_sample_is_deterministic_under_seed(self):
        sp = self.space()
        a = [sp.sample(np.random.default_rng(7)) for _ in range(5)]
        b = [sp.sample(np.random.default_rng(7)) for _ in range(5)]
        assert a == b

    def test_sample_respects_constraints(self):
        sp = SearchSpace(
            [PowerOfTwoParam("tile", low=4, high=256)],
            [tiles_fit_cache(32 * 1024)],
        )
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert sp.is_valid(sp.sample(rng))

    def test_axis_holds_other_params_fixed(self):
        sp = self.space()
        axis = sp.axis({"tile": 8, "workers": 2}, "tile")
        assert len(axis) == 4
        assert all(c["workers"] == 2 for c in axis)

    def test_neighbors_are_one_step_away(self):
        sp = self.space()
        nbrs = sp.neighbors({"tile": 8, "workers": 1})
        assert {"tile": 4, "workers": 1} in nbrs
        assert {"tile": 16, "workers": 1} in nbrs
        assert {"tile": 8, "workers": 2} in nbrs
        assert len(nbrs) == 3  # workers=0 does not exist

    def test_neighbors_respect_constraints(self):
        sp = SearchSpace(
            [PowerOfTwoParam("tile", low=4, high=32)],
            [Constraint("tile != 16", lambda c: c["tile"] != 16)],
        )
        assert sp.neighbors({"tile": 8}) == [{"tile": 4}]


class TestTilesFitCache:
    def test_classic_matmul_bound(self):
        # 3 * 32^2 * 8B = 24KiB fits a 32KiB L1; 3 * 64^2 * 8B = 96KiB does not
        c = tiles_fit_cache(32 * 1024)
        assert c({"tile": 32})
        assert not c({"tile": 64})

    def test_description_names_the_bound(self):
        assert "L1" not in tiles_fit_cache(1024).description  # generic text
        assert "tile" in tiles_fit_cache(1024).description


class TestConfigKey:
    def test_order_insensitive(self):
        assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})

    def test_distinct_configs_distinct_keys(self):
        assert config_key({"a": 1}) != config_key({"a": 2})
