"""Tests for repro.service.engine — queueing, caching, coalescing, quotas."""

import threading

import pytest

from repro.observe.metrics import MetricsRegistry
from repro.perfdb.store import PerfStore
from repro.service.engine import JobEngine, machine_cache_key
from repro.service.jobs import AdmissionError, JobState
from repro.service.manifest import WorkloadManifest
from repro.service.quota import AdmissionController, TokenBucket


def _engine(tmp_path=None, **over):
    kw = dict(
        store=None if tmp_path is None else PerfStore(tmp_path / "perfdb"),
        workers=2,
        admission=AdmissionController(max_queue_depth=256,
                                      tenant_rate=10_000, tenant_burst=10_000),
        metrics=MetricsRegistry(),
        with_builtins=True,
    )
    kw.update(over)
    return JobEngine(**kw)


def _tiny_matmul(name="tiny-matmul", **over):
    base = dict(name=name, kernel="matmul", variant="ijk",
                args={"n": 4, "seed": 0}, repetitions=1, warmup=0)
    base.update(over)
    return WorkloadManifest(**base)


def _submit_sleep(engine, seconds=0.0, **kw):
    return engine.submit("synthetic-sleep", kind="synthetic",
                         params={"service_seconds": seconds}, **kw)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.try_acquire(now=0.0) == (True, 0.0)
        assert bucket.try_acquire(now=0.0) == (True, 0.0)
        ok, retry = bucket.try_acquire(now=0.0)
        assert not ok and retry == pytest.approx(1.0)
        ok, retry = bucket.try_acquire(now=0.5)
        assert not ok and retry == pytest.approx(0.5)
        assert bucket.try_acquire(now=1.0)[0]

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.try_acquire(now=0.0)
        # a long idle period must not bank more than `burst` tokens
        assert bucket.try_acquire(now=100.0)[0]
        assert bucket.try_acquire(now=100.0)[0]
        assert not bucket.try_acquire(now=100.0)[0]


class TestAdmission:
    def test_queue_backpressure_sheds_with_modeled_retry(self):
        ctl = AdmissionController(max_queue_depth=4)
        admitted, reason, retry = ctl.admit("t", queue_depth=4, drain_rate=10.0)
        assert not admitted
        assert "queue full" in reason
        assert retry == pytest.approx(0.1)

    def test_tenant_quota_is_per_tenant(self):
        ctl = AdmissionController(max_queue_depth=64,
                                  tenant_rate=1.0, tenant_burst=1.0)
        assert ctl.admit("a", 0, now=0.0)[0]
        assert not ctl.admit("a", 0, now=0.0)[0]
        # tenant b has its own bucket
        assert ctl.admit("b", 0, now=0.0)[0]


class TestEngineLifecycle:
    def test_benchmark_job_end_to_end(self, tmp_path):
        with _engine(tmp_path) as engine:
            job = engine.submit(_tiny_matmul(), tenant="alice")
            engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.DONE, job.error
        assert job.result["metrics"]["best_seconds"] > 0
        assert job.wait_seconds is not None and job.wait_seconds >= 0
        assert job.service_seconds > 0
        # the run landed in the submitting tenant's shard
        shards = engine.store.shard_files("alice")
        assert len(shards) == 1
        runs = engine.store.runs(tenant="alice")
        assert len(runs) == 1
        assert any(b.startswith("service/tiny-matmul")
                   for b in runs[0].benchmarks)

    def test_failed_job_reports_error(self):
        bad = WorkloadManifest(name="bad-tune", kernel="matmul",
                               variant="numpy", args={"n": 4},
                               repetitions=1, warmup=0)
        with _engine() as engine:
            # numpy matmul declares no tunables: tune jobs must fail cleanly
            job = engine.submit(bad, kind="tune")
            engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.FAILED
        assert "no tunables" in job.error
        assert engine.metrics.counter("service.jobs_failed").value == 1

    def test_submit_unknown_manifest_name(self):
        engine = _engine()
        with pytest.raises(KeyError, match="no manifest"):
            engine.submit("never-registered")


class TestCache:
    def test_identical_resubmission_is_served_from_cache(self, tmp_path):
        with _engine(tmp_path) as engine:
            first = engine.submit(_tiny_matmul(), tenant="a")
            engine.wait_for(first.job_id, timeout=60.0)
            assert first.state == JobState.DONE
            second = engine.submit(_tiny_matmul(), tenant="b")
        assert second.state == JobState.DONE
        assert second.cached is True
        assert second.result["metrics"] == first.result["metrics"]
        assert engine.metrics.counter("service.cache_hits").value == 1
        assert engine.metrics.counter("service.jobs_executed").value == 1
        # the cached job cost the perfdb nothing new
        assert len(engine.store.runs(tenant="b")) == 0

    def test_different_params_miss_the_cache(self):
        with _engine() as engine:
            a = engine.submit(_tiny_matmul())
            engine.wait_for(a.job_id, timeout=60.0)
            b = engine.submit(_tiny_matmul().with_params(n=6))
            engine.wait_for(b.job_id, timeout=60.0)
        assert not b.cached
        assert engine.metrics.counter("service.jobs_executed").value == 2

    def test_non_cacheable_manifest_never_hits(self):
        with _engine() as engine:
            a = _submit_sleep(engine)
            engine.wait_for(a.job_id, timeout=30.0)
            b = _submit_sleep(engine)
            engine.wait_for(b.job_id, timeout=30.0)
        assert not b.cached
        assert engine.metrics.counter("service.cache_hits").value == 0

    def test_machine_cache_key_is_stable(self):
        assert machine_cache_key() == machine_cache_key()


class TestCoalescing:
    def test_identical_queued_jobs_share_one_execution(self):
        engine = _engine()  # not started: both submissions stay queued
        first = engine.submit(_tiny_matmul(), tenant="a")
        second = engine.submit(_tiny_matmul(), tenant="b")
        assert second.coalesced_with == first.job_id
        with engine:
            engine.wait_for(first.job_id, timeout=60.0)
            engine.wait_for(second.job_id, timeout=60.0)
        assert first.state == second.state == JobState.DONE
        assert first.result["metrics"] == second.result["metrics"]
        assert engine.metrics.counter("service.jobs_executed").value == 1
        assert engine.metrics.counter("service.jobs_coalesced").value == 1
        assert engine.metrics.counter("service.jobs_completed").value == 2

    def test_concurrent_submissions_execute_once_per_distinct_manifest(self):
        """Satellite: N threads, exactly one execution per distinct job."""
        engine = _engine(workers=4)
        distinct = [_tiny_matmul(f"cc-{i}", args={"n": 4 + i, "seed": 0})
                    for i in range(3)]
        jobs, errors = [], []
        barrier = threading.Barrier(12)

        def submit(manifest, tenant):
            barrier.wait()
            try:
                jobs.append(engine.submit(manifest, tenant=tenant))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=submit,
                                    args=(distinct[i % 3], f"t{i}"))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(jobs) == 12
        with engine:
            for job in jobs:
                engine.wait_for(job.job_id, timeout=60.0)
        assert all(j.state == JobState.DONE for j in jobs)
        assert engine.metrics.counter("service.jobs_executed").value == 3
        assert engine.metrics.counter("service.jobs_completed").value == 12
        # every member of a coalition saw the leader's result
        by_hash = {}
        for job in jobs:
            by_hash.setdefault(job.manifest.manifest_hash(),
                               set()).add(str(job.result["metrics"]))
        assert all(len(results) == 1 for results in by_hash.values())


class TestPriorityAndOrder:
    def test_fifo_within_priority_class(self):
        """Satellite: stable FIFO-within-priority execution order."""
        engine = _engine(workers=1)
        priorities = [5, 1, 5, 9, 1, 5]
        jobs = [_submit_sleep(engine, 0.002, priority=p)
                for p in priorities]
        with engine:
            for job in jobs:
                engine.wait_for(job.job_id, timeout=30.0)
        assert all(j.state == JobState.DONE for j in jobs)
        executed = sorted(jobs, key=lambda j: j.started)
        # min-heap on (priority, seq): priority classes ascend, FIFO inside
        assert [j.seq for j in executed] \
            == [j.seq for j in sorted(jobs, key=lambda j: (j.priority, j.seq))]


class TestShedAndCancel:
    def test_queue_full_sheds_with_admission_error(self):
        engine = _engine(admission=AdmissionController(
            max_queue_depth=2, tenant_rate=10_000, tenant_burst=10_000))
        _submit_sleep(engine)
        engine.submit(_tiny_matmul())
        with pytest.raises(AdmissionError) as err:
            engine.submit(_tiny_matmul("other", args={"n": 5}))
        assert err.value.retry_after > 0
        assert engine.metrics.counter("service.jobs_shed").value == 1

    def test_tenant_over_quota_sheds(self):
        engine = _engine(admission=AdmissionController(
            max_queue_depth=256, tenant_rate=1.0, tenant_burst=1.0))
        _submit_sleep(engine, tenant="hog", now=0.0)
        with pytest.raises(AdmissionError, match="over quota"):
            _submit_sleep(engine, tenant="hog", now=0.0)

    def test_cancel_queued_job(self):
        engine = _engine()
        job = engine.submit(_tiny_matmul())
        cancelled = engine.cancel(job.job_id)
        assert cancelled.state == JobState.CANCELLED
        with engine:
            pass  # drain: the cancelled group must be skipped, not run
        assert engine.metrics.counter("service.jobs_executed").value == 0
        assert engine.metrics.counter("service.jobs_cancelled").value == 1

    def test_stats_shape(self):
        with _engine() as engine:
            job = engine.submit(_tiny_matmul())
            engine.wait_for(job.job_id, timeout=60.0)
            stats = engine.stats()
        assert stats["states"][JobState.DONE] == 1
        assert stats["queue_depth"] == 0
        assert 0 <= stats["utilization"] <= 1.0
        assert stats["service_seconds_ewma"] > 0
        assert "tiny-matmul" not in stats["manifests"]  # inline, unregistered
        assert "matmul-small" in stats["manifests"]


class TestBackendPlumbing:
    """Satellite: config["backend"] must reach repro.parallel.backends."""

    def _chunked(self, backend="thread", **over):
        base = dict(name="mm-chunked", kernel="matmul", variant="chunked",
                    args={"n": 32, "seed": 0},
                    config={"backend": backend, "workers": 2},
                    backends=("serial", "thread", "process"),
                    repetitions=1, warmup=0)
        base.update(over)
        return WorkloadManifest(**base)

    def test_thread_backend_executes_and_counter_proves_it(self):
        with _engine() as engine:
            job = engine.submit(self._chunked("thread"))
            job = engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.DONE
        assert job.result["backend"] == "thread"
        assert job.result["backend_workers"] == 2
        assert engine.metrics.counter(
            "service.backend_runs.thread").value == 1

    def test_serial_backend_counter(self):
        with _engine() as engine:
            job = engine.submit(self._chunked("serial"))
            job = engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.DONE
        assert job.result["backend"] == "serial"
        assert engine.metrics.counter(
            "service.backend_runs.serial").value == 1

    def test_default_backend_comes_from_manifest(self):
        # no config["backend"]: the manifest's first allowed backend wins
        manifest = self._chunked(config={"workers": 2},
                                 backends=("serial", "thread"))
        with _engine() as engine:
            job = engine.submit(manifest)
            job = engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.DONE
        assert job.result["backend"] == "serial"

    def test_unavailable_backend_fails_cleanly(self, monkeypatch):
        import repro.parallel.backends as backends_mod

        def broken(name, workers=2):
            raise RuntimeError("no sem_open on this platform")

        monkeypatch.setattr(backends_mod, "make_backend", broken)
        with _engine() as engine:
            job = engine.submit(self._chunked("process"))
            job = engine.wait_for(job.job_id, timeout=60.0)
        assert job.state == JobState.FAILED
        assert "unavailable" in job.error
        # the worker survived the failure and still serves jobs
        with _engine() as engine:
            ok = engine.wait_for(engine.submit(_tiny_matmul()).job_id,
                                 timeout=60.0)
        assert ok.state == JobState.DONE

    def test_backendless_variant_payload_unchanged(self):
        with _engine() as engine:
            job = engine.wait_for(engine.submit(_tiny_matmul()).job_id,
                                  timeout=60.0)
        assert job.state == JobState.DONE
        assert "backend" not in job.result
