"""Tests for network topologies and feature importance."""

import numpy as np
import pytest

from repro.distributed import (
    AlphaBeta,
    FatTree,
    Ring,
    Torus2D,
    effective_network,
)
from repro.statmodel import (
    LinearRegressor,
    RandomForestRegressor,
    importance_report,
    permutation_importance,
    rank_features,
)


class TestRing:
    def test_hops_wrap_around(self):
        r = Ring(16)
        assert r.hops(0, 1) == 1
        assert r.hops(0, 15) == 1
        assert r.hops(0, 8) == 8

    def test_diameter_half(self):
        assert Ring(16).diameter == 8
        assert Ring(15).diameter == 7

    def test_bisection_two(self):
        assert Ring(64).bisection_links() == 2

    def test_average_distance_quarter(self):
        assert Ring(16).average_distance == pytest.approx(64 / 15)


class TestTorus:
    def test_requires_square(self):
        with pytest.raises(ValueError):
            Torus2D(12)

    def test_manhattan_with_wrap(self):
        t = Torus2D(16)  # 4x4
        assert t.hops(0, 5) == 2   # (0,0)->(1,1)
        assert t.hops(0, 15) == 2  # (0,0)->(3,3): wraps both dims
        assert t.hops(0, 10) == 4  # (0,0)->(2,2): the far corner

    def test_diameter_is_side(self):
        assert Torus2D(16).diameter == 4
        assert Torus2D(64).diameter == 8

    def test_better_than_ring(self):
        assert Torus2D(64).diameter < Ring(64).diameter
        assert Torus2D(64).bisection_links() > Ring(64).bisection_links()


class TestFatTree:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            FatTree(12)

    def test_sibling_distance_small(self):
        f = FatTree(16)
        assert f.hops(0, 1) == 2   # via the first-level switch
        assert f.hops(0, 0) == 0

    def test_cross_tree_distance_logarithmic(self):
        f = FatTree(16)
        assert f.hops(0, 15) == 2 * 4

    def test_full_bisection(self):
        assert FatTree(64).bisection_links() == 32


class TestEffectiveNetwork:
    def test_nearest_neighbour_keeps_beta(self):
        link = AlphaBeta(1e-6, 10e9)
        eff = effective_network(Ring(16), link, "nearest-neighbour")
        assert eff.beta == link.beta
        assert eff.alpha == link.alpha

    def test_all_to_all_on_ring_bisection_limited(self):
        link = AlphaBeta(1e-6, 10e9)
        eff = effective_network(Ring(16), link, "all-to-all")
        assert eff.beta == pytest.approx(10e9 * 2 / 8)
        assert eff.alpha > link.alpha  # multi-hop latency

    def test_fat_tree_all_to_all_full_rate(self):
        link = AlphaBeta(1e-6, 10e9)
        eff = effective_network(FatTree(16), link, "all-to-all")
        assert eff.beta == link.beta  # full bisection

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            effective_network(Ring(4), AlphaBeta(1e-6, 1e9), "hotspot")


class TestFeatureImportance:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(1)
        X = rng.random((150, 3))
        y = 4 * X[:, 0] + 0.5 + 0.01 * rng.standard_normal(150)
        return X, y

    def test_informative_feature_ranks_first(self, data):
        X, y = data
        model = LinearRegressor().fit(X, y)
        imp = permutation_importance(model, X, y, seed=2)
        ranked = rank_features(imp, ["a", "b", "c"])
        assert ranked[0][0] == "a"
        assert ranked[0][1] > 10 * max(abs(ranked[1][1]), abs(ranked[2][1]))

    def test_works_on_black_box(self, data):
        X, y = data
        model = RandomForestRegressor(n_trees=15, seed=3).fit(X, y)
        imp = permutation_importance(model, X, y, seed=4)
        assert int(np.argmax(imp)) == 0

    def test_deterministic_by_seed(self, data):
        X, y = data
        model = LinearRegressor().fit(X, y)
        a = permutation_importance(model, X, y, seed=9)
        b = permutation_importance(model, X, y, seed=9)
        assert np.array_equal(a, b)

    def test_report_format(self, data):
        X, y = data
        model = LinearRegressor().fit(X, y)
        text = importance_report(model, X, y, ["a", "b", "c"], seed=5)
        assert "a" in text and "%" in text

    def test_validation(self, data):
        X, y = data
        model = LinearRegressor().fit(X, y)
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError):
            rank_features(np.zeros(3), ["a", "b"])
