"""Tests for the Toolbox facade."""

import pytest

from repro.core import Toolbox
from repro.machine import narrow_mobile_table, student_laptop_cpu


@pytest.fixture(scope="module")
def toolbox():
    return Toolbox.default()


class TestToolbox:
    def test_default_machine(self, toolbox):
        assert toolbox.cpu.name == "generic-server"

    def test_characterization_cached(self, toolbox):
        assert toolbox.characterize() is toolbox.characterize()

    def test_roofline_cached_default(self, toolbox):
        assert toolbox.roofline() is toolbox.roofline()

    def test_roofline_parametrized_not_cached(self, toolbox):
        one_core = toolbox.roofline(cores=1)
        assert one_core is not toolbox.roofline()
        assert one_core.peak_flops < toolbox.roofline().peak_flops

    def test_counter_session_works(self, toolbox):
        from repro.simulator import stream_trace, triad_body

        session = toolbox.counter_session(["PAPI_TOT_CYC"])
        n = 500
        reading = session.count(stream_trace(n, "copy"), triad_body(), n)
        assert reading["PAPI_TOT_CYC"] > 0

    def test_models_consistent_with_machine(self, toolbox):
        from repro.kernels import triad_work

        fm = toolbox.function_model()
        w = triad_work(100_000)
        assert fm.predict_seconds(w) == pytest.approx(
            w.bytes_total / toolbox.characterize().stream_bandwidth)

    def test_ecm_cached(self, toolbox):
        assert toolbox.ecm() is toolbox.ecm()

    def test_summary_mentions_machine(self, toolbox):
        text = toolbox.summary()
        assert "generic-server" in text
        assert "ridge" in text

    def test_custom_machine(self):
        tb = Toolbox(student_laptop_cpu(), narrow_mobile_table())
        assert tb.characterize().peak_flops < Toolbox.default().characterize().peak_flops
