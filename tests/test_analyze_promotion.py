"""NumPy dtype-promotion edge cases through the dataflow abstract domain.

The dataflow tier's ``result_dtype`` fact must match what NumPy actually
produces — including the NEP 50-adjacent corners: mixed float widths,
int-with-float, and *weak* scalar promotion (a Python scalar adapts to the
array dtype instead of widening it).  Each case runs the kernel for real as
ground truth and compares against the statically derived fact.
"""

import numpy as np
import pytest

from repro.analyze.dataflow import dataflow_estimate
from repro.analyze.workcount import ProbeSpec
from repro.kernels.base import KernelVariant
from repro.timing.metrics import WorkCount

N = 16
SEED = 1234


def _work(n):
    return WorkCount(flops=float(n), loads_bytes=8.0 * n, stores_bytes=8.0 * n)


# -- one-op kernels (module level so inspect.getsource sees clean defs) -----

def add_pair(a, b):
    return a + b


def mul_pair(a, b):
    return a * b


def add_scalar_float(a):
    return a + 2.0


def add_scalar_int(a):
    return a + 3


def div_pair(a, b):
    return a / b


def _arr(dtype):
    rng = np.random.default_rng(SEED)
    return rng.random(N).astype(dtype) if np.issubdtype(dtype, np.floating) \
        else rng.integers(1, 10, N).astype(dtype)


def _fact(fn, *dtypes):
    """(static result_dtype, runtime result dtype) for fn over fresh arrays."""
    args = tuple(_arr(d) for d in dtypes)
    variant = KernelVariant(kernel="promotion", name=fn.__name__, fn=fn,
                            work=_work)
    est, _ = dataflow_estimate(variant, tuple(a.copy() for a in args))
    truth = np.asarray(fn(*args)).dtype
    return est, str(truth)


class TestMixedWidthPromotion:
    def test_float32_plus_float64_widens(self):
        est, truth = _fact(add_pair, np.float32, np.float64)
        assert est.analyzable
        assert est.result_dtype == truth == "float64"

    def test_float32_pair_stays_narrow(self):
        est, truth = _fact(mul_pair, np.float32, np.float32)
        assert est.result_dtype == truth == "float32"

    def test_int_times_float_promotes_to_float(self):
        est, truth = _fact(mul_pair, np.int64, np.float64)
        assert est.result_dtype == truth == "float64"

    def test_int32_with_float32_promotes(self):
        est, truth = _fact(add_pair, np.int32, np.float32)
        assert est.result_dtype == truth

    def test_true_division_of_ints_yields_float(self):
        est, truth = _fact(div_pair, np.int64, np.int64)
        assert est.result_dtype == truth == "float64"


class TestWeakScalarPromotion:
    def test_python_float_does_not_widen_float32(self):
        est, truth = _fact(add_scalar_float, np.float32)
        assert est.result_dtype == truth == "float32"

    def test_python_int_does_not_widen_int32(self):
        est, truth = _fact(add_scalar_int, np.int32)
        assert est.result_dtype == truth == "int32"

    def test_python_int_on_float32_stays_float32(self):
        est, truth = _fact(add_scalar_int, np.float32)
        assert est.result_dtype == truth == "float32"


class TestPromotionTrafficFacts:
    def test_widened_result_costs_wider_stores(self):
        narrow, _ = _fact(mul_pair, np.float32, np.float32)
        wide, _ = _fact(add_pair, np.float32, np.float64)
        # same element count, but the widened result is written in 8-byte
        # cells instead of 4-byte ones
        assert wide.moved_stores_bytes > narrow.moved_stores_bytes

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_shape_fact_tracks_probe(self, dtype):
        est, _ = _fact(add_pair, dtype, dtype)
        assert est.result_shape == (N,)
