"""Tests for the adaptive measurement engine (`repro.timing.adaptive`).

All timing here is synthetic: a FakeClock advances by seeded distribution
draws, so stop-time ordering, multimodality flags, determinism, and cap
enforcement are tested exactly — no wall-clock flakiness.
"""

import itertools

import numpy as np
import pytest

from repro.observe import MetricsRegistry, Tracer
from repro.timing import (
    STOP_BUDGET,
    STOP_CONVERGED,
    STOP_MAX_REPETITIONS,
    STOP_MAX_SECONDS,
    MeasurementBudget,
    detect_modes,
    measure,
    measure_adaptive,
    measure_until_stable,
    median_ci,
    rel_ci_half_width,
    sample_summary,
)


class FakeClock:
    """Monotonic virtual clock; the timed fn advances it by seeded draws."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def synthetic_timer(draws):
    """(clock, fn): each fn() call advances the clock by the next draw."""
    clock = FakeClock()
    it = iter(draws)

    def fn():
        clock.t += next(it)

    return clock, fn


def unimodal(seed=0, n=2000, center=1e-3, rel_spread=0.01):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(center, center * rel_spread, n)).tolist()


def heavy_tailed(seed=0, n=2000, center=1e-3, sigma=0.6):
    rng = np.random.default_rng(seed)
    return rng.lognormal(np.log(center), sigma, n).tolist()


def bimodal(seed=0, n=2000, lo=1e-3, hi=2e-3):
    rng = np.random.default_rng(seed)
    draws = np.concatenate([
        np.abs(rng.normal(lo, lo * 0.01, n // 2)),
        np.abs(rng.normal(hi, hi * 0.01, n - n // 2))])
    rng.shuffle(draws)
    return draws.tolist()


class TestStoppingRule:
    def test_stable_timer_stops_at_min_repetitions(self):
        clock, fn = synthetic_timer(unimodal())
        res = measure_adaptive(fn, min_repetitions=5, max_repetitions=60,
                               warmup=2, clock=clock)
        assert len(res.times) == 5
        assert res.stop_reason == STOP_CONVERGED
        assert res.stopped_early
        assert res.stable
        assert res.achieved_rel_ci is not None
        assert res.achieved_rel_ci <= 0.05

    def test_stop_time_ordering_stable_before_heavy_tailed(self):
        clock_s, fn_s = synthetic_timer(unimodal())
        clock_h, fn_h = synthetic_timer(heavy_tailed())
        res_s = measure_adaptive(fn_s, min_repetitions=5, max_repetitions=60,
                                 warmup=2, clock=clock_s)
        res_h = measure_adaptive(fn_h, min_repetitions=5, max_repetitions=60,
                                 warmup=2, clock=clock_h)
        assert len(res_s.times) < len(res_h.times)
        assert res_s.achieved_rel_ci < res_h.achieved_rel_ci

    def test_unconverged_noisy_timer_reports_cap(self):
        clock, fn = synthetic_timer(heavy_tailed(sigma=1.2))
        res = measure_adaptive(fn, rel_ci=0.01, min_repetitions=5,
                               max_repetitions=30, warmup=0, clock=clock)
        assert len(res.times) == 30
        assert res.stop_reason == STOP_MAX_REPETITIONS
        assert not res.stopped_early
        assert not res.stable

    @pytest.mark.parametrize("min_reps,cap", [(1, 1), (2, 7), (5, 13), (3, 4)])
    def test_max_repetitions_never_exceeded(self, min_reps, cap):
        clock, fn = synthetic_timer(heavy_tailed(sigma=1.5))
        res = measure_adaptive(fn, rel_ci=1e-12, min_repetitions=min_reps,
                               max_repetitions=cap, warmup=0, clock=clock)
        assert len(res.times) == cap
        assert res.stop_reason == STOP_MAX_REPETITIONS

    def test_max_seconds_cap(self):
        clock, fn = synthetic_timer(unimodal(rel_spread=0.2))
        res = measure_adaptive(fn, rel_ci=1e-12, min_repetitions=5,
                               max_repetitions=10**6, max_seconds=0.05,
                               warmup=0, clock=clock)
        assert res.stop_reason == STOP_MAX_SECONDS
        # no repetition *starts* after the deadline: with ~1ms draws the
        # engine can overshoot by at most the final call
        assert sum(res.times) <= 0.05 + max(res.times)

    def test_max_seconds_still_yields_one_repetition(self):
        clock, fn = synthetic_timer(itertools.repeat(10.0))
        res = measure_adaptive(fn, rel_ci=1e-12, min_repetitions=5,
                               max_repetitions=50, max_seconds=1.0,
                               warmup=0, clock=clock)
        assert len(res.times) >= 1
        assert res.stop_reason == STOP_MAX_SECONDS

    def test_determinism_under_fixed_seed(self):
        runs = []
        for _ in range(2):
            clock, fn = synthetic_timer(heavy_tailed(seed=7))
            runs.append(measure_adaptive(fn, min_repetitions=5,
                                         max_repetitions=60, warmup=1,
                                         clock=clock))
        a, b = runs
        assert a.times == b.times
        assert a.stop_reason == b.stop_reason
        assert a.achieved_rel_ci == b.achieved_rel_ci
        assert a.sample == b.sample

    def test_validation_errors(self):
        fn = lambda: None  # noqa: E731
        with pytest.raises(ValueError):
            measure_adaptive(fn, rel_ci=0.0)
        with pytest.raises(ValueError):
            measure_adaptive(fn, min_repetitions=0)
        with pytest.raises(ValueError):
            measure_adaptive(fn, min_repetitions=5, max_repetitions=4)
        with pytest.raises(ValueError):
            measure_adaptive(fn, max_seconds=0.0)
        with pytest.raises(ValueError):
            measure_adaptive(fn, warmup=-1)
        with pytest.raises(ValueError):
            measure_adaptive(fn, criterion="mean")
        with pytest.raises(ValueError):
            measure_adaptive(fn, confidence=1.0)
        with pytest.raises(ValueError):
            measure_adaptive(fn, batch=0)

    def test_span_carries_stop_attrs(self):
        tracer = Tracer(metrics=MetricsRegistry())
        clock, fn = synthetic_timer(unimodal())
        measure_adaptive(fn, min_repetitions=5, max_repetitions=60,
                         warmup=1, tracer=tracer, clock=clock)
        top = [s for s in tracer.spans if s.name == "timing.measure_adaptive"]
        assert len(top) == 1
        attrs = top[0].attrs
        assert attrs["stop_reason"] == STOP_CONVERGED
        assert attrs["stopped_early"] is True
        assert attrs["repetitions"] == 5
        assert 0 <= attrs["achieved_rel_ci"] <= 0.05
        assert attrs["multimodal"] is False
        reps = [s for s in tracer.spans if s.name == "timing.repetition"]
        assert len(reps) == 5
        assert all("seconds" in s.attrs for s in reps)

    def test_capture_harvests_adaptive_spans(self):
        from repro.perfdb.capture import harvest_measure_times

        tracer = Tracer(metrics=MetricsRegistry())
        clock, fn = synthetic_timer(unimodal())
        res = measure_adaptive(fn, min_repetitions=5, max_repetitions=60,
                               warmup=1, tracer=tracer, clock=clock)
        harvested = harvest_measure_times(tracer.spans)
        assert harvested == [list(res.times)]


class TestDistributionAwareSummaries:
    def test_unimodal_sample(self):
        s = sample_summary(unimodal(n=60))
        assert not s.multimodal
        assert s.n_modes == 1
        assert s.stable
        assert s.modes[0].n == 60
        assert s.modes[0].weight == 1.0

    def test_bimodal_sample_flags_and_per_mode_medians(self):
        s = sample_summary(bimodal(n=60))
        assert s.multimodal
        assert s.n_modes == 2
        assert not s.stable  # tight CI or not, bimodal is never "stable"
        centers = sorted(m.center for m in s.modes)
        assert centers[0] == pytest.approx(1e-3, rel=0.05)
        assert centers[1] == pytest.approx(2e-3, rel=0.05)
        assert sum(m.n for m in s.modes) == 60
        assert sum(m.weight for m in s.modes) == pytest.approx(1.0)

    def test_adaptive_result_carries_bimodal_sample(self):
        clock, fn = synthetic_timer(bimodal())
        res = measure_adaptive(fn, min_repetitions=40, max_repetitions=60,
                               warmup=0, clock=clock)
        assert res.sample is not None
        assert res.sample.multimodal
        assert not res.stable

    def test_small_samples_never_claim_multimodality(self):
        assert len(detect_modes(bimodal(n=7))) == 1

    def test_constant_sample_is_one_mode(self):
        modes = detect_modes([1e-3] * 20)
        assert len(modes) == 1
        assert modes[0].center == 1e-3

    def test_single_outlier_is_not_a_mode(self):
        times = unimodal(n=29) + [5e-3]
        modes = detect_modes(times)
        assert len(modes) == 1

    def test_detect_modes_deterministic(self):
        times = bimodal(n=50, seed=3)
        assert detect_modes(times) == detect_modes(times)

    def test_heavy_tail_stays_unimodal(self):
        assert len(detect_modes(heavy_tailed(n=60))) == 1


class TestMedianCi:
    def test_degenerate_samples_exact(self):
        assert median_ci([3.0]) == (3.0, 3.0)
        assert median_ci([2.0] * 10) == (2.0, 2.0)
        assert rel_ci_half_width([2.0] * 10) == 0.0

    def test_interval_brackets_median_and_tightens(self):
        small = unimodal(n=10)
        large = unimodal(n=200)
        for sample in (small, large):
            lo, hi = median_ci(sample)
            assert lo <= float(np.median(sample)) <= hi
        assert rel_ci_half_width(large) < rel_ci_half_width(small)

    def test_validation(self):
        with pytest.raises(ValueError):
            median_ci([])
        with pytest.raises(ValueError):
            median_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            median_ci([1.0], n_resamples=0)


class TestMeasurementBudget:
    def test_budget_flows_to_noisy_benchmark(self):
        clock = FakeClock()
        draws = {"stable": iter(unimodal(n=10**4)),
                 "noisy": iter(heavy_tailed(n=10**4, sigma=0.8))}

        def mk(name):
            def fn():
                clock.t += next(draws[name])
            return fn

        mb = MeasurementBudget(max_seconds=0.5, rel_ci=0.05,
                               min_repetitions=5, max_repetitions=200,
                               clock=clock)
        res = mb.run({"stable": mk("stable"), "noisy": mk("noisy")},
                     warmup=1)
        assert len(res["stable"].times) == 5
        assert res["stable"].stop_reason == STOP_CONVERGED
        assert len(res["noisy"].times) > len(res["stable"].times)

    def test_exhausted_budget_reports_stop_budget(self):
        clock = FakeClock()
        it = iter(heavy_tailed(n=10**4, sigma=1.0, center=1e-2))

        def fn():
            clock.t += next(it)

        mb = MeasurementBudget(max_seconds=0.08, rel_ci=1e-6,
                               min_repetitions=3, max_repetitions=10**4,
                               clock=clock)
        res = mb.run({"only": fn}, warmup=0)
        assert res["only"].stop_reason == STOP_BUDGET
        assert len(res["only"].times) >= 1

    def test_every_benchmark_gets_a_result_even_when_budget_tiny(self):
        clock = FakeClock()
        its = {n: iter(itertools.repeat(1.0)) for n in "abc"}

        def mk(name):
            def fn():
                clock.t += next(its[name])
            return fn

        mb = MeasurementBudget(max_seconds=0.001, min_repetitions=5,
                               clock=clock)
        res = mb.run({n: mk(n) for n in "abc"}, warmup=0)
        assert set(res) == set("abc")
        assert all(len(r.times) >= 1 for r in res.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementBudget(max_seconds=0.0)
        with pytest.raises(ValueError):
            MeasurementBudget(max_seconds=1.0, rel_ci=0.0)
        with pytest.raises(ValueError):
            MeasurementBudget(max_seconds=1.0, min_repetitions=0)
        with pytest.raises(ValueError):
            MeasurementBudget(max_seconds=1.0, min_repetitions=5,
                              max_repetitions=4)
        mb = MeasurementBudget(max_seconds=1.0)
        with pytest.raises(ValueError):
            mb.run({})
        with pytest.raises(ValueError):
            mb.run({"a": lambda: None}, warmup=-1)


class TestLegacyWrappers:
    def test_measure_reports_fixed_stop_reason_and_cv(self):
        res = measure(lambda: sum(range(100)), repetitions=5, warmup=1)
        assert res.stop_reason == "fixed"
        assert not res.stopped_early
        assert res.achieved_cv is not None
        assert res.achieved_cv >= 0

    def test_measure_until_stable_exposes_stop_reason(self):
        res = measure_until_stable(lambda: sum(range(100)),
                                   cv_threshold=1e-12, batch=5,
                                   max_repetitions=6, warmup=0)
        assert len(res.times) == 6
        assert res.stop_reason == STOP_MAX_REPETITIONS
        assert res.achieved_cv is not None
        assert res.sample is not None
        converged = measure_until_stable(lambda: sum(range(100)),
                                         cv_threshold=10.0, batch=5,
                                         max_repetitions=60, warmup=0)
        assert converged.stop_reason == STOP_CONVERGED
        assert len(converged.times) == 5
        assert converged.stable

    def test_measure_until_stable_span_attrs(self):
        tracer = Tracer(metrics=MetricsRegistry())
        measure_until_stable(lambda: sum(range(100)), cv_threshold=10.0,
                             batch=5, max_repetitions=60, warmup=1,
                             tracer=tracer)
        top = [s for s in tracer.spans
               if s.name == "timing.measure_until_stable"]
        assert len(top) == 1
        assert top[0].attrs["stop_reason"] == STOP_CONVERGED
        assert "achieved_cv" in top[0].attrs
        assert "achieved_rel_ci" in top[0].attrs
