"""Tests for repro.timing.stats."""

import numpy as np
import pytest

from repro.timing import (
    arithmetic_mean,
    bootstrap_ci,
    coefficient_of_variation,
    confidence_interval,
    geometric_mean,
    harmonic_mean,
    mad_outlier_mask,
    percent_of_peak,
    reject_outliers,
    relative_error,
    speedup,
    summarize,
)


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_harmonic_equals_total_work_over_total_time(self):
        # two runs of 100 units of work at rates 50 and 100 -> 2s + 1s
        rates = [50.0, 100.0]
        assert harmonic_mean(rates) == pytest.approx(200.0 / 3.0)

    def test_harmonic_below_arithmetic(self):
        data = [10.0, 20.0, 90.0]
        assert harmonic_mean(data) < arithmetic_mean(data)

    def test_geometric_of_reciprocal_ratios_is_symmetric(self):
        # geomean(x) * geomean(1/x) == 1 -- the property that makes it the
        # right mean for normalized speedups
        ratios = [2.0, 0.5, 3.0, 1.0 / 3.0]
        assert geometric_mean(ratios) == pytest.approx(1.0)

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_geometric_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_mean([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_mean([1.0, float("nan")])


class TestConfidenceIntervals:
    def test_interval_contains_mean(self):
        data = [1.0, 1.1, 0.9, 1.05, 0.95]
        lo, hi = confidence_interval(data)
        assert lo <= arithmetic_mean(data) <= hi

    def test_single_sample_degenerates(self):
        assert confidence_interval([3.0]) == (3.0, 3.0)

    def test_zero_variance_degenerates(self):
        assert confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_higher_confidence_is_wider(self):
        data = [1.0, 1.2, 0.8, 1.1, 0.9, 1.05]
        lo95, hi95 = confidence_interval(data, 0.95)
        lo99, hi99 = confidence_interval(data, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)

    def test_bootstrap_brackets_median(self):
        rng = np.random.default_rng(0)
        data = rng.lognormal(0, 0.3, 200)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo <= float(np.median(data)) <= hi

    def test_bootstrap_deterministic_given_seed(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(data, seed=7) == bootstrap_ci(data, seed=7)


class TestOutliers:
    def test_flags_obvious_outlier(self):
        data = [1.0, 1.01, 0.99, 1.02, 50.0]
        mask = mad_outlier_mask(data)
        assert mask.tolist() == [False, False, False, False, True]

    def test_no_outliers_in_uniform_data(self):
        assert not mad_outlier_mask([1.0, 1.0, 1.0, 1.0]).any()

    def test_reject_keeps_clean_points(self):
        data = [1.0, 1.01, 0.99, 100.0]
        kept = reject_outliers(data)
        assert len(kept) == 3
        assert 100.0 not in kept

    def test_never_rejects_everything(self):
        kept = reject_outliers([1.0, 2.0])
        assert len(kept) >= 1


class TestDerived:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_speedup_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_relative_error_signed(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(-0.1)

    def test_percent_of_peak(self):
        assert percent_of_peak(50.0, 100.0) == 50.0

    def test_cv_scale_free(self):
        data = [1.0, 1.5, 2.0]
        assert coefficient_of_variation(data) == pytest.approx(
            coefficient_of_variation([10.0, 15.0, 20.0]))


class TestSummarize:
    def test_counts_outliers_but_reports_raw_extremes(self):
        data = [1.0, 1.05, 0.95, 1.0, 30.0]
        s = summarize(data)
        assert s.n == 5
        assert s.n_outliers == 1
        assert s.max == 30.0
        assert s.mean < 2.0  # outlier excluded from mean

    def test_without_outlier_rejection(self):
        data = [1.0, 1.0, 1.0, 30.0]
        s = summarize(data, drop_outliers=False)
        assert s.n_outliers == 0
        assert s.mean > 5.0


class TestMedianRatioCI:
    def test_brackets_the_true_ratio(self):
        from repro.timing import median_ratio_ci

        rng = np.random.default_rng(0)
        base = np.abs(rng.normal(1.0, 0.02, 30))
        cand = np.abs(rng.normal(2.0, 0.04, 30))
        lo, hi = median_ratio_ci(cand, base)
        assert lo < 2.0 < hi
        assert hi - lo < 0.3

    def test_equal_samples_ci_straddles_one(self):
        from repro.timing import median_ratio_ci

        rng = np.random.default_rng(1)
        a = np.abs(rng.normal(1.0, 0.05, 25))
        b = np.abs(rng.normal(1.0, 0.05, 25))
        lo, hi = median_ratio_ci(a, b)
        assert lo < 1.0 < hi

    def test_deterministic_for_fixed_seed(self):
        from repro.timing import median_ratio_ci

        a, b = [1.0, 1.1, 0.9, 1.05], [2.0, 2.2, 1.8, 2.1]
        assert median_ratio_ci(a, b) == median_ratio_ci(a, b)

    def test_validates_inputs(self):
        from repro.timing import median_ratio_ci

        with pytest.raises(ValueError):
            median_ratio_ci([], [1.0])
        with pytest.raises(ValueError):
            median_ratio_ci([1.0], [1.0], confidence=1.5)


class TestChangePoints:
    def test_clean_step_located(self):
        from repro.timing import change_points

        rng = np.random.default_rng(0)
        series = list(rng.normal(1.0, 0.01, 10)) + list(
            rng.normal(1.5, 0.01, 10))
        assert change_points(series) == [10]

    def test_flat_series_has_no_points(self):
        from repro.timing import change_points

        rng = np.random.default_rng(1)
        assert change_points(list(rng.normal(1.0, 0.01, 20))) == []

    def test_two_steps_both_found(self):
        from repro.timing import change_points

        rng = np.random.default_rng(2)
        series = (list(rng.normal(1.0, 0.005, 8))
                  + list(rng.normal(2.0, 0.01, 8))
                  + list(rng.normal(1.2, 0.006, 8)))
        assert change_points(series) == [8, 16]

    def test_small_shift_below_floor_ignored(self):
        from repro.timing import change_points

        series = [1.0] * 10 + [1.02] * 10
        assert change_points(series, min_rel_change=0.05) == []

    def test_short_series_and_validation(self):
        from repro.timing import change_points

        assert change_points([1.0, 2.0, 3.0]) == []
        with pytest.raises(ValueError):
            change_points([1.0] * 10, min_segment=0)
        with pytest.raises(ValueError):
            change_points([1.0] * 10, alpha=2.0)


class TestDegenerateInputs:
    """The stopping rule evaluates these after every batch: no NaN, no raise."""

    def test_cv_single_sample_is_zero(self):
        assert coefficient_of_variation([5.0]) == 0.0

    def test_cv_zero_variance_zero_mean_is_zero(self):
        assert coefficient_of_variation([0.0, 0.0, 0.0]) == 0.0

    def test_cv_zero_mean_with_spread_is_inf(self):
        assert coefficient_of_variation([-1.0, 1.0]) == float("inf")

    def test_cv_zero_variance_is_zero(self):
        assert coefficient_of_variation([2.0] * 7) == 0.0

    def test_bootstrap_ci_single_sample_exact(self):
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_bootstrap_ci_zero_variance_exact(self):
        assert bootstrap_ci([2.0] * 9) == (2.0, 2.0)

    def test_bootstrap_ci_zero_variance_respects_statistic(self):
        assert bootstrap_ci([4.0] * 5, statistic=np.mean) == (4.0, 4.0)

    def test_median_ratio_ci_both_constant_exact(self):
        from repro.timing import median_ratio_ci

        assert median_ratio_ci([2.0], [1.0, 1.0]) == (2.0, 2.0)
        assert median_ratio_ci([3.0] * 4, [1.5] * 6) == (2.0, 2.0)

    def test_median_ratio_ci_one_degenerate_side_is_finite(self):
        from repro.timing import median_ratio_ci

        lo, hi = median_ratio_ci([1.0] * 5, [0.9, 1.0, 1.1, 1.0, 0.95])
        assert np.isfinite(lo) and np.isfinite(hi) and lo <= hi

    def test_summarize_single_sample_no_nan(self):
        s = summarize([1.5])
        assert s.n == 1 and s.cv == 0.0 and s.std == 0.0
        assert s.ci_low == s.ci_high == 1.5
