"""Tests for repro.kernels.matmul."""

import numpy as np
import pytest

from repro.kernels import (
    LOOP_ORDERS,
    matmul_blocked_numpy,
    matmul_loop,
    matmul_numpy,
    matmul_tiled,
    matmul_traffic_lower_bound,
    matmul_work,
    random_matrices,
)


class TestCorrectness:
    @pytest.mark.parametrize("order", LOOP_ORDERS)
    def test_all_loop_orders_agree_with_blas(self, order):
        a, b, c = random_matrices(9, seed=3)
        assert np.allclose(matmul_loop(a, b, c, order), a @ b)

    def test_rectangular(self):
        a, b, c = random_matrices(5, seed=1, m=7, k=3)
        assert np.allclose(matmul_loop(a, b, c, "ikj"), a @ b)

    @pytest.mark.parametrize("tile", [1, 3, 4, 16])
    def test_tiled_all_tile_sizes(self, tile):
        a, b, c = random_matrices(10, seed=2)
        assert np.allclose(matmul_tiled(a, b, c, tile=tile), a @ b)

    def test_tiled_non_dividing_tile(self):
        a, b, c = random_matrices(7, seed=4)
        assert np.allclose(matmul_tiled(a, b, c, tile=3), a @ b)

    def test_blocked_numpy(self):
        a, b, c = random_matrices(20, seed=5)
        assert np.allclose(matmul_blocked_numpy(a, b, c, tile=7), a @ b)

    def test_accumulates_into_c(self):
        a, b, c = random_matrices(4, seed=6)
        c[:] = 1.0
        assert np.allclose(matmul_numpy(a, b, c), a @ b + 1.0)

    def test_invalid_order_rejected(self):
        a, b, c = random_matrices(3)
        with pytest.raises(ValueError):
            matmul_loop(a, b, c, "iik")

    def test_shape_mismatch_rejected(self):
        a, b, _ = random_matrices(3)
        with pytest.raises(ValueError):
            matmul_numpy(a, b, np.zeros((4, 4)))


class TestWorkModel:
    def test_flops_exact(self):
        assert matmul_work(10).flops == 2000.0

    def test_rectangular_flops(self):
        assert matmul_work(2, m=3, k=4).flops == 2 * 2 * 3 * 4

    def test_traffic_charges_each_matrix_once(self):
        w = matmul_work(10)
        assert w.loads_bytes == 8 * 3 * 100
        assert w.stores_bytes == 8 * 100

    def test_intensity_grows_linearly(self):
        # algorithmic AI of square matmul is n/16 for large n
        w = matmul_work(256)
        assert w.intensity == pytest.approx(256 / 16, rel=0.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            matmul_work(0)


class TestIOLowerBound:
    def test_bound_below_naive_traffic(self):
        # the bound must not exceed the traffic of the naive schedule (~n^3)
        n, cache = 128, 32 * 1024
        assert matmul_traffic_lower_bound(n, cache) < 8 * (n ** 3)

    def test_bound_decreases_with_cache_size(self):
        assert (matmul_traffic_lower_bound(128, 1 << 20)
                < matmul_traffic_lower_bound(128, 1 << 15))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            matmul_traffic_lower_bound(0, 1024)
        with pytest.raises(ValueError):
            matmul_traffic_lower_bound(8, 0)


class TestPerformanceShape:
    def test_numpy_much_faster_than_scalar(self):
        # the assignment's punchline: the tuned library is orders of
        # magnitude faster than the interpreted triple loop
        import time

        a, b, c = random_matrices(48, seed=7)
        t0 = time.perf_counter()
        matmul_loop(a, b, c.copy(), "ijk")
        t_loop = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(10):
            matmul_numpy(a, b, c.copy())
        t_np = (time.perf_counter() - t0) / 10
        assert t_loop > 20 * t_np
