"""Tests for performance patterns and their synthetic kernels (assignment 4)."""

import pytest

from repro.counters import (
    PATTERN_KERNELS,
    PATTERNS,
    CounterSession,
    detect,
    diagnose,
    make_pattern_kernel,
)


@pytest.fixture(scope="module")
def session(cpu, table):
    return CounterSession(cpu, table)


class TestCatalogue:
    def test_every_pattern_has_remedy(self):
        for p in PATTERNS:
            assert p.remedy and p.description

    def test_pattern_names_unique(self):
        names = [p.name for p in PATTERNS]
        assert len(names) == len(set(names))

    def test_kernels_cover_detectable_patterns(self):
        detectable = {p.name for p in PATTERNS}
        assert set(PATTERN_KERNELS) <= detectable


@pytest.mark.parametrize("pattern", sorted(PATTERN_KERNELS))
class TestDetection:
    def test_synthetic_kernel_detected_as_intended(self, pattern, cpu, table,
                                                   session):
        k = make_pattern_kernel(pattern, cpu)
        reading = session.count(k.trace, k.body, k.iterations, label=k.name,
                                branch_mispredict_rate=k.mispredict_rate)
        top = detect(reading, cpu)
        assert top.pattern == k.expected_pattern
        assert top.detected, f"{pattern}: score {top.score} below threshold"


class TestDiagnose:
    def test_ranked_descending(self, cpu, session):
        k = make_pattern_kernel("memory-latency-bound", cpu)
        matches = diagnose(session.count(k.trace, k.body, k.iterations), cpu)
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)
        assert len(matches) == len(PATTERNS)

    def test_fix_removes_signature(self, cpu, session):
        """The demonstrate-then-fix loop: the strided kernel's pattern
        disappears when the stride is removed (layout fix)."""
        import numpy as np

        from repro.simulator import Trace, strided_trace
        from repro.simulator.bodies import reduction_body

        n = 40000
        bad = make_pattern_kernel("strided-access", cpu)
        bad_reading = session.count(bad.trace, bad.body, bad.iterations)
        fixed_trace = strided_trace(n, 8, 8 * n)  # unit stride after AoS->SoA
        good_reading = session.count(fixed_trace, reduction_body(), n)
        bad_score = [m for m in diagnose(bad_reading, cpu)
                     if m.pattern == "strided-access"][0].score
        good_score = [m for m in diagnose(good_reading, cpu)
                      if m.pattern == "strided-access"][0].score
        assert bad_score >= 0.5
        assert good_score < 0.2

    def test_unknown_pattern_kernel(self, cpu):
        with pytest.raises(KeyError):
            make_pattern_kernel("quantum-stall", cpu)

    def test_scale_grows_trace(self, cpu):
        small = make_pattern_kernel("bad-speculation", cpu, scale=1)
        large = make_pattern_kernel("bad-speculation", cpu, scale=2)
        assert len(large.trace) == 2 * len(small.trace)
