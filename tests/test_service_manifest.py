"""Tests for repro.service.manifest — declarative workload manifests."""

import json

import pytest

from repro.service.manifest import (
    KNOWN_BACKENDS,
    KNOWN_METRICS,
    ManifestError,
    ManifestRegistry,
    WorkloadManifest,
    builtin_manifests,
)


def _matmul(**over):
    base = dict(name="m", kernel="matmul", variant="numpy",
                args={"n": 16, "seed": 0})
    base.update(over)
    return WorkloadManifest(**base)


class TestValidation:
    def test_valid_manifest_roundtrips(self):
        m = _matmul().validate()
        assert m.slug == "matmul.numpy"
        again = WorkloadManifest.from_dict(m.to_dict()).validate()
        assert again == m

    def test_bad_name_rejected(self):
        with pytest.raises(ManifestError, match="bad manifest name"):
            _matmul(name="a/b").validate()
        with pytest.raises(ManifestError, match="bad manifest name"):
            _matmul(name="").validate()

    def test_unknown_kernel_family_rejected(self):
        with pytest.raises(ManifestError, match="no operand builder"):
            _matmul(kernel="fft").validate()

    def test_unknown_variant_rejected(self):
        with pytest.raises(ManifestError):
            _matmul(variant="no-such-variant").validate()

    def test_unknown_args_rejected(self):
        with pytest.raises(ManifestError, match="do not accept"):
            _matmul(args={"n": 16, "bogus": 1}).validate()

    def test_unknown_metric_rejected(self):
        with pytest.raises(ManifestError, match="unknown metrics"):
            _matmul(metrics=("best_seconds", "flops_per_fortnight")).validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ManifestError, match="backends"):
            _matmul(backends=("quantum",)).validate()

    def test_config_must_be_declared_tunable(self):
        with pytest.raises(ManifestError, match="declared tunables"):
            _matmul(config={"not_a_knob": 3}).validate()

    def test_tiled_tile_config_accepted(self):
        m = _matmul(variant="tiled", config={"tile": 8}).validate()
        assert m.config["tile"] == 8

    def test_bad_measurement_discipline_rejected(self):
        with pytest.raises(ManifestError, match="repetitions"):
            _matmul(repetitions=0).validate()

    def test_bad_tune_budget_rejected(self):
        with pytest.raises(ManifestError, match="max_evaluations"):
            _matmul(tune={"max_evaluations": 0}).validate()

    def test_synthetic_only_sleep_variant(self):
        WorkloadManifest(name="s", kernel="synthetic", variant="sleep",
                         args={"seconds": 0.001}).validate()
        with pytest.raises(ManifestError, match="sleep"):
            WorkloadManifest(name="s", kernel="synthetic",
                             variant="spin").validate()


class TestHash:
    def test_hash_is_stable_and_order_independent(self):
        a = _matmul(args={"n": 16, "seed": 0})
        b = _matmul(args={"seed": 0, "n": 16})
        assert a.manifest_hash() == b.manifest_hash()

    def test_hash_changes_with_content(self):
        assert _matmul(args={"n": 16}).manifest_hash() \
            != _matmul(args={"n": 32}).manifest_hash()

    def test_with_params_derives_new_identity(self):
        m = _matmul()
        bigger = m.with_params(n=64)
        assert bigger.args["n"] == 64
        assert bigger.manifest_hash() != m.manifest_hash()


class TestRegistry:
    def test_register_get_names(self):
        reg = ManifestRegistry()
        reg.register(_matmul())
        assert "m" in reg
        assert reg.names() == ["m"]
        assert reg.get("m").kernel == "matmul"

    def test_duplicate_needs_replace(self):
        reg = ManifestRegistry()
        reg.register(_matmul())
        with pytest.raises(ManifestError, match="already registered"):
            reg.register(_matmul())
        reg.register(_matmul(args={"n": 32}), replace=True)
        assert reg.get("m").args["n"] == 32

    def test_get_unknown_raises_keyerror(self):
        with pytest.raises(KeyError, match="no manifest"):
            ManifestRegistry().get("nope")

    def test_invalid_manifest_never_lands(self):
        reg = ManifestRegistry()
        with pytest.raises(ManifestError):
            reg.register(_matmul(kernel="fft"))
        assert len(reg) == 0

    def test_dump_and_load_dir_roundtrip(self, tmp_path):
        reg = ManifestRegistry()
        reg.register(_matmul())
        reg.register(_matmul(name="m2", args={"n": 32}))
        assert reg.dump(tmp_path) == 2
        doc = json.loads((tmp_path / "m.json").read_text())
        assert doc["kernel"] == "matmul"
        loaded = ManifestRegistry()
        assert loaded.load_dir(tmp_path) == 2
        assert loaded.names() == reg.names()
        assert loaded.get("m2").manifest_hash() == reg.get("m2").manifest_hash()


class TestBuiltins:
    def test_builtins_all_validate(self):
        manifests = builtin_manifests()
        assert len(manifests) >= 5
        for m in manifests:
            m.validate()

    def test_builtin_metrics_and_backends_known(self):
        for m in builtin_manifests():
            assert set(m.metrics) <= set(KNOWN_METRICS)
            assert set(m.backends) <= set(KNOWN_BACKENDS)

    def test_synthetic_builtin_is_not_cacheable(self):
        by_name = {m.name: m for m in builtin_manifests()}
        assert by_name["synthetic-sleep"].cacheable is False


class TestScalarStringFields:
    """Regression: `tuple("thread")` silently splits into characters."""

    def test_from_dict_rejects_string_backends(self):
        doc = _matmul().to_dict()
        doc["backends"] = "thread"
        with pytest.raises(ManifestError, match="bare string"):
            WorkloadManifest.from_dict(doc)

    def test_from_dict_rejects_string_metrics(self):
        doc = _matmul().to_dict()
        doc["metrics"] = "gflops"
        with pytest.raises(ManifestError, match="bare string"):
            WorkloadManifest.from_dict(doc)

    def test_from_dict_message_names_the_field(self):
        doc = _matmul().to_dict()
        doc["backends"] = "thread"
        with pytest.raises(ManifestError, match="'backends'.*'thread'"):
            WorkloadManifest.from_dict(doc)

    def test_constructor_rejects_string_backends(self):
        with pytest.raises(ManifestError, match="sequence of names"):
            _matmul(backends="thread")

    def test_constructor_rejects_string_metrics(self):
        with pytest.raises(ManifestError, match="sequence of names"):
            _matmul(metrics="gflops")

    def test_single_backend_list_still_works(self):
        m = _matmul(backends=["thread"]).validate()
        assert m.backends == ("thread",)
