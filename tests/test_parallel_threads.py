"""Tests for repro.parallel.threads."""

import numpy as np
import pytest

from repro.parallel import (
    SimulatedTeam,
    diagnose_parallel,
    parallel_map,
)


class TestSimulatedTeam:
    def test_region_counters_consistent(self):
        team = SimulatedTeam(4)
        region = team.run_region([1e-4] * 100)
        assert region.threads == 4
        assert region.makespan_seconds >= max(region.per_thread_busy)
        assert region.imbalance == pytest.approx(0.0)

    def test_critical_sections_serialize(self):
        team = SimulatedTeam(4, critical_seconds_per_entry=1e-5)
        free = team.run_region([1e-6] * 100)
        locked = team.run_region([1e-6] * 100, critical_entries=100)
        assert locked.makespan_seconds > free.makespan_seconds + 9e-4

    def test_false_sharing_inflates_busy_time(self):
        team = SimulatedTeam(4, false_sharing_seconds_per_event=1e-6)
        clean = team.run_region([1e-6] * 100)
        dirty = team.run_region([1e-6] * 100, false_sharing_events=1000)
        assert dirty.makespan_seconds > clean.makespan_seconds

    def test_speedup_curve_monotone_until_overheads(self):
        team = SimulatedTeam(8, fork_join_seconds=0.0)
        curve = team.speedup_curve([1e-5] * 800)
        assert curve[1] == pytest.approx(1.0)
        assert curve[8] > curve[2] > curve[1]

    def test_fork_join_caps_speedup_of_tiny_regions(self):
        team = SimulatedTeam(8, fork_join_seconds=1e-3)
        curve = team.speedup_curve([1e-6] * 100)
        assert curve[8] < 1.0  # region smaller than the barrier cost

    def test_rejects_negative_events(self):
        with pytest.raises(ValueError):
            SimulatedTeam(2).run_region([1.0], critical_entries=-1)


class TestParallelDiagnosis:
    def test_imbalance_detected_for_triangular_static(self):
        team = SimulatedTeam(4, fork_join_seconds=0.0)
        costs = np.arange(1, 201, dtype=float) * 1e-6
        region = team.run_region(costs, "static")
        top = diagnose_parallel(region)[0]
        assert top.pattern == "load-imbalance"
        assert top.detected

    def test_dynamic_schedule_clears_imbalance(self):
        team = SimulatedTeam(4, fork_join_seconds=0.0)
        costs = np.arange(1, 201, dtype=float) * 1e-6
        region = team.run_region(costs, "dynamic", chunk=4)
        match = [m for m in diagnose_parallel(region)
                 if m.pattern == "load-imbalance"][0]
        assert not match.detected

    def test_sync_overhead_detected(self):
        team = SimulatedTeam(4, fork_join_seconds=0.0,
                             critical_seconds_per_entry=5e-6)
        region = team.run_region([1e-6] * 200, critical_entries=200)
        top = diagnose_parallel(region)[0]
        assert top.pattern == "synchronization-overhead"
        assert top.detected

    def test_false_sharing_detected(self):
        team = SimulatedTeam(4, fork_join_seconds=0.0,
                             false_sharing_seconds_per_event=5e-6)
        region = team.run_region([1e-6] * 200, false_sharing_events=400)
        top = diagnose_parallel(region)[0]
        assert top.pattern == "false-sharing"
        assert top.detected


class TestParallelMap:
    def test_results_cover_range(self):
        out = parallel_map(lambda lo, hi: (lo, hi), 100, workers=3, chunk=30)
        assert out[0] == (0, 30)
        assert out[-1] == (90, 100)

    def test_sum_correct_with_threads(self):
        a = np.arange(100_000, dtype=float)
        parts = parallel_map(lambda lo, hi: float(a[lo:hi].sum()), a.size,
                             workers=4)
        assert sum(parts) == pytest.approx(a.sum())

    def test_single_worker_serial_path(self):
        calls = []
        parallel_map(lambda lo, hi: calls.append((lo, hi)), 10, workers=1,
                     chunk=5)
        assert calls == [(0, 5), (5, 10)]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            parallel_map(lambda lo, hi: None, 0, 1)
