"""Cross-subsystem tracing: tuning + timing + backends on one timeline.

The observability pitch is a *single* trace spanning the tuning search,
the measurement methodology, and worker-side chunk execution — including
chunks that ran in other processes.  These tests pin that contract.
"""

import json

import pytest

from repro.kernels import matmul_chunked, random_matrices
from repro.microbench import Microbenchmark, run_microbenchmark
from repro.observe import MetricsRegistry, Tracer, chrome_trace, tracing
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.timing import WorkCount, measure
from repro.tuning import (
    Budget,
    EvaluationHarness,
    GridSearch,
    IntegerParam,
    SearchSpace,
    tune,
)


def _objective(config):
    """Module-level deterministic bowl so the process backend can pickle."""
    return 1e-3 * ((config["x"] - 2) ** 2 + 1)


def _timed_objective(config):
    """Objective that itself uses the measurement methodology (module-level
    so process workers can pickle it): its timing spans are captured by the
    worker-side tracer and shipped back."""
    return measure(lambda: sum(range(200)), repetitions=2, warmup=1).best + 1e-9


def _space():
    return SearchSpace([IntegerParam("x", low=0, high=4, default_value=2)])


class TestMeasureSpans:
    def test_measure_emits_one_span_per_repetition(self):
        tracer = Tracer(metrics=MetricsRegistry())
        measure(lambda: None, repetitions=5, warmup=2, tracer=tracer)
        names = [s.name for s in tracer.spans]
        assert names.count("timing.repetition") == 5
        assert names.count("timing.warmup") == 2
        assert names.count("timing.measure") == 1

    def test_repetition_spans_nest_inside_measure(self):
        tracer = Tracer(metrics=MetricsRegistry())
        measure(lambda: None, repetitions=3, warmup=0, tracer=tracer)
        outer = next(s for s in tracer.spans if s.name == "timing.measure")
        reps = [s for s in tracer.spans if s.name == "timing.repetition"]
        assert all(r.parent_id == outer.span_id for r in reps)
        assert all(outer.start <= r.start and r.end <= outer.end for r in reps)
        assert all(r.attrs["seconds"] >= 0 for r in reps)

    def test_disabled_tracer_records_nothing(self):
        with tracing(Tracer(metrics=MetricsRegistry())) as tracer:
            pass  # only checking nothing leaked from other tests
        measure(lambda: None, repetitions=2, warmup=0)
        assert tracer.spans == ()


class TestTuningSpans:
    def test_evaluate_spans_carry_config_and_cache_flag(self):
        tracer = Tracer(metrics=MetricsRegistry())
        h = EvaluationHarness(_objective, kernel="bowl", tracer=tracer)
        h.evaluate({"x": 2})
        h.evaluate({"x": 2})
        spans = [s for s in tracer.spans if s.name == "tuning.evaluate"]
        assert [s.attrs["cached"] for s in spans] == [False, True]
        assert spans[0].attrs["config"] == {"x": 2}
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["tuning.measurements"] == 1
        assert snap["counters"]["tuning.cache_hits"] == 1

    def test_budget_exhaustion_is_counted(self):
        tracer = Tracer(metrics=MetricsRegistry())
        h = EvaluationHarness(_objective, budget=Budget(max_evaluations=1),
                              tracer=tracer)
        h.evaluate({"x": 0})
        with pytest.raises(Exception):
            h.evaluate({"x": 1})
        assert tracer.metrics.snapshot()["counters"]["tuning.budget_exhausted"] == 1

    def test_search_span_wraps_evaluations(self):
        tracer = Tracer(metrics=MetricsRegistry())
        h = EvaluationHarness(_objective, kernel="bowl", tracer=tracer)
        GridSearch().run(_space(), h)
        names = [s.name for s in tracer.spans]
        assert "tuning.search" in names
        search = next(s for s in tracer.spans if s.name == "tuning.search")
        assert search.attrs["strategy"] == "grid"
        evals = [s for s in tracer.spans if s.name == "tuning.evaluate"]
        assert all(search.start <= e.start and e.end <= search.end
                   for e in evals)


class TestBackendReconciliation:
    @pytest.mark.parametrize("backend_cls", [SerialBackend, ThreadBackend])
    def test_chunk_spans_adopted_with_ranks(self, backend_cls):
        with tracing() as tracer:
            with backend_cls(2) as backend:
                out = backend.map(_objective, [{"x": i} for i in range(4)])
        assert len(out) == 4
        chunks = [s for s in tracer.spans if s.name == "backend.chunk"]
        assert len(chunks) == 4
        assert all("rank" in s.attrs for s in chunks)
        assert "backend.map" in {s.name for s in tracer.spans}

    def test_process_chunks_reconciled_across_pids(self):
        with tracing() as tracer:
            with ProcessBackend(2) as backend:
                backend.map(_objective, [{"x": i} for i in range(6)])
        chunks = [s for s in tracer.spans if s.name == "backend.chunk"]
        assert len(chunks) == 6
        parent = next(s for s in tracer.spans if s.name == "backend.map")
        assert any(s.pid != parent.pid for s in chunks)  # really other procs
        ranks = {s.attrs["rank"] for s in chunks}
        assert ranks <= {0, 1} and ranks  # pids/tids mapped to ranks

    def test_worker_ranks_stable_across_map_calls(self):
        with tracing() as tracer:
            with ThreadBackend(1) as backend:
                backend.map(_objective, [{"x": 0}])
                backend.map(_objective, [{"x": 1}])
        chunks = [s for s in tracer.spans if s.name == "backend.chunk"]
        assert {s.attrs["rank"] for s in chunks} == {0}

    def test_disabled_tracing_dispatches_fn_untouched(self):
        with SerialBackend() as backend:
            assert backend.map(_objective, [{"x": 2}]) == [1e-3]

    def test_results_stay_in_input_order_when_traced(self):
        with tracing():
            with ThreadBackend(4) as backend:
                out = backend.map(_objective, [{"x": i} for i in range(8)])
        assert out == [_objective({"x": i}) for i in range(8)]


class TestSingleTraceAcceptance:
    """ISSUE acceptance: one tune() through a backend -> one Chrome trace
    with nested spans from tuning, timing, and worker-side chunks."""

    @pytest.mark.parametrize("backend_cls", [ThreadBackend, ProcessBackend])
    def test_tune_produces_unified_chrome_trace(self, backend_cls, tmp_path):
        with tracing() as tracer:
            with backend_cls(2) as backend:
                result = tune(_timed_objective, _space(), GridSearch(),
                              kernel="traced", backend=backend,
                              budget=Budget(max_evaluations=10))
        assert result.measurements == 5
        kinds = {s.kind for s in tracer.spans}
        assert {"tuning", "timing", "backend"} <= kinds
        # timing spans were captured worker-side, inside chunk spans
        chunks = [s for s in tracer.spans if s.name == "backend.chunk"]
        timing = [s for s in tracer.spans if s.kind == "timing"]
        assert chunks and timing
        assert any(
            c.pid == t.pid and c.tid == t.tid
            and c.start <= t.start and t.end <= c.end
            for c in chunks for t in timing)
        path = tmp_path / "tune.trace.json"
        tracer.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"tuning.search", "tuning.evaluate_many", "backend.map",
                "backend.chunk", "timing.measure",
                "timing.repetition"} <= names


class TestMicrobenchSpans:
    def test_span_tagged_with_operational_intensity(self):
        tracer = Tracer(metrics=MetricsRegistry())
        bench = Microbenchmark(
            name="triad",
            setup=lambda: (list(range(8)),),
            fn=lambda xs: sum(xs),
            work=lambda xs: WorkCount(flops=2.0 * len(xs),
                                      loads_bytes=16.0 * len(xs),
                                      stores_bytes=8.0 * len(xs)))
        run_microbenchmark(bench, repetitions=2, warmup=1, tracer=tracer)
        span = next(s for s in tracer.spans if s.name == "microbench.run")
        assert span.attrs["benchmark"] == "triad"
        assert span.attrs["flops"] == 16.0
        assert span.attrs["bytes"] == 192.0
        assert span.attrs["intensity"] == pytest.approx(16.0 / 192.0)
        assert span.attrs["median_seconds"] >= 0

    def test_traffic_free_kernel_has_no_intensity(self):
        tracer = Tracer(metrics=MetricsRegistry())
        bench = Microbenchmark(name="alu", setup=lambda: (),
                               fn=lambda: None,
                               work=lambda: WorkCount(flops=1.0))
        run_microbenchmark(bench, repetitions=1, warmup=0, tracer=tracer)
        span = next(s for s in tracer.spans if s.name == "microbench.run")
        assert span.attrs["intensity"] is None


class TestChunkedKernelTrace:
    def test_matmul_chunked_through_process_backend_is_traced(self):
        import numpy as np

        a, b, c = random_matrices(32, seed=0)
        with tracing() as tracer:
            matmul_chunked(a, b, c, workers=2, backend="process",
                           inner="numpy")
        assert np.allclose(c, a @ b)
        chunks = [s for s in tracer.spans if s.name == "backend.chunk"]
        assert chunks
        doc = chrome_trace(tracer.spans)
        json.dumps(doc)
