"""Tests for repro.statmodel validation, features, comparison."""

import numpy as np
import pytest

from repro.statmodel import (
    FeaturePipeline,
    LinearRegressor,
    ModelEntry,
    compare_models,
    cross_validate,
    dataset_from_dicts,
    learning_curve,
    mape,
    matmul_feature_pipeline,
    r_squared,
    rmse,
    spmv_feature_pipeline,
    train_test_split,
)


class TestMetrics:
    def test_mape(self):
        assert mape(np.array([1.0, 2.0]), np.array([1.1, 1.8])) == pytest.approx(0.1)

    def test_mape_rejects_zero_truth(self):
        with pytest.raises(ValueError):
            mape(np.array([0.0]), np.array([1.0]))

    def test_rmse(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5))

    def test_r_squared_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_r_squared_mean_predictor_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)


class TestSplitAndCV:
    def test_split_partitions(self):
        X = np.arange(40.0).reshape(-1, 2)
        y = np.arange(20.0)
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.25, seed=0)
        assert len(yte) == 5 and len(ytr) == 15
        assert sorted(np.concatenate([ytr, yte]).tolist()) == y.tolist()

    def test_split_deterministic(self):
        X = np.arange(20.0).reshape(-1, 1)
        y = np.arange(20.0)
        a = train_test_split(X, y, seed=3)[3]
        b = train_test_split(X, y, seed=3)[3]
        assert np.array_equal(a, b)

    def test_cv_runs_all_folds(self):
        rng = np.random.default_rng(0)
        X = rng.random((60, 2))
        y = X @ np.array([1.0, 2.0]) + 0.01 * rng.standard_normal(60)
        result = cross_validate(lambda: LinearRegressor(), X, y, folds=5)
        assert len(result.fold_mape) == 5
        assert result.mean_mape < 0.1

    def test_cv_rejects_too_many_folds(self):
        X = np.zeros((3, 1))
        with pytest.raises(ValueError):
            cross_validate(lambda: LinearRegressor(), X, np.ones(3), folds=10)

    def test_learning_curve_improves_with_data(self):
        rng = np.random.default_rng(1)
        X = rng.random((300, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 1.0 + 0.2 * rng.standard_normal(300)
        curve = learning_curve(lambda: LinearRegressor(), X, y,
                               train_sizes=[5, 50, 200], seed=2)
        assert curve[200] <= curve[5]


class TestFeatures:
    def test_pipeline_transform(self):
        pipe = (FeaturePipeline()
                .add("n", lambda d: d["n"])
                .add("n2", lambda d: d["n"] ** 2))
        X = pipe.transform([{"n": 3.0}, {"n": 4.0}])
        assert X.tolist() == [[3.0, 9.0], [4.0, 16.0]]

    def test_duplicate_feature_rejected(self):
        pipe = FeaturePipeline().add("n", lambda d: d["n"])
        with pytest.raises(ValueError):
            pipe.add("n", lambda d: d["n"])

    def test_non_finite_rejected(self):
        pipe = FeaturePipeline().add("bad", lambda d: float("inf"))
        with pytest.raises(ValueError):
            pipe.transform([{}])

    def test_spmv_pipeline_consumes_matrix_features(self):
        from repro.kernels import matrix_features, random_sparse

        feats = matrix_features(random_sparse(50, density=0.05, seed=1))
        X = spmv_feature_pipeline().transform([feats])
        assert X.shape == (1, 8)
        assert np.all(np.isfinite(X))

    def test_matmul_pipeline_n3(self):
        X = matmul_feature_pipeline().transform([{"n": 10}])
        assert X[0, 2] == 1000.0

    def test_dataset_builder(self):
        pipe = matmul_feature_pipeline()
        X, y = dataset_from_dicts([{"n": 2}, {"n": 4}], [1e-3, 8e-3], pipe)
        assert X.shape == (2, 4)
        assert y.tolist() == [1e-3, 8e-3]

    def test_dataset_rejects_nonpositive_times(self):
        with pytest.raises(ValueError):
            dataset_from_dicts([{"n": 2}], [0.0], matmul_feature_pipeline())


class TestComparison:
    def test_ranks_models(self):
        rng = np.random.default_rng(2)
        X = rng.random((50, 1))
        y = 3 * X[:, 0] + 1
        good = ModelEntry("good", lambda X: 3 * X[:, 0] + 1, "analytical", "y=3x+1")
        bad = ModelEntry("bad", lambda X: np.full(X.shape[0], y.mean()),
                         "statistical")
        result = compare_models([good, bad], X, y)
        assert result.best("mape") == "good"
        assert result.best("r2") == "good"
        assert "y=3x+1" in result.report()

    def test_by_name(self):
        X = np.ones((3, 1))
        y = np.ones(3)
        entry = ModelEntry("m", lambda X: np.ones(X.shape[0]), "analytical")
        result = compare_models([entry], X, y)
        assert result.by_name("m")["mape"] == 0.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ModelEntry("m", lambda X: X, "magical")

    def test_shape_mismatch_rejected(self):
        entry = ModelEntry("m", lambda X: np.ones(99), "analytical")
        with pytest.raises(ValueError):
            compare_models([entry], np.ones((3, 1)), np.ones(3))
