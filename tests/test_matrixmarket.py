"""Tests for Matrix Market I/O."""

import numpy as np
import pytest

from repro.kernels import (
    banded_sparse,
    matrix_market_dumps,
    matrix_market_loads,
    random_sparse,
    read_matrix_market,
    spmv_csr_numpy,
    write_matrix_market,
)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_values_preserved(self, seed):
        coo = random_sparse(25, density=0.08, seed=seed)
        back = matrix_market_loads(matrix_market_dumps(coo))
        assert back.shape == coo.shape
        assert back.nnz == coo.nnz
        assert np.allclose(back.to_dense(), coo.to_dense())

    def test_file_round_trip(self, tmp_path):
        coo = banded_sparse(30, 3, seed=4)
        path = tmp_path / "m.mtx"
        write_matrix_market(coo, path, comment="banded test\nsecond line")
        back = read_matrix_market(path)
        assert np.allclose(back.to_dense(), coo.to_dense())
        text = path.read_text()
        assert text.startswith("%%MatrixMarket matrix coordinate real general")
        assert "% banded test" in text

    def test_rectangular(self):
        coo = random_sparse(8, m=13, density=0.2, seed=5)
        back = matrix_market_loads(matrix_market_dumps(coo))
        assert back.shape == (8, 13)
        assert np.allclose(back.to_dense(), coo.to_dense())

    def test_integer_field(self):
        coo = random_sparse(10, density=0.2, seed=6)
        text = matrix_market_dumps(coo, field="integer")
        back = matrix_market_loads(text)
        assert np.allclose(back.to_dense(), np.round(coo.to_dense()))

    def test_loaded_matrix_is_spmv_ready(self):
        coo = random_sparse(40, density=0.1, seed=7)
        back = matrix_market_loads(matrix_market_dumps(coo))
        x = np.random.default_rng(0).random(40)
        assert np.allclose(spmv_csr_numpy(back.to_csr(), x),
                           coo.to_dense() @ x)


class TestFormats:
    def test_symmetric_mirrored(self):
        text = ("%%MatrixMarket matrix coordinate real symmetric\n"
                "3 3 3\n1 1 2.0\n2 1 1.5\n3 1 -4.0\n")
        dense = matrix_market_loads(text).to_dense()
        assert dense[0, 1] == 1.5 and dense[1, 0] == 1.5
        assert dense[0, 2] == -4.0 and dense[2, 0] == -4.0
        assert dense[0, 0] == 2.0  # diagonal not duplicated

    def test_skew_symmetric_sign(self):
        text = ("%%MatrixMarket matrix coordinate real skew-symmetric\n"
                "2 2 1\n2 1 3.0\n")
        dense = matrix_market_loads(text).to_dense()
        assert dense[1, 0] == 3.0 and dense[0, 1] == -3.0

    def test_skew_symmetric_rejects_diagonal(self):
        text = ("%%MatrixMarket matrix coordinate real skew-symmetric\n"
                "2 2 1\n1 1 3.0\n")
        with pytest.raises(ValueError):
            matrix_market_loads(text)

    def test_pattern_field_ones(self):
        text = ("%%MatrixMarket matrix coordinate pattern general\n"
                "2 3 2\n1 2\n2 3\n")
        dense = matrix_market_loads(text).to_dense()
        assert dense[0, 1] == 1.0 and dense[1, 2] == 1.0

    def test_comments_and_blank_lines_skipped(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% header comment\n\n"
                "2 2 1\n"
                "% mid comment\n"
                "1 1 5.0\n")
        assert matrix_market_loads(text).to_dense()[0, 0] == 5.0


class TestValidation:
    def test_bad_banner(self):
        with pytest.raises(ValueError):
            matrix_market_loads("%%NotMatrixMarket\n1 1 0\n")

    def test_unsupported_field(self):
        with pytest.raises(ValueError):
            matrix_market_loads(
                "%%MatrixMarket matrix coordinate complex general\n1 1 0\n")

    def test_entry_count_mismatch(self):
        with pytest.raises(ValueError):
            matrix_market_loads(
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            matrix_market_loads(
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n")

    def test_empty_payload(self):
        with pytest.raises(ValueError):
            matrix_market_loads("")
