"""Tests for the cloud-variability / straggler extension."""

import pytest

from repro.distributed import (
    AlphaBeta,
    duplicate_execution_gain,
    expected_max_exponential,
    expected_max_uniform,
    simulate_noisy_bsp,
    straggler_slowdown,
)


@pytest.fixture(scope="module")
def net():
    return AlphaBeta(1e-6, 6e9)


class TestAnalyticModels:
    def test_single_rank_no_amplification(self):
        assert expected_max_uniform(1, 0.3) == pytest.approx(1.0)
        assert expected_max_exponential(1, 0.3) == pytest.approx(1.0)

    def test_no_noise_no_amplification(self):
        assert expected_max_uniform(64, 0.0) == 1.0
        assert expected_max_exponential(64, 0.0) == 1.0

    def test_uniform_bounded_by_support(self):
        # even with infinite ranks, U(1-s, 1+s) maxes below 1+s
        assert expected_max_uniform(10_000, 0.3) < 1.3

    def test_exponential_grows_logarithmically(self):
        # H_p grows like log p: doubling p adds ~f·log(2)
        import math

        f = 0.5
        delta = (expected_max_exponential(128, f)
                 - expected_max_exponential(64, f))
        assert delta == pytest.approx(f * (math.log(128) - math.log(64)),
                                      abs=0.01)

    def test_tail_worse_than_bounded_noise_at_scale(self):
        assert (straggler_slowdown(64, "exponential", 0.3)
                > straggler_slowdown(64, "uniform", 0.3))

    def test_monotone_in_ranks(self):
        values = [straggler_slowdown(p, "exponential", 0.3)
                  for p in (2, 8, 32, 128)]
        assert values == sorted(values)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            straggler_slowdown(4, "pareto", 0.1)


class TestSimulation:
    def test_sim_matches_uniform_analytic(self, net):
        p = 8
        measured = simulate_noisy_bsp(p, net, iterations=40, model="uniform",
                                      level=0.3, seed=2)
        predicted = straggler_slowdown(p, "uniform", 0.3)
        assert measured == pytest.approx(predicted, rel=0.1)

    def test_sim_matches_exponential_analytic(self, net):
        p = 8
        measured = simulate_noisy_bsp(p, net, iterations=60,
                                      model="exponential", level=0.4, seed=3)
        predicted = straggler_slowdown(p, "exponential", 0.4)
        assert measured == pytest.approx(predicted, rel=0.2)

    def test_noise_free_simulation_is_unity(self, net):
        assert simulate_noisy_bsp(4, net, model="uniform", level=0.0
                                  ) == pytest.approx(1.0)

    def test_deterministic_by_seed(self, net):
        a = simulate_noisy_bsp(4, net, seed=5)
        b = simulate_noisy_bsp(4, net, seed=5)
        assert a == b


class TestMitigation:
    def test_duplicates_help(self):
        assert duplicate_execution_gain(64, 0.5, replicas=2) > 1.2

    def test_more_replicas_diminishing(self):
        g2 = duplicate_execution_gain(64, 0.5, 2)
        g4 = duplicate_execution_gain(64, 0.5, 4)
        assert g4 > g2
        # diminishing returns in absolute superstep time saved: going
        # 1->2 replicas cuts E[max] by twice what 2->4 cuts
        base = expected_max_exponential(64, 0.5)
        saved_1_2 = base - base / g2
        saved_2_4 = base / g2 - base / g4
        assert saved_2_4 < saved_1_2

    def test_no_noise_no_gain(self):
        assert duplicate_execution_gain(64, 0.0, 2) == pytest.approx(1.0)
