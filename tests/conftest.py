"""Shared fixtures for the test suite."""

import pytest

from repro.machine import (
    generic_server_cpu,
    generic_server_table,
    narrow_mobile_table,
    student_laptop_cpu,
)


@pytest.fixture(scope="session")
def cpu():
    """The default teaching machine."""
    return generic_server_cpu()


@pytest.fixture(scope="session")
def laptop():
    return student_laptop_cpu()


@pytest.fixture(scope="session")
def table():
    return generic_server_table()


@pytest.fixture(scope="session")
def mobile_table():
    return narrow_mobile_table()
