"""Tests for repro.timing.timers."""

import time

import pytest

from repro.timing import (
    Timer,
    measure,
    measure_until_stable,
    steady_state_index,
)


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_nested_timers_independent(self):
        with Timer() as outer:
            with Timer() as inner:
                time.sleep(0.005)
        assert outer.elapsed >= inner.elapsed


class TestMeasure:
    def test_runs_requested_repetitions(self):
        calls = []
        result = measure(lambda: calls.append(1), repetitions=5, warmup=2)
        assert len(calls) == 7
        assert len(result.times) == 5
        assert len(result.warmup_times) == 2

    def test_rate_uses_total_time(self):
        result = measure(lambda: time.sleep(0.002), repetitions=3, warmup=0)
        rate = result.rate(work=100.0)
        assert rate == pytest.approx(300.0 / sum(result.times))

    def test_best_is_minimum(self):
        result = measure(lambda: None, repetitions=5, warmup=0)
        assert result.best == min(result.times)

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repetitions=0)

    def test_rate_rejects_nonpositive_work(self):
        result = measure(lambda: None, repetitions=2, warmup=0)
        with pytest.raises(ValueError):
            result.rate(0)


class TestMeasureUntilStable:
    def test_stops_quickly_for_stable_fn(self):
        result = measure_until_stable(lambda: time.sleep(0.001),
                                      cv_threshold=0.5, batch=3,
                                      max_repetitions=30)
        assert result.stable
        assert len(result.times) <= 30

    def test_respects_budget(self):
        result = measure_until_stable(lambda: None, cv_threshold=1e-12,
                                      batch=2, max_repetitions=6)
        assert len(result.times) <= 6

    def test_budget_is_hard_cap_when_batch_does_not_divide(self):
        """Regression: batch=5, max=6 used to run 10 repetitions — the last
        batch must be clamped so the budget is a hard cap."""
        calls = []
        result = measure_until_stable(lambda: calls.append(1),
                                      cv_threshold=1e-12, batch=5,
                                      max_repetitions=6, warmup=0)
        assert len(result.times) == 6
        assert len(calls) == 6

    @pytest.mark.parametrize("batch,cap", [(2, 7), (5, 13), (3, 4)])
    def test_never_exceeds_max_repetitions(self, batch, cap):
        result = measure_until_stable(lambda: None, cv_threshold=1e-12,
                                      batch=batch, max_repetitions=cap,
                                      warmup=0)
        assert len(result.times) == cap

    def test_rejects_tiny_batch(self):
        with pytest.raises(ValueError):
            measure_until_stable(lambda: None, batch=1)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            measure_until_stable(lambda: None, warmup=-1)


class TestSteadyState:
    def test_detects_warmup_transient(self):
        times = [10.0, 5.0, 1.0, 1.01, 0.99, 1.0, 1.0]
        idx = steady_state_index(times)
        assert idx == 2

    def test_immediately_steady(self):
        assert steady_state_index([1.0, 1.0, 1.0, 1.0]) == 0

    def test_never_steady_returns_length(self):
        times = [float(2 ** i) for i in range(8)]
        assert steady_state_index(times, window=3, tolerance=0.01) == 8

    def test_window_longer_than_series(self):
        assert steady_state_index([1.0, 1.0], window=5) == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            steady_state_index([])
