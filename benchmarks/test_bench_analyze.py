"""Static-analysis gate cost: full-registry sweep time and determinism.

The analyze gate runs in CI on every change, so a full ``analyze all``
sweep — linting, shadow-interpreting, and hazard-scanning every
registered variant — must stay cheap (seconds, not minutes) and its
findings must be bit-identical across runs; a flaky gate is worse than
no gate.  ``REPRO_BENCH_SMOKE=1`` keeps the bound but is already tiny.
"""

import os
import time

from conftest import emit

from repro.analyze import analyze_all
from repro.kernels import REGISTRY

#: wall-clock bound for one full sweep (generous: observed ~2s)
BOUND_S = 60.0 if not os.environ.get("REPRO_BENCH_SMOKE") else 120.0


def _variant_count() -> int:
    return sum(len(REGISTRY.variants_of(k)) for k in REGISTRY.kernels())


def test_bench_analyze_all_under_wall_clock_bound():
    start = time.perf_counter()
    report = analyze_all()
    elapsed = time.perf_counter() - start
    emit("analyze / full-registry sweep",
         f"variants analyzed  {_variant_count()}\n"
         f"findings           {len(report)} ({report.counts()})\n"
         f"wall clock         {elapsed:.2f}s (bound: {BOUND_S:.0f}s)")
    assert report.ok, report.render_text()
    assert elapsed < BOUND_S, f"analyze all took {elapsed:.1f}s"


def test_bench_analyze_findings_deterministic_across_runs():
    first = analyze_all().to_json()
    second = analyze_all().to_json()
    assert first == second, "analysis findings differ between identical runs"
