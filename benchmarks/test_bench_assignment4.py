"""Assignment 4: performance counters and performance patterns.

The assignment: collect detailed counter data for SpMV, then build
synthetic kernels demonstrating performance patterns and show they can be
identified (and fixed) from counter values.  This bench runs the full
demonstrate -> detect -> fix loop over the pattern catalogue.
"""

import numpy as np
from conftest import emit

from repro.counters import (
    PATTERN_KERNELS,
    CounterSession,
    derived_metrics,
    diagnose,
    make_pattern_kernel,
)
from repro.kernels import banded_sparse
from repro.simulator import spmv_csr_trace, spmv_inner_body


def _run_catalogue(cpu, table):
    session = CounterSession(cpu, table)
    results = {}
    for pattern in sorted(PATTERN_KERNELS):
        k = make_pattern_kernel(pattern, cpu)
        reading = session.count(k.trace, k.body, k.iterations, label=k.name,
                                branch_mispredict_rate=k.mispredict_rate)
        results[pattern] = (k, diagnose(reading, cpu))
    return results


def test_bench_assignment4_pattern_catalogue(benchmark, cpu, table):
    results = benchmark.pedantic(_run_catalogue, args=(cpu, table),
                                 rounds=1, iterations=1)

    lines = []
    for pattern, (kernel, matches) in results.items():
        top = matches[0]
        lines.append(f"  {kernel.name:22s} expected={pattern:22s} "
                     f"detected={top.pattern:22s} score={top.score:.2f}")
        lines.append(f"    evidence: {top.evidence}")
        lines.append(f"    remedy  : {top.remedy}")
    emit("Assignment 4: pattern demonstrations", "\n".join(lines))

    for pattern, (kernel, matches) in results.items():
        assert matches[0].pattern == pattern, f"{pattern} misdiagnosed"
        assert matches[0].detected


def test_bench_assignment4_spmv_counters(benchmark, cpu, table):
    """The assignment's chosen kernel: detailed counters for SpMV."""

    def run():
        n = 12_000
        coo = banded_sparse(n, n - 1, fill=6.0 / (2 * n), seed=11)
        session = CounterSession(cpu, table)
        reading = session.count(spmv_csr_trace(coo), spmv_inner_body(),
                                coo.nnz, label="spmv-csr")
        return reading, derived_metrics(reading, cpu)

    reading, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Assignment 4: SpMV counter profile",
         reading.report() + "\n" + "\n".join(
             f"  {k:28s} {v:10.4f}" for k, v in sorted(metrics.items())))

    # SpMV's signature: irregular gathers miss in L1 while the streams hit,
    # and the kernel is nowhere near the FP units' capability
    assert metrics["l1_miss_ratio"] > 0.1
    assert metrics["ipc"] < 2.5
    assert metrics["flops_per_cycle"] < 1.0


def test_bench_assignment4_fix_loop(benchmark, cpu, table):
    """Demonstrate -> detect -> fix: the strided kernel, then its layout fix.

    Both versions run the same *vectorized* sum body (a latency-chained
    scalar loop would hide the bandwidth difference behind the FP-add
    recurrence); only the access pattern changes, as an AoS->SoA fix would.
    """
    from repro.simulator import strided_trace, triad_body

    def run():
        session = CounterSession(cpu, table)
        bad = make_pattern_kernel("strided-access", cpu)
        n = bad.iterations
        body = triad_body(vectorized=True)
        lanes = cpu.vector.lanes(8)
        bad_reading = session.count(bad.trace, body, max(1, n // lanes))
        fixed = strided_trace(n, 8, 8 * n)
        good_reading = session.count(fixed, body, max(1, n // lanes))
        return (diagnose(bad_reading, cpu)[0],
                diagnose(good_reading, cpu),
                bad_reading.simulation.seconds,
                good_reading.simulation.seconds)

    bad_top, good_matches, bad_s, good_s = benchmark.pedantic(
        run, rounds=1, iterations=1)
    good_strided = [m for m in good_matches if m.pattern == "strided-access"][0]
    emit("Assignment 4: demonstrate-detect-fix (strided access)",
         f"  before: {bad_top.pattern} score={bad_top.score:.2f}; "
         f"time {bad_s:.3e}s\n"
         f"  after : strided score={good_strided.score:.2f}; "
         f"time {good_s:.3e}s ({bad_s / good_s:.1f}x faster)")
    assert bad_top.pattern == "strided-access" and bad_top.detected
    assert not good_strided.detected
    assert good_s < bad_s  # the fix also helps wall-clock
