"""Figure 1: students enrolled / passing / evaluation respondents per year.

Regenerates the figure's three series from DATA-1 (SW-2's job) and checks
the totals the paper states in prose: 146 enrolled, 93 passed, 41
respondents, evaluations missing in 2019 and 2022.
"""

from conftest import emit

from repro.course import figure1_series, figure1_text, totals


def test_bench_figure1(benchmark):
    series = benchmark(figure1_series)

    assert series["year"] == list(range(2017, 2024))
    assert sum(series["total_enrolled"]) == 146
    assert sum(series["passing_grades"]) == 93
    assert sum(r for r in series["evaluation_respondents"] if r) == 41
    assert series["evaluation_respondents"][2] is None  # 2019
    assert series["evaluation_respondents"][5] is None  # 2022
    # the figure's visual shape: enrollment roughly triples over the years
    assert series["total_enrolled"][-1] >= 2 * series["total_enrolled"][0]
    # passing is always below enrollment (15-50% dropout)
    for e, p in zip(series["total_enrolled"], series["passing_grades"]):
        assert 0.5 * e <= p <= 0.85 * e

    emit("Figure 1 (SW-2 output)", figure1_text())
