"""Figure 2: the artifact dependency graph.

Rebuilds the dependency DAG, validates it against the paper's stated
dependencies (DATA-1 -> SW-2 -> Figure 1; DATA-2 -> SW-3 -> Table 2), and
prints the reproduction order.
"""

from conftest import emit

from repro.course import (
    artifact_graph,
    figure2_text,
    inputs_for,
    reproduction_order,
    validate_graph,
)


def test_bench_figure2(benchmark):
    graph = benchmark(artifact_graph)

    assert graph.number_of_nodes() == 10
    assert validate_graph() == []
    assert inputs_for("Figure 1") == {"DATA-1", "SW-2"}
    assert inputs_for("Table 2") == {"DATA-2", "SW-3"}
    order = reproduction_order()
    assert order.index("DATA-1") < order.index("Figure 1")
    assert order[-1] == "LaTeX Paper"

    emit("Figure 2 (artifact dependency graph)", figure2_text())
