"""The perf-gate's own benchmark suite + the record-overhead bound.

Three small kernel benchmarks measured with the toolbox's own
``timing.measure`` — these are what ``python -m repro.perfdb record``
captures for the longitudinal store and what the CI ``perf-gate-smoke``
job gates on.  ``REPRO_PERFDB_INJECT=<factor>`` multiplies the matmul
benchmark's work: the artificial slowdown hook CI uses to prove the gate
actually fires (a 3x injection must produce a nonzero ``compare`` exit).

The last bench is the acceptance bound: recording (a capture tracer around
the test plus the span harvest) must add < 5% over the bare benchmark —
the same contract PR 3 pinned for disabled tracing, now for the *enabled*
capture path, so ``record`` never distorts the numbers it stores.

``REPRO_BENCH_SMOKE=1`` shrinks sizes for CI.
"""

import os

import numpy as np
import pytest
from conftest import emit

from repro.observe import MetricsRegistry, Tracer, tracing
from repro.perfdb.capture import harvest_measure_times
from repro.timing import measure, measure_adaptive

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: The CI gate's artificial-slowdown hook: repeat the matmul this many times.
INJECT = max(1, int(os.environ.get("REPRO_PERFDB_INJECT", "1") or "1"))

# Gate kernels are sized to ~0.5ms: sub-0.1ms kernels show tens-of-percent
# median drift *between process invocations*, which would make the
# back-to-back determinism contract (compare exits 0) flaky.
N = 256 if SMOKE else 384
REPS = 11 if SMOKE else 15
# Adaptive sampling: REPS becomes the per-benchmark cap; a quiet machine
# stops at MIN_REPS.  The floor is 5 so each pooled pass alone satisfies
# the Mann-Whitney >= 4-samples-per-side requirement of the compare gate.
MIN_REPS = 5
ROUNDS = 3


def test_bench_gate_matmul():
    """Dense matmul — carries the REPRO_PERFDB_INJECT slowdown hook."""
    a = np.random.default_rng(0).random((N, N))

    def kernel():
        out = None
        for _ in range(INJECT):
            out = a @ a
        return out

    res = measure_adaptive(kernel, min_repetitions=MIN_REPS,
                           max_repetitions=REPS, warmup=2)
    emit("perfdb gate / matmul",
         f"{N}x{N} matmul x{INJECT}: median {res.summary.median:.4e}s "
         f"cv {res.summary.cv:.2%}, {len(res.times)} reps ({res.stop_reason})")
    assert res.best > 0


def test_bench_gate_histogram():
    values = np.random.default_rng(1).integers(0, 256, size=N * N * 8)
    res = measure_adaptive(lambda: np.bincount(values, minlength=256),
                           min_repetitions=MIN_REPS, max_repetitions=REPS,
                           warmup=2)
    emit("perfdb gate / histogram",
         f"{values.size} values: median {res.summary.median:.4e}s, "
         f"{len(res.times)} reps ({res.stop_reason})")
    assert res.best > 0


def test_bench_gate_stencil():
    grid = np.random.default_rng(2).random((N * 3, N * 3))

    def kernel():
        return (grid[1:-1, 1:-1] + grid[:-2, 1:-1] + grid[2:, 1:-1]
                + grid[1:-1, :-2] + grid[1:-1, 2:]) * 0.2

    res = measure_adaptive(kernel, min_repetitions=MIN_REPS,
                           max_repetitions=REPS, warmup=2)
    emit("perfdb gate / stencil",
         f"{grid.shape} 5-point stencil: median {res.summary.median:.4e}s, "
         f"{len(res.times)} reps ({res.stop_reason})")
    assert res.best > 0


@pytest.mark.perfdb_skip  # meta-benchmark: measures the capture path itself
def test_bench_record_capture_overhead():
    """Acceptance: the record capture path adds < 5% over bare measure()."""
    a = np.random.default_rng(0).random((N, N))
    fn = lambda: a @ a  # noqa: E731
    for _ in range(3):  # warm caches and BLAS threads
        fn()

    def bare():
        return measure(fn, repetitions=REPS, warmup=0).best

    def captured():
        # exactly what PerfCapturePlugin does around one test
        tracer = Tracer(metrics=MetricsRegistry())
        with tracing(tracer):
            best = measure(fn, repetitions=REPS, warmup=0).best
        sampled = harvest_measure_times(tracer.spans)
        assert sampled and len(sampled[0]) == REPS
        return best

    # interleave rounds so machine drift hits both paths equally
    bare_best, captured_best = [], []
    for _ in range(ROUNDS):
        bare_best.append(bare())
        captured_best.append(captured())
    overhead = min(captured_best) / min(bare_best) - 1.0
    emit("perfdb / record capture overhead on measure()",
         f"kernel: {N}x{N} matmul, {REPS} reps x {ROUNDS} rounds\n"
         f"bare best     {min(bare_best):.4e}s\n"
         f"captured best {min(captured_best):.4e}s\n"
         f"overhead      {overhead:+.2%} (bound: +5%)")
    assert overhead < 0.05, f"record capture overhead {overhead:+.2%}"
