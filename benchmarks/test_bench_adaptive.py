"""Meta-benchmarks: the adaptive engine's wall-clock and power claims.

The tentpole acceptance experiment, seeded end to end.  The workload is a
busy-wait "kernel" with deterministic seeded jitter, so per-repetition
cost is controlled and wall-clock ratios track repetition-count ratios:

* the perfdb record+gate cycle (multi-pass capture pooled into a
  :class:`~repro.perfdb.record.RunRecord`, then ``compare_runs``) must be
  >= 3x faster under adaptive sampling, at equal-or-better detection
  power — an injected 3x slowdown is still caught and a clean repeat
  still passes the gate;
* a representative tuning search under the adaptive objective must pick
  the same winner as the fixed-repetition baseline under the same seed,
  with strictly fewer timed calls and >= 3x less wall-clock.

All tests are ``perfdb_skip``: they measure the measurement stack itself,
not a kernel.  ``REPRO_BENCH_SMOKE=1`` shrinks the busy-wait base.
"""

import os
import time

import numpy as np
import pytest
from conftest import emit

from repro.perfdb.compare import compare_runs
from repro.perfdb.record import RunRecord
from repro.timing import measure, measure_adaptive, rel_ci_half_width
from repro.tuning import RandomSearch, adaptive_objective, timed_objective, tune
from repro.tuning.space import ChoiceParam, SearchSpace

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Busy-wait base cost per timed call.  Big enough that the engine's own
#: bootstrap arithmetic is negligible next to the "kernel" being timed.
BASE = 2e-3 if SMOKE else 3e-3

#: The pre-adaptive convention this PR replaces: 3 pooled passes of
#: REPS fixed repetitions (+1 warmup) per benchmark per pass.
PASSES, REPS, WARMUP = 3, 15 if SMOKE else 19, 1
MIN_REPS, MIN_PASSES, REL_CI = 5, 2, 0.05

#: Tuning repetition cap, shared by both search baselines.  A fixed-rep
#: sweep has to budget every evaluation for the *noisiest* one (a single
#: scheduler spike inflates a small sample), so its per-config cost is
#: the cap; the adaptive objective escalates past ``min_repetitions``
#: only when a spike actually lands.
TUNE_REPS = 23 if SMOKE else 29

#: Gate-cycle benchmarks: name -> cost factor over BASE.
BENCHES = {"alpha": 1.0, "beta": 1.4, "gamma": 0.7}


def make_kernel(factor, seed, calls):
    """Busy-wait kernel: seeded ~1% jitter, counts its own invocations."""
    rng = np.random.default_rng(seed)

    def kernel():
        calls[0] += 1
        target = BASE * factor * (1.0 + 0.01 * rng.random())
        end = time.perf_counter() + target
        while time.perf_counter() < end:
            pass

    return kernel


def fixed_cycle(inject=1.0, seed=0):
    """The old record discipline: PASSES passes x REPS fixed repetitions."""
    calls = [0]
    samples = {}
    for p in range(PASSES):
        for name, factor in BENCHES.items():
            k = make_kernel(factor * (inject if name == "alpha" else 1.0),
                            seed + hash(name) % 1000 + p, calls)
            res = measure(k, repetitions=REPS, warmup=WARMUP)
            samples.setdefault(name, []).extend(res.times)
    return samples, calls[0]


def adaptive_cycle(inject=1.0, seed=0):
    """The new discipline: adaptive per-benchmark sampling inside each
    pass, plus the pass-level sequential stop (min MIN_PASSES passes,
    stop once every pooled benchmark's median is pinned to REL_CI)."""
    calls = [0]
    samples = {}
    for p in range(PASSES):
        for name, factor in BENCHES.items():
            k = make_kernel(factor * (inject if name == "alpha" else 1.0),
                            seed + hash(name) % 1000 + p, calls)
            res = measure_adaptive(k, rel_ci=REL_CI,
                                   min_repetitions=MIN_REPS,
                                   max_repetitions=REPS, warmup=WARMUP)
            samples.setdefault(name, []).extend(res.times)
        if p + 1 >= MIN_PASSES:
            worst = max(rel_ci_half_width(ts) for ts in samples.values())
            if worst <= REL_CI:
                break
    return samples, calls[0]


def record_of(samples, label):
    # machine={} skips the fingerprint + calibration probe: this
    # experiment compares identical synthetic kernels on one machine
    return RunRecord.new(samples, label=label, machine={})


@pytest.mark.perfdb_skip  # meta-benchmark: measures the measurement stack
def test_bench_adaptive_record_gate_cycle():
    """Acceptance: >=3x wall-clock cut on record+gate, equal power."""
    t0 = time.perf_counter()
    fixed_base, fixed_calls = fixed_cycle(seed=0)
    fixed_cand, _ = fixed_cycle(seed=100)
    fixed_wall = time.perf_counter() - t0
    fixed_gate = compare_runs(record_of(fixed_cand, "fixed-cand"),
                              record_of(fixed_base, "fixed-base"))

    t0 = time.perf_counter()
    adapt_base, adapt_calls = adaptive_cycle(seed=0)
    adapt_cand, _ = adaptive_cycle(seed=100)
    adapt_wall = time.perf_counter() - t0
    adapt_gate = compare_runs(record_of(adapt_cand, "adapt-cand"),
                              record_of(adapt_base, "adapt-base"))

    speedup = fixed_wall / adapt_wall
    emit("adaptive / record+gate cycle",
         f"fixed:    {fixed_calls} timed calls, {fixed_wall:.3f}s, "
         f"clean gate {'PASS' if fixed_gate.ok else 'FAIL'}\n"
         f"adaptive: {adapt_calls} timed calls, {adapt_wall:.3f}s, "
         f"clean gate {'PASS' if adapt_gate.ok else 'FAIL'}\n"
         f"wall-clock reduction {speedup:.2f}x (target >= 3x)")
    # equal-or-better power, clean side: adaptive repeat passes the gate
    assert adapt_gate.ok, adapt_gate.report()
    assert adapt_calls < fixed_calls
    assert speedup >= 3.0, f"only {speedup:.2f}x"


@pytest.mark.perfdb_skip  # meta-benchmark: measures the measurement stack
def test_bench_adaptive_gate_detection_power():
    """Acceptance: the injected 3x slowdown is still caught adaptively."""
    base_samples, _ = adaptive_cycle(seed=0)
    slow_samples, _ = adaptive_cycle(inject=3.0, seed=100)
    gate = compare_runs(record_of(slow_samples, "injected"),
                        record_of(base_samples, "baseline"))
    flagged = {r.benchmark_id for r in gate.regressions}
    alpha = next(r for r in gate.results if r.benchmark_id == "alpha")
    emit("adaptive / injected-regression detection",
         f"injected 3x on 'alpha': gate "
         f"{'FAIL (regression caught)' if not gate.ok else 'PASS (missed!)'}\n"
         f"alpha ratio {alpha.ratio:.2f} "
         f"ci {alpha.ratio_ci} achieved rel ci "
         f"{alpha.achieved_rel_ci:.1%}\n"
         f"flagged: {sorted(flagged)}")
    assert not gate.ok
    assert flagged == {"alpha"}
    assert alpha.ratio == pytest.approx(3.0, rel=0.25)
    # the gate's new annotation: the verdict's effect size is pinned tight
    assert alpha.achieved_rel_ci is not None and alpha.achieved_rel_ci < 0.10


@pytest.mark.perfdb_skip  # meta-benchmark: measures the measurement stack
def test_bench_adaptive_tuning_search():
    """Acceptance: same winner, strictly fewer repetitions, >=3x faster."""
    factors = {"fast": 1.0, "mid": 1.4, "slow": 1.9, "worst": 2.6}
    space = SearchSpace([ChoiceParam("variant", choices=sorted(factors))])

    def run_search(objective_builder):
        calls = [0]
        kernels = {name: make_kernel(f, seed=42, calls=calls)
                   for name, f in factors.items()}
        fn = lambda variant: kernels[variant]()  # noqa: E731
        objective = objective_builder(fn)
        t0 = time.perf_counter()
        result = tune(objective, space, RandomSearch(seed=0, max_samples=8))
        return result, calls[0], time.perf_counter() - t0

    fixed_res, fixed_calls, fixed_wall = run_search(
        lambda fn: timed_objective(fn, setup=lambda cfg: (),
                                   warmup=WARMUP, repetitions=TUNE_REPS))
    adapt_res, adapt_calls, adapt_wall = run_search(
        lambda fn: adaptive_objective(fn, setup=lambda cfg: (),
                                      rel_ci=REL_CI, min_repetitions=3,
                                      max_repetitions=TUNE_REPS,
                                      warmup=WARMUP))
    speedup = fixed_wall / adapt_wall
    emit("adaptive / tuning search",
         f"fixed:    winner {fixed_res.best_config} after {fixed_calls} "
         f"timed calls, {fixed_wall:.3f}s\n"
         f"adaptive: winner {adapt_res.best_config} after {adapt_calls} "
         f"timed calls, {adapt_wall:.3f}s\n"
         f"wall-clock reduction {speedup:.2f}x (target >= 3x)")
    assert adapt_res.best_config == fixed_res.best_config
    assert adapt_calls < fixed_calls
    assert speedup >= 3.0, f"only {speedup:.2f}x"
