"""Shared fixtures and reporting helpers for the benchmark harness.

Every module here regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  Benchmarks both *time* the regeneration
(pytest-benchmark) and *print* the regenerated rows/series so the harness
output can be compared side by side with the paper; EXPERIMENTS.md records
that comparison.
"""

import pytest

from repro.machine import generic_server_cpu, generic_server_table
from repro.perfdb.capture import install_capture


def pytest_configure(config):
    # `python -m repro.perfdb record` sets REPRO_PERFDB_CAPTURE and reruns
    # this suite; the capture plugin then harvests every test's raw
    # measure() repetition times (and pytest-benchmark rounds) into the
    # perf store.  Without the env var this is a no-op.
    install_capture(config)


@pytest.fixture(scope="session")
def cpu():
    return generic_server_cpu()


@pytest.fixture(scope="session")
def table():
    return generic_server_table()


def emit(title: str, text: str) -> None:
    """Print a labelled artifact block into the benchmark log."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{text}")
