"""Scale-out topic: collective algorithm crossovers and scaling curves.

Regenerates the distributed lectures' canonical results on the DAS-5-like
network model: the small/large-message algorithm switch inside collectives,
strong scaling of a distributed matvec (mini-MPI simulation), weak scaling
of a halo-exchange stencil, and a VAMPIR-style timeline.
"""

import pytest
from conftest import emit

from repro.distributed import (
    MPISimulator,
    alpha_beta_from_cluster,
    best_algorithm,
    bsp_iterations,
    distributed_matvec,
    halo_exchange_stencil,
    matvec_scaling_model,
    strong_scaling,
    timeline_text,
    weak_scaling,
)
from repro.distributed import stencil_scaling_model
from repro.machine import das5_cluster


def _collective_crossover(net):
    rows = []
    for m in (64, 1024, 16 * 1024, 256 * 1024, 4 * 1024 * 1024):
        bcast = best_algorithm("broadcast", net, 64, m)
        allred = best_algorithm("allreduce", net, 64, m)
        rows.append((m, bcast, allred))
    return rows


def test_bench_distributed_collectives(benchmark):
    net = alpha_beta_from_cluster(das5_cluster())
    rows = benchmark.pedantic(_collective_crossover, args=(net,),
                              rounds=1, iterations=1)

    lines = [f"  m={m:>9d}B  bcast->{b[0]:18s} ({b[1] * 1e6:9.1f}us)  "
             f"allreduce->{a[0]:18s} ({a[1] * 1e6:9.1f}us)"
             for m, b, a in rows]
    emit("Distributed: collective algorithm crossover (p=64)", "\n".join(lines))

    # small messages: latency-optimal algorithms win
    assert rows[0][1][0] == "binomial"
    assert rows[0][2][0] == "recursive-doubling"
    # large messages: bandwidth-optimal algorithms win
    assert rows[-1][1][0] == "scatter-allgather"
    assert rows[-1][2][0] == "ring"


def test_bench_distributed_matvec_strong_scaling(benchmark):
    """Simulated (DES) and modelled strong scaling must agree in shape."""
    net = alpha_beta_from_cluster(das5_cluster())

    def run():
        des = {}
        for p in (1, 2, 4, 8, 16):
            result = MPISimulator(p, net).run(
                distributed_matvec(1024, 5, seconds_per_flop=2e-10))
            des[p] = result.makespan
        model = matvec_scaling_model(1024, net, 2e-10)
        modelled = strong_scaling(model, [1, 2, 4, 8, 16])
        return des, modelled

    des, modelled = benchmark.pedantic(run, rounds=1, iterations=1)
    speedups = {p: des[1] / t for p, t in des.items()}
    lines = [f"  p={p:3d}  DES speedup={speedups[p]:6.2f}  "
             f"model speedup={modelled[p]:6.2f}"
             for p in sorted(des)]
    emit("Distributed: matvec strong scaling (DES vs model)", "\n".join(lines))

    assert speedups[4] > 2.5
    for p in speedups:
        assert speedups[p] == pytest.approx(modelled[p], rel=0.4)
    # efficiency decreases with p (communication share grows)
    assert speedups[16] / 16 < speedups[2] / 2


def test_bench_distributed_weak_scaling(benchmark):
    net = alpha_beta_from_cluster(das5_cluster())

    def factory(total_points):
        edge = int(round(total_points ** 0.5))
        return stencil_scaling_model(edge, net, seconds_per_point=2e-9,
                                     iterations=10)

    eff = benchmark.pedantic(
        lambda: weak_scaling(factory, 2048 * 2048, [1, 4, 16, 64]),
        rounds=1, iterations=1)
    emit("Distributed: stencil weak scaling",
         "\n".join(f"  p={p:3d}  efficiency={e:.3f}" for p, e in eff.items()))
    assert eff[1] == pytest.approx(1.0)
    assert eff[64] > 0.7  # halo exchange stays surface-to-volume-small


def test_bench_distributed_timeline(benchmark):
    """The VAMPIR-style view: load imbalance appears as wait time."""
    net = alpha_beta_from_cluster(das5_cluster())

    def run():
        sim = MPISimulator(4, net)
        return sim.run(bsp_iterations(4, 2e-3, 64 * 1024, imbalance=0.6))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Distributed: BSP timeline with 60% imbalance",
         timeline_text(result, width=64))
    # everyone waits on the slowest rank: makespan ~ slowest compute
    assert result.makespan > 4 * 2e-3 * 1.5
    assert result.communication_fraction() > 0.1


def test_bench_distributed_halo_deadlock_freedom(benchmark):
    """The even/odd exchange ordering survives any rank count."""
    net = alpha_beta_from_cluster(das5_cluster())

    def run():
        spans = {}
        for p in (2, 3, 5, 8):
            result = MPISimulator(p, net).run(
                halo_exchange_stencil(5, 64, 4096, 1e-4))
            spans[p] = result.makespan
        return spans

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(s > 0 for s in spans.values())
    emit("Distributed: halo exchange makespans",
         "\n".join(f"  p={p}: {s * 1e3:.3f}ms" for p, s in spans.items()))
