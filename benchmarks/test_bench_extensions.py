"""Benches for the paper's future-work topics, implemented as extensions.

The conclusion names three topics to develop: (1) multi-vendor hardware,
(2) energy-efficiency metrics, (3) more distributed/shared computing.
These benches exercise our implementations of all three, plus the
SLURM-like batch scheduler that models the course's own DAS-5 usage.
"""

import numpy as np
import pytest
from conftest import emit

from repro.energy import PowerModel, dvfs_energy_curve, energy_optimal_cores
from repro.kernels import matmul_work, triad_work
from repro.machine import epyc_like_cpu, generic_server_cpu
from repro.queueing import random_workload, simulate_batch
from repro.roofline import cpu_roofline


def test_bench_extension_multivendor(benchmark):
    """Future work (1): the same kernels on two vendors' rooflines."""

    def run():
        rows = []
        for cpu in (generic_server_cpu(), epyc_like_cpu()):
            roofline = cpu_roofline(cpu)
            triad = roofline.attainable(triad_work(10 ** 6).intensity)
            mm = roofline.attainable(matmul_work(512).intensity)
            rows.append((cpu.name, roofline.ridge_point(), triad, mm))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Extension: multi-vendor rooflines", "\n".join(
        f"  {name:15s} ridge={ridge:6.2f} F/B  triad={t / 1e9:7.1f} GF/s  "
        f"matmul={m / 1e9:7.1f} GF/s" for name, ridge, t, m in rows))

    intel, amd = rows
    assert amd[2] > intel[2]   # more bandwidth -> faster triad
    assert amd[3] > intel[3]   # more cores -> higher compute roof
    # but per-core the Intel-like machine is faster (higher clock)
    assert (intel[3] / generic_server_cpu().cores
            > amd[3] / epyc_like_cpu().cores)


def test_bench_extension_energy(benchmark, cpu):
    """Future work (2): energy metrics for the ECM triad."""
    pm = PowerModel(static_watts=40, core_watts=6, dram_watts_per_gbs=0.4)

    def run():
        best, reports = energy_optimal_cores(pm, cpu, 27.0, 7.0, lines=1e8)
        curve_mb = dvfs_energy_curve(pm, 10.0, cpu.cores,
                                     compute_bound_fraction=0.1)
        curve_cb = dvfs_energy_curve(pm, 10.0, 1,
                                     compute_bound_fraction=1.0)
        return best, reports, curve_mb, curve_cb

    best, reports, curve_mb, curve_cb = benchmark.pedantic(run, rounds=1,
                                                           iterations=1)
    lines = ["  cores -> time, energy (saturating triad):"]
    for n in (1, 2, 4, 8, 16):
        r = reports[n]
        mark = " <- optimum" if n == best else ""
        lines.append(f"    {n:3d} {r.seconds:8.3f}s {r.joules:9.1f}J{mark}")
    lines.append("  DVFS, memory-bound kernel (16 cores): " + ", ".join(
        f"{s:.1f}x->{r.joules:.0f}J" for s, r in sorted(curve_mb.items())))
    lines.append("  DVFS, compute-bound kernel (1 core):  " + ", ".join(
        f"{s:.1f}x->{r.joules:.0f}J" for s, r in sorted(curve_cb.items())))
    emit("Extension: energy-efficiency analyses", "\n".join(lines))

    assert 2 <= best <= 6                       # near the ECM saturation point
    assert reports[cpu.cores].joules > reports[best].joules
    mb = sorted(curve_mb.items())
    assert mb[0][1].joules < mb[-1][1].joules   # memory-bound: slow & steady
    cb = sorted(curve_cb.items())
    assert cb[-1][1].joules < cb[0][1].joules   # static-dominated: race to idle


def test_bench_extension_cloud_variability(benchmark):
    """Future work (3): straggler amplification under performance noise."""
    from repro.distributed import (
        AlphaBeta,
        duplicate_execution_gain,
        simulate_noisy_bsp,
        straggler_slowdown,
    )

    net = AlphaBeta(1.7e-6, 6.8e9)

    def run():
        rows = []
        for p in (4, 8, 16):
            analytic = straggler_slowdown(p, "exponential", 0.4)
            simulated = simulate_noisy_bsp(p, net, iterations=40,
                                           model="exponential", level=0.4,
                                           seed=7)
            rows.append((p, analytic, simulated))
        gain = duplicate_execution_gain(64, 0.4, replicas=2)
        return rows, gain

    rows, gain = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Extension: BSP straggler amplification (exponential noise, f=0.4)",
         "\n".join(f"  p={p:3d}  analytic={a:5.2f}x  simulated={s:5.2f}x"
                   for p, a, s in rows)
         + f"\n  2x speculative duplicates at p=64: {gain:.2f}x back")

    slows = [a for _, a, _ in rows]
    assert slows == sorted(slows)  # grows with scale
    for p, analytic, simulated in rows:
        assert simulated == pytest.approx(analytic, rel=0.25)
    assert gain > 1.2


def test_bench_extension_batch_scheduler(benchmark):
    """The DAS-5 substrate: FCFS vs EASY backfilling on a synthetic trace."""

    def run():
        wl = random_workload(120, 32, load=0.85, seed=11)
        return (simulate_batch(wl, 32, "fcfs"),
                simulate_batch(wl, 32, "easy-backfill"))

    fcfs, easy = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Extension: batch scheduling (32-node cluster, 120 jobs)",
         f"  {fcfs.report()}\n  {easy.report()}")

    assert easy.mean_wait < fcfs.mean_wait
    assert easy.mean_bounded_slowdown <= fcfs.mean_bounded_slowdown
    assert easy.utilization >= fcfs.utilization * 0.99
    assert easy.makespan <= fcfs.makespan * 1.01
