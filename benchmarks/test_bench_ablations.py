"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation removes or swaps one mechanism of the simulated substrate and
checks that its effect is both visible and in the expected direction:

* cache replacement policy (LRU vs FIFO vs random) on a reuse-heavy trace;
* hardware prefetching on streaming vs random access;
* memory-level parallelism on a latency-bound kernel;
* OpenMP schedule choice against skewed iteration costs;
* ECM vs plain Roofline accuracy for a cache-resident loop.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analytical import ECMModel, FunctionLevelModel
from repro.machine import CacheLevel
from repro.microbench import characterize_simulated
from repro.parallel import simulate_schedule
from repro.simulator import (
    CPUModel,
    MultiLevelCache,
    hierarchy_for,
    matmul_trace,
    random_access_trace,
    stream_trace,
    triad_body,
)


def test_bench_ablation_replacement_policy(benchmark, cpu):
    """LRU must beat FIFO and random on a reuse-heavy matmul trace."""
    trace = matmul_trace(48, "ijk")

    def run():
        out = {}
        for policy in ("lru", "fifo", "random"):
            h = MultiLevelCache(cpu.caches, policy=policy, seed=1)
            h.access_trace(trace.addresses, trace.writes)
            out[policy] = h.caches[0].stats.misses
        return out

    misses = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: replacement policy on matmul(48) L1 misses",
         "\n".join(f"  {k:7s} {v:8d}" for k, v in misses.items()))
    assert misses["lru"] <= misses["fifo"]
    assert misses["lru"] <= misses["random"]


def test_bench_ablation_prefetcher(benchmark, cpu):
    """Prefetch rescues streaming, does nothing for random access."""
    n = 30_000
    stream = stream_trace(n, "triad")
    rand = random_access_trace(n, 32 * cpu.caches[-1].capacity_bytes, seed=4)

    def run():
        out = {}
        for name, trace in (("stream", stream), ("random", rand)):
            for pf in (False, True):
                h = hierarchy_for(cpu, prefetch=pf)
                h.access_trace(trace.addresses, trace.writes)
                out[(name, pf)] = h.caches[0].stats.miss_ratio
        return out

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: prefetcher on/off (L1 miss ratio)",
         "\n".join(f"  {name:7s} prefetch={pf!s:5s} miss_ratio={r:.4f}"
                   for (name, pf), r in ratios.items()))
    assert ratios[("stream", True)] < 0.05 * ratios[("stream", False)]
    assert ratios[("random", True)] == pytest.approx(
        ratios[("random", False)], rel=0.05)


def test_bench_ablation_memory_parallelism(benchmark, cpu, table):
    """MLP shortens latency-bound kernels, leaves compute-bound alone."""
    from repro.simulator import pointer_chase_body

    n = 10_000
    rand = random_access_trace(n, 32 * cpu.caches[-1].capacity_bytes, seed=5)

    def run():
        out = {}
        for mlp in (1.0, 4.0, 16.0):
            model = CPUModel(cpu, table, memory_parallelism=mlp)
            out[mlp] = model.run(rand, pointer_chase_body(), n).counters.cycles
        return out

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: memory-level parallelism on random chase",
         "\n".join(f"  MLP={mlp:4.0f} cycles={c:.3e}" for mlp, c in cycles.items()))
    assert cycles[1.0] > 3 * cycles[4.0] > 3 * cycles[16.0] / 1.2


def test_bench_ablation_schedules(benchmark):
    """Schedule choice against skewed (triangular) iteration costs."""
    costs = np.arange(1, 2001, dtype=float) * 1e-7

    def run():
        out = {}
        for sched, chunk in (("static", None), ("static-chunked", 16),
                             ("dynamic", 8), ("guided", 4)):
            r = simulate_schedule(costs, 8, sched, chunk=chunk,
                                  dispatch_overhead=5e-8)
            out[r.schedule] = (r.makespan, r.imbalance)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: OpenMP schedules on triangular costs (8 threads)",
         "\n".join(f"  {k:18s} makespan={m * 1e3:7.3f}ms imbalance={i:6.1%}"
                   for k, (m, i) in results.items()))
    static = results["static"][0]
    assert results["dynamic,8"][0] < static
    assert results["guided,4"][0] < static
    assert results["static-chunked,16"][0] < static


def test_bench_ablation_ecm_vs_roofline(benchmark, cpu, table):
    """ECM sees the cache hierarchy; the plain bandwidth model does not.

    The same triad runs once over a DRAM-sized footprint and many times
    over an L2-resident one.  The function/Roofline model charges DRAM
    bandwidth either way (predicted speedup = 1); ECM with the traffic
    chain truncated at L2 predicts a real speedup, as the simulator
    measures.
    """
    n_small = 3000     # 3 x 24 KB: L2-resident
    n_large = 120_000  # 3 x 960 KB x 3 arrays: far beyond L3... via passes
    passes = 12

    def run():
        lanes = cpu.vector.lanes(8)
        model = CPUModel(cpu, table)
        # steady-state L2-resident: many passes over the small arrays
        small_pass = stream_trace(n_small, "triad")
        trace = small_pass
        for _ in range(passes - 1):
            trace = trace.concat(small_pass)
        t_small = model.run(trace, triad_body(True),
                            passes * n_small // lanes).seconds / (passes * n_small)
        # DRAM-resident: one pass over large arrays
        t_large = model.run(stream_trace(n_large, "triad"), triad_body(True),
                            n_large // lanes).seconds / n_large
        truth_speedup = t_large / t_small

        single = characterize_simulated(cpu.with_cores(1), table)
        from repro.kernels import triad_work

        func = FunctionLevelModel(single)
        roofline_speedup = (func.predict_seconds(triad_work(n_large)) / n_large) / (
            func.predict_seconds(triad_work(n_small)) / n_small)
        ecm = ECMModel(cpu, table)
        ecm_l2 = ecm.predict(triad_body(True), 2, 1, hit_level="L2",
                             elements_per_iteration=lanes)
        ecm_mem = ecm.predict(triad_body(True), 2, 1,
                              elements_per_iteration=lanes)
        ecm_speedup = ecm_mem.cycles_per_iteration / ecm_l2.cycles_per_iteration
        return truth_speedup, roofline_speedup, ecm_speedup

    truth, roofline_s, ecm_s = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Ablation: cache-residence speedup (L2-resident vs DRAM triad)",
         f"  simulated truth    : {truth:.2f}x\n"
         f"  roofline predicts  : {roofline_s:.2f}x (blind to caches)\n"
         f"  ECM predicts       : {ecm_s:.2f}x")
    assert truth > 1.5                  # residence matters in reality
    assert roofline_s == pytest.approx(1.0)  # plain model cannot see it
    assert ecm_s > 1.5                  # ECM predicts the effect
    # (ECM overshoots the magnitude here because the simulated prefetcher
    # hides part of the L1<-L2 transfer time; the directional prediction —
    # the one the lecture cares about — is what only ECM gets right.)
