"""Table 2: aggregated student evaluation responses (SW-3's job).

The response *counts* are printed verbatim in the paper, so this benchmark
checks the strongest possible property: every recomputed mean matches the
paper's M column exactly (at the paper's 1-decimal precision).
"""

from conftest import emit

from repro.course import METRICS_2A, METRICS_2B, table2_text, table2a_rows, table2b_rows


def _regenerate():
    return table2a_rows(), table2b_rows()


def test_bench_table2(benchmark):
    rows_2a, rows_2b = benchmark(_regenerate)

    assert len(rows_2a) == 13
    assert len(rows_2b) == 2
    for row in rows_2a + rows_2b:
        assert row["mean"] == row["paper_mean"], row["statement"]
    # headline results the paper calls out
    by_name = {r["statement"]: r for r in rows_2a}
    assert by_name["To apply subject matter"]["mean"] == 4.8   # highest
    assert by_name["Current scientific theories"]["mean"] == 3.9  # lowest
    assert {r["statement"]: r["mean"] for r in rows_2b} == {
        "Workload": 4.0, "Level": 3.7}
    # every assignment rated >= 4.1 ("helped me understand the subject")
    for k in range(1, 5):
        assert by_name[f"Assignment {k}"]["mean"] >= 4.1

    emit("Table 2 (SW-3 output)", table2_text())
