"""Execution backends: measured serial vs thread vs process speedup.

The backend subsystem's pitch is the paper's stage-4 lesson made runnable:
*which* executor helps depends on where the kernel spends its time.

* GIL-bound scalar kernel (pure-Python row-block matmul): threads cannot
  help — every bytecode holds the GIL — but processes with zero-copy
  shared-memory operands scale across cores (``process > thread``).
* NumPy-bound kernel (BLAS row-block matmul): NumPy releases the GIL, so
  threads and processes are both real parallelism (``thread ≈ process``).

Pool spawn-up is excluded from the timed region (the amortized steady
state a tuning loop sees); the qualitative-ordering assertions engage only
when the host actually has the cores to show the effect, so the bench
records honest numbers on any machine and never asserts physics the
hardware cannot exhibit.  ``REPRO_BENCH_SMOKE=1`` shrinks sizes to a CI
smoke run that exercises the full path (spawn, share, map, gather) in a
couple of seconds.
"""

import os

import numpy as np
import pytest
from conftest import emit

from repro.kernels import matmul_chunked, random_matrices
from repro.parallel import compare_backends

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
WORKERS = 4
N_SCALAR = 24 if SMOKE else 96
N_NUMPY = 64 if SMOKE else 384
CORES = os.cpu_count() or 1


def _run_matmul(n, inner):
    a, b, c = random_matrices(n, seed=0)

    def run(backend):
        c.fill(0.0)
        matmul_chunked(a, b, c, workers=WORKERS, backend=backend, inner=inner)

    return run


def _table(title, timings):
    lines = [f"{title} ({WORKERS} workers, {CORES} core(s) visible)"]
    lines += [f"  {t}" for t in timings]
    return "\n".join(lines)


def test_bench_backends_scalar_kernel():
    """GIL-bound scalar matmul: the process backend is the only real win."""
    timings = {t.backend: t for t in compare_backends(
        _run_matmul(N_SCALAR, "scalar"), workers=WORKERS,
        repetitions=1 if SMOKE else 3, warmup=0 if SMOKE else 1)}
    emit("backends / GIL-bound scalar matmul",
         _table(f"scalar n={N_SCALAR}", timings.values()))
    assert timings["serial"].seconds > 0
    if CORES < 4:
        pytest.skip(f"{CORES} core(s): multicore speedup not observable")
    # acceptance: >= 2x over serial with 4 workers on a GIL-bound kernel
    assert timings["process"].speedup >= 2.0, timings["process"]
    # qualitative ordering: process beats thread on GIL-bound code
    assert timings["process"].speedup > timings["thread"].speedup


def test_bench_backends_numpy_kernel():
    """NumPy-bound matmul: threads and processes are both real parallelism."""
    timings = {t.backend: t for t in compare_backends(
        _run_matmul(N_NUMPY, "numpy"), workers=WORKERS,
        repetitions=1 if SMOKE else 3, warmup=0 if SMOKE else 1)}
    emit("backends / NumPy-bound matmul",
         _table(f"numpy n={N_NUMPY}", timings.values()))
    assert all(t.seconds > 0 for t in timings.values())
    if CORES < 4:
        pytest.skip(f"{CORES} core(s): multicore speedup not observable")
    # qualitative ordering: thread ~ process once the inner kernel drops
    # the GIL (shared-memory operands keep process overhead marginal)
    ratio = timings["thread"].seconds / timings["process"].seconds
    assert 1 / 3 <= ratio <= 3, timings


def test_bench_backends_results_identical():
    """Speedup must never cost correctness: all backends agree bitwise-ish."""
    a, b, _ = random_matrices(N_SCALAR // 2, seed=1)
    results = {}
    for backend in ("serial", "thread", "process"):
        c = np.zeros((a.shape[0], b.shape[1]))
        matmul_chunked(a, b, c, workers=WORKERS, backend=backend)
        results[backend] = c
    assert np.allclose(results["serial"], results["thread"])
    assert np.allclose(results["serial"], results["process"])
