"""Observability overhead: disabled tracing must be nearly free.

The contract that makes it safe to leave instrumentation in every hot
path (``measure``'s repetition loop, the tuning harness, backend chunk
dispatch) is that the disabled path — the default — costs a method call
returning a shared no-op handle and nothing more.  This bench measures
``measure()`` on a small NumPy kernel through the instrumented path
against a hand-rolled replica of the pre-instrumentation timing loop and
asserts the per-repetition overhead stays under 5% (the ISSUE acceptance
bound).  A second bench records the *enabled* cost for the log, so trace
users know the price of turning it on.

``REPRO_BENCH_SMOKE=1`` shrinks the kernel for CI.
"""

import os

import numpy as np
from conftest import emit

from repro.observe import MetricsRegistry, Tracer
from repro.timing import measure
from repro.timing.timers import Timer

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N = 96 if SMOKE else 192
REPS = 20 if SMOKE else 40
ROUNDS = 3


def _kernel():
    a = np.random.default_rng(0).random((N, N))
    return lambda: a @ a


def _bare_best(fn, repetitions):
    """The pre-instrumentation measure() loop: Timer + append, nothing else."""
    times = []
    for _ in range(repetitions):
        with Timer() as t:
            fn()
        times.append(t.elapsed)
    return min(times)


def test_bench_disabled_tracer_overhead():
    """Acceptance: measure() with tracing disabled is < 5% over a bare loop."""
    fn = _kernel()
    for _ in range(3):  # warm caches and BLAS threads
        fn()
    # interleave rounds so drift hits both paths equally; compare the best
    bare = []
    instrumented = []
    for _ in range(ROUNDS):
        bare.append(_bare_best(fn, REPS))
        instrumented.append(measure(fn, repetitions=REPS, warmup=0).best)
    best_bare = min(bare)
    best_instr = min(instrumented)
    overhead = best_instr / best_bare - 1.0
    emit("observe / disabled-tracer overhead on measure()",
         f"kernel: {N}x{N} matmul, {REPS} reps x {ROUNDS} rounds\n"
         f"bare best         {best_bare:.4e}s\n"
         f"instrumented best {best_instr:.4e}s\n"
         f"overhead          {overhead:+.2%} (bound: +5%)")
    assert overhead < 0.05, f"disabled-tracer overhead {overhead:+.2%}"


def test_bench_enabled_tracer_cost_recorded():
    """Informational: per-repetition cost of tracing ON (spans recorded)."""
    fn = _kernel()
    for _ in range(3):
        fn()
    off = min(measure(fn, repetitions=REPS, warmup=0).best
              for _ in range(ROUNDS))
    tracer = Tracer(metrics=MetricsRegistry())
    on = min(measure(fn, repetitions=REPS, warmup=0, tracer=tracer).best
             for _ in range(ROUNDS))
    spans = len(tracer.spans)
    emit("observe / enabled-tracer cost on measure()",
         f"tracing off best {off:.4e}s\n"
         f"tracing on  best {on:.4e}s ({on / off - 1.0:+.2%}, "
         f"{spans} spans recorded)")
    assert spans == ROUNDS * (REPS + 1)  # reps + the measure span, per round
    # spans wrap the Timer region from outside: enabling tracing must not
    # blow up the *measured* time either (generous noise allowance)
    assert on < off * 1.5
