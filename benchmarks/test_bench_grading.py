"""Equations 1-3: the grading scheme, exercised on a synthetic cohort.

Checks the formulas' printed properties (weights, divisors, clamps, quiz
bonus) and the §4.4 design intents: the project carries the largest weight,
and the scheme leaves slack for compensating between exam and assignments.
"""

import numpy as np
from conftest import emit

from repro.course import (
    assignments_grade,
    final_grade,
    project_grade,
    simulate_cohort,
    team_divisor,
)


def _grade_cohort(n=146, seed=42):
    return simulate_cohort(n, seed=seed)


def test_bench_grading(benchmark):
    cohort = benchmark(_grade_cohort)

    # Equation 1 verbatim values
    assert final_grade(8.0, 8.0, 7.0, 35.0) == 0.5 * 8 + 0.3 * 8 + 0.3 * 7.5
    assert final_grade(10.0, 10.5, 10.0, 70.0) == 10.0  # clamp
    # Equation 2 weights
    assert project_grade(10.0, 1.0, 1.0) == 0.4 * 10 + 0.3 + 0.3
    # Equation 3 divisors and slack
    assert (team_divisor(1), team_divisor(2), team_divisor(4)) == (32, 36, 40)
    assert assignments_grade((10, 9, 11, 12), 1) > 10.0  # solo slack

    # design intent: project weight dominates
    base = final_grade(7.0, 7.0, 7.0, 0.0)
    assert final_grade(8.0, 7.0, 7.0, 0.0) - base > \
           final_grade(7.0, 8.0, 7.0, 0.0) - base

    # compensation slack: a weak exam can be offset by strong assignments
    weak_exam = final_grade(8.0, 10.0, 5.0, 70.0)
    assert weak_exam >= 7.0

    finals = np.array([s.final for s in cohort])
    lines = [
        f"cohort of {len(cohort)} (components drawn at the paper's means)",
        f"  mean project     : {np.mean([s.project for s in cohort]):.2f}  (paper: ~8)",
        f"  mean assignments : {np.mean([s.assignments for s in cohort]):.2f}  (paper: ~8)",
        f"  mean exam        : {np.mean([s.exam for s in cohort]):.2f}  (paper: ~7.5)",
        f"  mean final       : {finals.mean():.2f}  (paper: ~8; Eq.1's 1.1x "
        f"weight slack pushes the simulated mean above the rounded figure)",
        f"  pass rate        : {np.mean([s.passed for s in cohort]):.0%}  "
        f"(completers pass; dropout happens before grading, §5.1)",
    ]
    emit("Equations 1-3 (grading scheme on a synthetic cohort)", "\n".join(lines))
