"""Auto-tuner harness overhead: cached vs cold search cost.

The tuning subsystem's pitch is that the cache makes revisits free: a
repeated search over the same space must cost bookkeeping only, never a
measurement.  This bench quantifies both sides on a real kernel objective —

* COLD: grid search over matmul-tiled's L1-admissible tile axis, every
  configuration actually timed;
* CACHED: the identical search against the warm shared cache (zero new
  measurements);

and prints the ratio, the per-hit overhead, and the tuning history the
cached run replays.
"""

import pytest
from conftest import emit

from repro.kernels import REGISTRY, random_matrices
from repro.timing import Timer
from repro.tuning import (
    EvaluationHarness,
    GridSearch,
    space_for,
    tiles_fit_cache,
    timed_objective,
)

N = 32


def _space(cpu):
    variant = REGISTRY.get("matmul", "tiled")
    return space_for(variant, constraints=[tiles_fit_cache(
        cpu.cache("L1").capacity_bytes)])


def _objective():
    variant = REGISTRY.get("matmul", "tiled")
    return timed_objective(variant.fn, lambda cfg: random_matrices(N),
                           warmup=0, repetitions=1)


def _search(space, objective, cache):
    harness = EvaluationHarness(objective, kernel="matmul.tiled",
                                problem=f"n={N}", cache=cache)
    return GridSearch().run(space, harness)


def test_bench_tuning_cold_vs_cached(benchmark, cpu):
    space = _space(cpu)
    objective = _objective()
    cache = {}

    with Timer() as cold:
        first = _search(space, objective, cache)

    # the timed region: the whole search with every config already cached
    second = benchmark.pedantic(_search, args=(space, objective, cache),
                                rounds=3, iterations=1)

    assert first.measurements == space.size()
    assert second.measurements == 0
    assert second.cache_hits == space.size()
    assert second.best_config == first.best_config

    cached_seconds = benchmark.stats.stats.min
    speedup = cold.elapsed / cached_seconds
    per_hit = cached_seconds / space.size()
    emit("tuning harness: cached vs cold grid search (matmul.tiled, n=%d)" % N,
         "\n".join([
             f"  space               : {space.size()} L1-admissible tile(s)",
             f"  cold search         : {cold.elapsed:10.4e}s "
             f"({first.measurements} measurements)",
             f"  cached search       : {cached_seconds:10.4e}s "
             f"({second.cache_hits} hits, 0 measurements)",
             f"  speedup             : {speedup:10.1f}x",
             f"  overhead per hit    : {per_hit:10.4e}s",
             "",
             second.report(),
         ]))
    assert speedup > 10  # cache hits must be orders cheaper than measuring
