"""Assignment 2: analytical modeling and microbenchmarking.

The assignment: model matmul and histogram analytically at several
granularities, calibrate with microbenchmarks, evaluate against measured
data.  Ground truth here is the machine simulator (DESIGN.md substitution);
shapes checked:

* model error shrinks as granularity gets finer (function -> instruction);
* the ECM model predicts the multicore saturation point of triad;
* histogram's data-dependent behaviour: the same analytical model is less
  accurate for histogram than for the static-access triad.
"""

import numpy as np
from conftest import emit

from repro.analytical import ECMModel, FunctionLevelModel, InstructionLevelModel
from repro.counters import CounterSession
from repro.kernels import histogram_work, random_keys, triad_work
from repro.microbench import characterize_simulated
from repro.simulator import (
    CPUModel,
    histogram_body,
    histogram_trace,
    stream_trace,
    triad_body,
)

N = 40_000
BINS = 32_768  # larger than L1: data-dependence matters


def _truths_and_predictions(cpu, table):
    model = CPUModel(cpu, table)
    single = characterize_simulated(cpu.with_cores(1), table)
    func = FunctionLevelModel(single)
    instr = InstructionLevelModel(cpu, table)

    results = {}
    # triad
    truth = model.run(stream_trace(N, "triad"), triad_body(), N).seconds
    results["triad"] = {
        "truth": truth,
        "function": func.predict_seconds(triad_work(N)),
        "instruction": instr.predict_seconds(triad_body(), N,
                                             stream_trace(N, "triad")),
    }
    # histogram (uniform keys: the hard, data-dependent case)
    keys = random_keys(N, BINS, seed=3)
    truth_h = model.run(histogram_trace(keys, BINS), histogram_body(), N).seconds
    results["histogram"] = {
        "truth": truth_h,
        "function": func.predict_seconds(histogram_work(N, BINS)),
        "instruction": instr.predict_seconds(histogram_body(), N,
                                             histogram_trace(keys, BINS)),
    }
    return results


def test_bench_assignment2_granularity_ladder(benchmark, cpu, table):
    results = benchmark.pedantic(_truths_and_predictions, args=(cpu, table),
                                 rounds=1, iterations=1)

    lines = []
    errors = {}
    for kernel, vals in results.items():
        truth = vals["truth"]
        for level in ("function", "instruction"):
            err = abs(vals[level] - truth) / truth
            errors[(kernel, level)] = err
            lines.append(f"  {kernel:10s} {level:12s} predicted={vals[level]:.3e}s "
                         f"truth={truth:.3e}s err={err:7.1%}")
    emit("Assignment 2: model granularity vs accuracy", "\n".join(lines))

    # finer granularity helps, on both kernels
    assert errors[("triad", "instruction")] <= errors[("triad", "function")]
    assert errors[("histogram", "instruction")] <= errors[("histogram", "function")]
    # data-dependent histogram is harder for the *static* function model
    # than the fully static triad
    assert (errors[("histogram", "function")]
            >= errors[("triad", "function")])
    # the instruction-level model lands within a factor ~2 everywhere
    assert errors[("triad", "instruction")] < 1.0
    assert errors[("histogram", "instruction")] < 1.0


def test_bench_assignment2_ecm_saturation(benchmark, cpu, table):
    ecm = ECMModel(cpu, table)
    pred = benchmark(ecm.predict, triad_body(True), 2, 1)

    curve = ecm.scaling_curve(pred)
    n_sat = pred.saturation_cores()
    lines = [pred.report(), "  cores -> cycles/line:"]
    lines += [f"    {p:3d} -> {c:7.2f}" for p, c in sorted(curve.items())]
    emit("Assignment 2: ECM multicore saturation of SIMD triad", "\n".join(lines))

    assert 1 < n_sat < cpu.cores
    # below saturation: near-linear; above: flat at the memory floor
    assert curve[1] / curve[2] > 1.8
    assert curve[cpu.cores] == curve[cpu.cores - 1]


def test_bench_assignment2_calibration_paths_agree(benchmark, cpu, table):
    """Tabulated (Fog-style) and microbenchmark calibrations must agree on
    the machine's peak, and both match the spec."""
    from repro.microbench import simulated_peak_flops

    ch = benchmark(characterize_simulated, cpu, table)
    tabulated = simulated_peak_flops(cpu, table, "vfmadd")
    assert ch.peak_flops == tabulated == cpu.peak_flops()
    emit("Assignment 2: machine characterization", ch.report())
