"""Benchmark service: throughput, cache leverage, and the self-model gate.

Serves the measurement loop to concurrent tenants and checks the claims
that make serving worthwhile: a flood of identical submissions costs one
execution (coalescing + cache), and the engine's measured queueing
behaviour stays within reach of the M/M/c model the admission controller
plans with.  ``REPRO_BENCH_SMOKE=1`` shrinks sizes for CI.
"""

import os
import statistics
import time

from conftest import emit

from repro.observe.metrics import MetricsRegistry
from repro.service import AdmissionController, JobEngine, WorkloadManifest
from repro.service.quota import TokenBucket

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N_DUPLICATE = 40 if SMOKE else 200
N_SYNTH = 60 if SMOKE else 300


def _engine(workers=2):
    return JobEngine(
        store=None, workers=workers,
        admission=AdmissionController(max_queue_depth=100_000,
                                      tenant_rate=1e9, tenant_burst=1e9),
        metrics=MetricsRegistry())


def test_bench_service_coalescing_leverage(benchmark):
    """A classroom of identical submissions must cost ~one execution."""
    manifest = WorkloadManifest(
        name="bench-matmul", kernel="matmul", variant="numpy",
        args={"n": 64, "seed": 0}, repetitions=1, warmup=0)

    def flood():
        engine = _engine(workers=2)
        jobs = [engine.submit(manifest, tenant=f"t{i % 8}")
                for i in range(N_DUPLICATE)]
        with engine:
            for job in jobs:
                engine.wait_for(job.job_id, timeout=120.0)
        executed = engine.metrics.counter("service.jobs_executed").value
        hits = engine.metrics.counter("service.cache_hits").value
        coalesced = engine.metrics.counter("service.jobs_coalesced").value
        assert all(j.state == "done" for j in jobs)
        return executed, hits, coalesced

    executed, hits, coalesced = benchmark.pedantic(flood, rounds=1,
                                                   iterations=1)
    emit("Service: coalescing/cache leverage on identical submissions",
         f"  submissions={N_DUPLICATE}  executions={executed}  "
         f"cache_hits={hits}  coalesced={coalesced}")
    assert executed == 1
    assert hits + coalesced == N_DUPLICATE - 1


def test_bench_service_dispatch_overhead(benchmark):
    """Per-job engine overhead (zero-work synthetic jobs, one worker)."""
    def drain():
        engine = _engine(workers=1)
        jobs = [engine.submit("synthetic-sleep", kind="synthetic",
                              params={"service_seconds": 0.0})
                for _ in range(N_SYNTH)]
        t0 = time.perf_counter()
        with engine:
            for job in jobs:
                engine.wait_for(job.job_id, timeout=120.0)
        elapsed = time.perf_counter() - t0
        services = [j.service_seconds for j in jobs]
        return elapsed / N_SYNTH, statistics.median(services)

    per_job, median_service = benchmark.pedantic(drain, rounds=1,
                                                 iterations=1)
    emit("Service: dispatch overhead per zero-work job",
         f"  jobs={N_SYNTH}  per-job={per_job * 1e3:.3f}ms  "
         f"median service={median_service * 1e3:.3f}ms")
    # serving must stay cheap relative to the ~ms-scale work it serves
    assert per_job < 0.01, f"dispatch overhead {per_job * 1e3:.2f}ms/job"


def test_bench_service_token_bucket_rate(benchmark):
    """The token bucket must admit at its configured rate, not above."""
    def admit_sweep():
        bucket = TokenBucket(rate=100.0, burst=10)
        admitted = 0
        # simulated clock: 2000 attempts over 10 seconds
        for i in range(2000):
            if bucket.try_acquire(now=i * 0.005)[0]:
                admitted += 1
        return admitted

    admitted = benchmark.pedantic(admit_sweep, rounds=1, iterations=1)
    emit("Service: token bucket admission at rate=100/s burst=10",
         f"  attempts=2000 over 10s  admitted={admitted}")
    # burst + 10 s of refill, with a one-token tolerance either side
    assert 1000 <= admitted <= 1011
