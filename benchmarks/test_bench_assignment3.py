"""Assignment 3: statistical modeling of SpMV (CSR/CSC/COO) vs analytical.

The assignment: collect performance data over a relevant input set, train
statistical models, evaluate prediction accuracy, and compare against an
analytical model — exposing the interpretability/accuracy trade-off.
Measurements come from the machine simulator; shapes checked:

* statistical models predict held-out SpMV times well (MAPE under ~35%);
* the black-box forest beats the coarse analytical model on this
  data-dependent kernel — the assignment's premise;
* the analytical model remains the only one with an explanation.
"""

import numpy as np
from conftest import emit

from repro.analytical import FunctionLevelModel
from repro.kernels import banded_sparse, matrix_features, random_sparse, spmv_work
from repro.microbench import characterize_simulated
from repro.simulator import CPUModel, spmv_csr_trace, spmv_inner_body
from repro.statmodel import (
    LinearRegressor,
    ModelEntry,
    RandomForestRegressor,
    compare_models,
    mape,
    spmv_feature_pipeline,
    train_test_split,
)


def _build_dataset(cpu, table, n_samples=36, seed=0):
    """Simulated SpMV timings over a varied matrix population."""
    model = CPUModel(cpu, table)
    rng = np.random.default_rng(seed)
    descriptors, works, times = [], [], []
    for i in range(n_samples):
        n = int(rng.integers(300, 2500))
        if i % 2 == 0:
            coo = random_sparse(n, density=float(rng.uniform(0.002, 0.02)),
                                seed=100 + i)
        else:
            bw = int(rng.integers(2, max(3, n // 4)))
            coo = banded_sparse(n, bw, fill=float(rng.uniform(0.4, 1.0)),
                                seed=100 + i)
        sim = model.run(spmv_csr_trace(coo), spmv_inner_body(), max(coo.nnz, 1))
        descriptors.append(matrix_features(coo))
        works.append(spmv_work(n, n, coo.nnz))
        times.append(sim.seconds)
    X = spmv_feature_pipeline().transform(descriptors)
    return X, np.asarray(times), works


def test_bench_assignment3(benchmark, cpu, table):
    X, y, works = benchmark.pedantic(_build_dataset, args=(cpu, table),
                                     rounds=1, iterations=1)

    Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.3, seed=1)
    # align works with the test rows by re-deriving the split indices
    rng_order = np.random.default_rng(1).permutation(len(y))
    n_test = max(1, int(round(len(y) * 0.3)))
    test_idx = rng_order[:n_test]

    linear = LinearRegressor(ridge=1e-6).fit(Xtr, ytr)
    forest = RandomForestRegressor(n_trees=40, max_depth=8, seed=2).fit(Xtr, ytr)

    # analytical comparator: function-level model on the work counts
    single = characterize_simulated(cpu.with_cores(1), table)
    func = FunctionLevelModel(single, overlap=False)
    analytical_pred = np.array([func.predict_seconds(works[i]) for i in test_idx])

    entries = [
        ModelEntry("analytical (function)", lambda _: analytical_pred,
                   "analytical", "T = F/peak + B/bandwidth"),
        ModelEntry("linear regression", linear.predict, "statistical",
                   linear.explain(spmv_feature_pipeline().names)),
        ModelEntry("random forest", forest.predict, "statistical",
                   "none - black box"),
    ]
    result = compare_models(entries, Xte, yte)
    emit("Assignment 3: analytical vs statistical SpMV models", result.report())

    stats = {name: m for name, m in zip(result.names, result.mapes)}
    # statistical models predict the data-dependent kernel decently
    assert stats["random forest"] < 0.35
    assert stats["linear regression"] < 0.35
    # and beat the coarse analytical model — the assignment's premise
    assert stats["random forest"] < stats["analytical (function)"]
    # interpretability: only the statistical linear model + analytical
    # model expose an explanation; the forest does not
    explanations = dict(zip(result.names, result.explanations))
    assert "black box" in explanations["random forest"]
    assert "peak" in explanations["analytical (function)"]


def test_bench_assignment3_format_comparison(benchmark, cpu, table):
    """CSR vs CSC vs COO on the same matrix: scalar traversal order
    changes locality, visible in simulated time per nonzero."""
    from repro.kernels import (
        spmv_coo_numpy,
        spmv_csc_numpy,
        spmv_csr_numpy,
    )
    from repro.timing import measure

    # large enough (nnz ~ 180k) that the kernels' algorithmic difference —
    # segmented sum vs buffered scatter-add — dominates interpreter jitter
    coo = random_sparse(3000, density=0.02, seed=9)
    csr, csc = coo.to_csr(), coo.to_csc()
    x = np.random.default_rng(1).random(coo.shape[1])

    def run_all():
        return {
            "csr": measure(lambda: spmv_csr_numpy(csr, x), repetitions=9).best,
            "csc": measure(lambda: spmv_csc_numpy(csc, x), repetitions=9).best,
            "coo": measure(lambda: spmv_coo_numpy(coo, x), repetitions=9).best,
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("Assignment 3: empirical format comparison (vectorized, nnz=%d)" % coo.nnz,
         "\n".join(f"  {k:4s} {v * 1e6:9.1f} us" for k, v in times.items()))
    # CSR's segmented sum avoids CSC/COO's scatter-add (np.add.at)
    assert times["csr"] < times["csc"]
    assert times["csr"] < times["coo"]
