"""Assignment 1: the Roofline model on matrix-multiplication versions.

The assignment: model the machine, characterize a naive matmul, optimize it
(loop reordering, tiling), re-model, and show the Roofline captures the
different versions.  This bench regenerates the whole pipeline on the
simulated plane (deterministic) plus one empirical comparison, and checks
the expected shapes:

* loop order ikj beats ijk, which beats the column-major-hostile orders
  (prefetcher-visible streams);
* tiling cuts simulated L1 misses by an order of magnitude (prefetch off
  isolates the capacity effect the assignment targets);
* STREAM triad is memory-bound, large matmul compute-bound;
* the tuned library (BLAS) dwarfs the interpreted loop empirically.
"""

import time

import numpy as np
import pytest
from conftest import emit

from repro.kernels import matmul_loop, matmul_numpy, matmul_work, random_matrices, triad_work
from repro.roofline import AppPoint, cpu_roofline
from repro.simulator import (
    CPUModel,
    hierarchy_for,
    matmul_inner_body,
    matmul_tiled_trace,
    matmul_trace,
)

N = 64


def _simulated_variants(cpu, table):
    """Simulate the assignment's matmul versions; returns per-variant stats."""
    out = {}
    body = matmul_inner_body()
    model = CPUModel(cpu, table, prefetch=True)
    for order in ("ijk", "ikj", "jki", "kji"):
        sim = model.run(matmul_trace(N, order), body, N ** 3)
        out[order] = sim
    out["tiled16"] = model.run(matmul_tiled_trace(N, 16), body, N ** 3)
    return out


def test_bench_assignment1_simulated(benchmark, cpu, table):
    variants = benchmark.pedantic(_simulated_variants, args=(cpu, table),
                                  rounds=1, iterations=1)

    flops = matmul_work(N).flops
    rows = []
    for name, sim in variants.items():
        c = sim.counters
        rows.append((name, c.level_misses["L1"], c.dram_bytes,
                     flops / c.dram_bytes, c.cycles))
    text = "\n".join(
        f"  {name:10s} L1miss={l1:8d} dram={dram/1e3:9.1f}KB "
        f"AI_eff={ai:7.2f} cycles={cyc:12.3e}"
        for name, l1, dram, ai, cyc in rows)
    emit(f"Assignment 1: simulated matmul variants (n={N})", text)

    # shape: the all-streaming order (ikj) wins by a wide margin; the
    # relative order of the strided variants depends on prefetcher details
    ikj = variants["ikj"].counters.level_misses["L1"]
    for name in ("ijk", "jki", "kji"):
        assert variants[name].counters.level_misses["L1"] > 20 * ikj, name
    # every variant moves at least the compulsory footprint
    for sim in variants.values():
        assert sim.counters.dram_bytes >= 3 * N * N * 8 * 0.9


def test_bench_assignment1_tiling_capacity_effect(benchmark, cpu, table):
    """Prefetch off: tiling's capacity-miss reduction in isolation."""

    def run():
        plain = hierarchy_for(cpu, prefetch=False)
        tr = matmul_trace(N, "ijk")
        plain.access_trace(tr.addresses, tr.writes)
        tiled = hierarchy_for(cpu, prefetch=False)
        tt = matmul_tiled_trace(N, 16)
        tiled.access_trace(tt.addresses, tt.writes)
        return plain.caches[0].stats.misses, tiled.caches[0].stats.misses

    plain_misses, tiled_misses = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Assignment 1: tiling effect (prefetch off)",
         f"  untiled ijk L1 misses: {plain_misses}\n"
         f"  tiled(16)  L1 misses: {tiled_misses} "
         f"({plain_misses / tiled_misses:.1f}x fewer)")
    assert tiled_misses * 5 < plain_misses


def test_bench_assignment1_roofline_placement(benchmark, cpu):
    roofline = benchmark(cpu_roofline, cpu)

    points = []
    for n in (32, 64, 128, 512):
        points.append(AppPoint.from_work(f"matmul n={n}", matmul_work(n)))
    points.append(AppPoint.from_work("stream triad", triad_work(10 ** 6)))

    emit("Assignment 1: roofline placement", roofline.report(points))

    assert roofline.classify(points[-1].intensity) == "memory-bound"
    assert roofline.classify(points[-2].intensity) == "compute-bound"
    # model sensitivity: AI grows with n, crossing the ridge
    ais = [p.intensity for p in points[:-1]]
    assert ais == sorted(ais)
    assert ais[0] < roofline.ridge_point() < ais[-1]


def test_bench_assignment1_empirical_library_gap(benchmark):
    """The tuned-library endpoint: NumPy/BLAS vs the interpreted loop."""

    def run():
        a, b, c = random_matrices(48, seed=0)
        t0 = time.perf_counter()
        matmul_loop(a, b, c.copy(), "ijk")
        loop_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(20):
            matmul_numpy(a, b, c.copy())
        blas_s = (time.perf_counter() - t0) / 20
        return loop_s, blas_s

    loop_s, blas_s = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Assignment 1: empirical library gap (n=48)",
         f"  interpreted ijk : {loop_s:.4f}s\n"
         f"  BLAS (numpy)    : {blas_s:.6f}s  ({loop_s / blas_s:.0f}x)")
    assert loop_s > 20 * blas_s
