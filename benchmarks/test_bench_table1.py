"""Table 1: topics vs performance-engineering stages and learning objectives.

Regenerates the coverage matrix and checks its structural properties: 11
topics, stages 2-6 all covered by the practical material, every objective
served, and each topic backed by a module of this repository.
"""

import importlib

from conftest import emit

from repro.course import (
    TOPICS,
    coverage_matrix,
    table1_text,
    topics_for_objective,
    topics_for_stage,
)


def test_bench_table1(benchmark):
    matrix = benchmark(coverage_matrix)

    assert len(matrix) == 11
    for stage in range(2, 7):  # the practically-exercised stages (§2.3)
        assert topics_for_stage(stage)
    for objective in range(1, 9):
        assert topics_for_objective(objective)
    # the reproduction is complete: every topic's module imports
    for topic in TOPICS:
        importlib.import_module(topic.module)
    # spot checks against the paper's obvious placements
    roofline = matrix["Roofline model and extensions"]
    assert roofline["O2"] and roofline["S2"]
    queueing = matrix["Queuing theory"]
    assert queueing["O2"] or queueing["O3"]

    emit("Table 1 (topic coverage)", table1_text())
