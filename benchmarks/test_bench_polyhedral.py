"""Polyhedral-model topic: legality analysis + measured locality.

Regenerates the lecture's demonstrations: dependence vectors of the course
nests, which transforms are legal, skewing as the tiling enabler, and the
cache-measured payoff of a legal tiling.
"""

from conftest import emit

from repro.polyhedral import (
    distance_vectors,
    interchange_legal,
    jacobi_nest,
    legal_orders,
    matmul_nest,
    seidel_nest,
    simulated_misses,
    skewed_vectors,
    tiling_legal,
    transpose_nest,
)


def _legality_table():
    rows = []
    for nest in (matmul_nest(8), jacobi_nest(10), seidel_nest(10),
                 transpose_nest(10)):
        vectors = distance_vectors(nest)
        rows.append({
            "nest": nest.name,
            "vectors": vectors,
            "legal_orders": len(legal_orders(nest)),
            "tilable": tiling_legal(vectors),
        })
    return rows


def test_bench_polyhedral_legality(benchmark):
    rows = benchmark.pedantic(_legality_table, rounds=1, iterations=1)

    lines = [f"  {r['nest']:10s} vectors={r['vectors']!s:28s} "
             f"legal orders={r['legal_orders']} tilable={r['tilable']}"
             for r in rows]
    emit("Polyhedral: dependence analysis of the course nests", "\n".join(lines))

    by_name = {r["nest"]: r for r in rows}
    assert by_name["matmul"]["legal_orders"] == 6
    assert by_name["matmul"]["tilable"]
    assert by_name["jacobi"]["legal_orders"] == 2      # no deps at all
    assert by_name["seidel"]["legal_orders"] == 1      # (i,j) only
    assert not by_name["seidel"]["tilable"]
    assert by_name["transpose"]["legal_orders"] == 2   # no deps, both legal


def test_bench_polyhedral_skewing_enables_tiling(benchmark):
    vectors = distance_vectors(seidel_nest(10))

    skewed = benchmark(skewed_vectors, vectors, 0, 1, 1)
    emit("Polyhedral: seidel skewing",
         f"  before: {vectors} tilable={tiling_legal(vectors)}\n"
         f"  after : {skewed} tilable={tiling_legal(skewed)}")
    assert not tiling_legal(vectors)
    assert tiling_legal(skewed)
    assert interchange_legal(skewed, (0, 1))

    # and the skewed+tiled schedule actually *executes* legally: every
    # dependence's source precedes its sink in the generated order
    nest = seidel_nest(10)
    points = nest.domain.skewed_points(0, 1, 1, tile_sizes=(4, 4))
    pos = {tuple(p): i for i, p in enumerate(points)}
    for d in vectors:
        for p in pos:
            q = tuple(a + b for a, b in zip(p, d))
            if nest.domain.contains(q):
                assert pos[p] < pos[q]


def test_bench_polyhedral_tiling_locality(benchmark, cpu):
    """The measured payoff: tiling the transpose nest cuts L1 misses."""

    def run():
        nest = transpose_nest(768)
        plain = simulated_misses(nest, cpu, order=(0, 1))
        tiled = simulated_misses(nest, cpu, tile_sizes=(16, 16))
        return plain, tiled

    plain, tiled = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Polyhedral: transpose(768) tiling payoff",
         f"  untiled  L1 misses: {plain['L1']}\n"
         f"  tiled 16 L1 misses: {tiled['L1']} "
         f"({plain['L1'] / tiled['L1']:.2f}x fewer)")
    assert tiled["L1"] < 0.7 * plain["L1"]
    # DRAM traffic is compulsory either way (footprint identical)
    assert tiled["DRAM"] <= plain["DRAM"] * 1.05
