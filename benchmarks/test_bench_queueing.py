"""Queueing-theory topic: analytical predictions vs discrete-event simulation.

Regenerates the lecture's canonical plots: M/M/1 waiting time vs load
(the hockey stick), M/M/c pooling gains, and the P-K variability penalty —
each cross-validated by the DES.
"""

import pytest
from conftest import emit

from repro.queueing import (
    deterministic,
    exponential,
    hyperexponential,
    mg1,
    mm1,
    mmc,
    simulate_queue,
)


def _mm1_load_sweep():
    mu = 10.0
    out = {}
    for rho in (0.3, 0.5, 0.7, 0.8, 0.9):
        lam = rho * mu
        theory = mm1(lam, mu)
        sim = simulate_queue(exponential(lam, seed=int(rho * 100)),
                             exponential(mu, seed=int(rho * 100) + 1),
                             customers=30_000, warmup=1_000)
        out[rho] = (theory.mean_wait, sim.mean_wait)
    return out


def test_bench_queueing_mm1_hockey_stick(benchmark):
    sweep = benchmark.pedantic(_mm1_load_sweep, rounds=1, iterations=1)

    lines = [f"  rho={rho:.1f}  Wq_theory={t * 1e3:8.2f}ms  Wq_sim={s * 1e3:8.2f}ms"
             for rho, (t, s) in sweep.items()]
    emit("Queueing: M/M/1 waiting time vs load (theory vs DES)", "\n".join(lines))

    waits = [t for t, _ in sweep.values()]
    assert waits == sorted(waits)               # monotone in load
    assert sweep[0.9][0] > 10 * sweep[0.3][0]   # the hockey stick
    for rho, (t, s) in sweep.items():
        assert s == pytest.approx(t, rel=0.25), f"DES disagrees at rho={rho}"


def test_bench_queueing_pooling_and_variability(benchmark):
    def run():
        pooled = mmc(32.0, 10.0, 4).mean_wait
        partitioned = mm1(8.0, 10.0).mean_wait
        md1 = mg1(8.0, 10.0, 0.0).mean_wait
        mh1 = mg1(8.0, 10.0, 4.0).mean_wait
        sim_h = simulate_queue(exponential(8.0, seed=1),
                               hyperexponential(10.0, 4.0, seed=2),
                               customers=40_000).mean_wait
        sim_d = simulate_queue(exponential(8.0, seed=3), deterministic(10.0),
                               customers=40_000).mean_wait
        return pooled, partitioned, md1, mh1, sim_h, sim_d

    pooled, partitioned, md1, mh1, sim_h, sim_d = benchmark.pedantic(
        run, rounds=1, iterations=1)

    emit("Queueing: pooling + variability", "\n".join([
        f"  4 pooled servers Wq : {pooled * 1e3:8.2f}ms",
        f"  4 separate queues Wq: {partitioned * 1e3:8.2f}ms "
        f"({partitioned / pooled:.1f}x worse)",
        f"  M/D/1 Wq            : {md1 * 1e3:8.2f}ms (sim {sim_d * 1e3:.2f}ms)",
        f"  M/H2/1 (cv2=4) Wq   : {mh1 * 1e3:8.2f}ms (sim {sim_h * 1e3:.2f}ms)",
    ]))

    assert pooled < partitioned           # pooling wins
    assert md1 < mh1                      # variability costs
    assert md1 == pytest.approx(mm1(8.0, 10.0).mean_wait / 2)  # P-K at cv2=0
    assert sim_h == pytest.approx(mh1, rel=0.3)
    assert sim_d == pytest.approx(md1, rel=0.3)
