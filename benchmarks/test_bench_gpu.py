"""Heterogeneous (CPU+GPU) benches: occupancy, rooflines, offload crossover.

The course targets "multi-node heterogeneous platforms combining CPUs and
GPUs"; these benches regenerate its GPU teaching results across the paper's
compute-capability range (3.0-7.2): the occupancy calculator, GPU vs CPU
rooflines, and the offload break-even sweep.
"""

import pytest
from conftest import emit

from repro.kernels import matmul_work, triad_work
from repro.machine import gpu_cc30, gpu_cc60, gpu_cc72
from repro.parallel import KernelConfig, occupancy, offload_analysis
from repro.roofline import gpu_roofline


def test_bench_gpu_occupancy_table(benchmark):
    """The occupancy-calculator exercise across launch configurations."""
    gpu = gpu_cc60()
    configs = [
        ("small blocks", KernelConfig(64, registers_per_thread=32)),
        ("standard", KernelConfig(256, registers_per_thread=32)),
        ("register-hungry", KernelConfig(256, registers_per_thread=128)),
        ("smem-hungry", KernelConfig(128, registers_per_thread=32,
                                     shared_mem_per_block_bytes=32 * 1024)),
    ]

    def run():
        return [(name, occupancy(gpu, cfg)) for name, cfg in configs]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("GPU: occupancy calculator (cc 6.0)", "\n".join(
        f"  {name:16s} blocks/SM={o.blocks_per_sm:2d} "
        f"occupancy={o.percent:5.1f}% limiter={o.limiter}"
        for name, o in rows))

    by_name = dict(rows)
    assert by_name["standard"].occupancy == pytest.approx(1.0)
    assert by_name["register-hungry"].limiter == "registers"
    assert by_name["register-hungry"].occupancy < 0.5
    assert by_name["smem-hungry"].limiter == "shared-memory"


def test_bench_gpu_rooflines_across_generations(benchmark):
    """Ridge points across the paper's cc 3.0-7.2 GPU range."""

    def run():
        out = []
        for gpu in (gpu_cc30(), gpu_cc60(), gpu_cc72()):
            model = gpu_roofline(gpu)
            out.append((gpu.name, model.ridge_point(),
                        model.ridge_point(bandwidth_name="PCIe"),
                        model.peak_flops))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("GPU: rooflines across generations", "\n".join(
        f"  {name:12s} ridge(HBM)={r:6.2f} F/B  ridge(PCIe)={rp:8.1f} F/B  "
        f"peak={p / 1e12:5.2f} TF/s" for name, r, rp, p in rows))

    peaks = [p for *_, p in rows]
    assert peaks == sorted(peaks)  # newer GPUs are faster
    for _, hbm_ridge, pcie_ridge, _ in rows:
        assert pcie_ridge > 10 * hbm_ridge  # the offload lesson in one line


def test_bench_gpu_microarchitecture(benchmark):
    """Wong et al.'s microbenchmark curves: coalescing and bank conflicts."""
    from repro.microbench import (
        bank_conflict_factor,
        coalesced_transactions,
        divergence_factor,
        shared_memory_sweep,
    )

    def run():
        coalesce = {s: coalesced_transactions(s) for s in (1, 2, 4, 8, 16)}
        banks = shared_memory_sweep(33)
        return coalesce, banks

    coalesce, banks = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("GPU: microarchitecture curves (Wong et al. reproductions)",
         "  coalescing (fp32): " + ", ".join(
             f"stride {s}->{t} txn" for s, t in coalesce.items())
         + "\n  bank conflicts:    " + ", ".join(
             f"{s}->{banks[s]}x" for s in (1, 2, 4, 8, 16, 32, 33)))

    # the measured staircases of the ISPASS paper
    assert coalesce[1] == 4 and coalesce[8] == 32
    assert banks[32] == 32 and banks[33] == 1
    assert divergence_factor(0.5) == pytest.approx(2.0, abs=1e-6)


def test_bench_gpu_offload_crossover(benchmark, cpu):
    """Offload break-even: small kernels stay on the CPU, large ones move."""
    gpu = gpu_cc60()

    def run():
        rows = []
        for n in (64, 256, 1024, 4096):
            decision = offload_analysis(
                cpu, gpu, matmul_work(n),
                transfer_bytes=3 * n * n * 8, config=KernelConfig(256))
            rows.append((n, decision))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("GPU: matmul offload crossover", "\n".join(
        f"  n={n:5d} cpu={d.cpu_seconds:9.2e}s gpu_total={d.gpu_total_seconds:9.2e}s "
        f"speedup={d.speedup:6.2f} worthwhile={d.worthwhile}"
        for n, d in rows))

    decisions = [d.worthwhile for _, d in rows]
    # monotone crossover: once offload wins, it keeps winning
    assert decisions == sorted(decisions)
    assert not decisions[0]  # n=64 stays on the CPU
    assert decisions[-1]     # n=4096 moves

    # memory-bound kernels face a different verdict: triad never overcomes
    # the PCIe transfer at any size if data must move per call
    triad_decision = offload_analysis(cpu, gpu, triad_work(10 ** 7),
                                      transfer_bytes=3 * 8 * 10 ** 7,
                                      config=KernelConfig(256))
    assert not triad_decision.worthwhile
