"""§5.1 narrative numbers: totals and per-edition statistics.

The evaluation section's prose states: 146 enrolled over seven years,
15-50% dropout, 93 passing, averages around 8 (assignments), 7.5 (exam),
8 (project).  This benchmark regenerates all of them from DATA-1 plus the
grading pipeline.
"""

import numpy as np
from conftest import emit

from repro.course import STUDENTS, simulate_cohort, totals


def _section51():
    t = totals()
    cohort = simulate_cohort(t["passed"], seed=2017)
    return t, cohort


def test_bench_section51(benchmark):
    t, cohort = benchmark(_section51)

    assert t == {"enrolled": 146, "passed": 93, "respondents": 41, "editions": 7}
    dropouts = [r.dropout_rate for r in STUDENTS]
    assert 0.15 <= min(dropouts) and max(dropouts) <= 0.50
    exam = float(np.mean([s.exam for s in cohort]))
    proj = float(np.mean([s.project for s in cohort]))
    asg = float(np.mean([s.assignments for s in cohort]))
    assert abs(exam - 7.5) < 0.5
    assert abs(proj - 8.0) < 0.5
    assert abs(asg - 8.0) < 1.0

    lines = [
        f"enrolled total : {t['enrolled']}   (paper: 146)",
        f"passed total   : {t['passed']}    (paper: 93)",
        f"respondents    : {t['respondents']}    (paper: 41)",
        f"dropout range  : {min(dropouts):.0%}..{max(dropouts):.0%} (paper: 15-50%)",
        f"avg exam       : {exam:.2f}  (paper: ~7.5)",
        f"avg project    : {proj:.2f}  (paper: ~8)",
        f"avg assignments: {asg:.2f}  (paper: ~8)",
    ]
    emit("Section 5.1 narrative numbers", "\n".join(lines))
